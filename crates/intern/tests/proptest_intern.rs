//! Property tests for the interner: intern∘resolve is the identity, symbol
//! assignment is replay-stable, and [`SymMap`] agrees with a reference
//! `HashMap` under arbitrary operation sequences.

use std::collections::HashMap;

use duc_intern::{Interner, Sym, SymMap};
use proptest::prelude::*;

proptest! {
    /// Resolving an interned string returns the original string, and
    /// re-interning returns the original symbol (intern∘resolve = id in
    /// both directions).
    #[test]
    fn intern_resolve_roundtrip(words in proptest::collection::vec(".*", 0..64)) {
        let mut interner = Interner::new();
        let syms: Vec<Sym> = words.iter().map(|w| interner.intern(w)).collect();
        for (word, sym) in words.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), word.as_str());
            prop_assert_eq!(interner.intern(word), *sym);
            prop_assert_eq!(interner.get(word), Some(*sym));
            let arc = interner.resolve_arc(*sym);
            prop_assert_eq!(arc.as_ref(), word.as_str());
        }
        // Dense: symbol indices cover exactly [0, distinct).
        let distinct = words.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert_eq!(interner.len(), distinct);
        for sym in &syms {
            prop_assert!(sym.index() < distinct);
        }
    }

    /// Two interners fed the same word sequence assign identical symbols —
    /// the replay-stability a deterministic re-run depends on.
    #[test]
    fn symbol_assignment_is_replay_stable(words in proptest::collection::vec(".*", 0..64)) {
        let mut a = Interner::new();
        let mut b = Interner::new();
        let syms_a: Vec<Sym> = words.iter().map(|w| a.intern(w)).collect();
        let syms_b: Vec<Sym> = words.iter().map(|w| b.intern(w)).collect();
        prop_assert_eq!(syms_a, syms_b);
    }

    /// `SymMap` agrees with a reference `HashMap` under arbitrary
    /// insert/remove/get sequences (ops encoded as integers: even = insert
    /// key, odd = remove key).
    #[test]
    fn symmap_matches_reference_map(ops in proptest::collection::vec(any::<u16>(), 0..256)) {
        let mut interner = Interner::new();
        let mut flat: SymMap<u16> = SymMap::new();
        let mut reference: HashMap<usize, u16> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            let key = (*op as usize) % 32;
            let sym = interner.intern(&format!("key-{key}"));
            if op % 2 == 0 {
                let value = step as u16;
                prop_assert_eq!(flat.insert(sym, value), reference.insert(key, value));
            } else {
                prop_assert_eq!(flat.remove(sym), reference.remove(&key));
            }
        }
        prop_assert_eq!(flat.len(), reference.len());
        for key in 0..32usize {
            match interner.get(&format!("key-{key}")) {
                Some(sym) => {
                    prop_assert_eq!(flat.get(sym).copied(), reference.get(&key).copied());
                    prop_assert_eq!(flat.contains(sym), reference.contains_key(&key));
                }
                None => prop_assert!(!reference.contains_key(&key)),
            }
        }
    }
}
