//! # duc-intern — identity interning
//!
//! Every layer of the architecture names the same few entities over and
//! over: WebIDs, pod URLs, resource names, policy hashes, contract method
//! labels. Keying state on owned `String`s makes each map operation hash
//! a full URL and each cross-layer hand-off clone it — fine at two owners,
//! ruinous at 10⁵ (ROADMAP item 1). This crate provides the shared
//! vocabulary for the refactor:
//!
//! - [`Sym`] — a `u32` symbol standing in for an interned string.
//! - [`Interner`] — deterministic string ↔ [`Sym`] table. Symbols are
//!   assigned in first-insertion order, so a replayed run (same seed, same
//!   operation sequence) assigns identical symbols: interning is
//!   replay-stable by construction.
//! - [`SymMap`] — a flat, dense map keyed by [`Sym`]: a `u32` index vector
//!   into a packed entry array. Lookup is two array probes, no hashing.
//! - [`SharedInterner`] / [`Registry`] — a clonable interner handle and a
//!   string-façaded registry over it, so several registries (owners,
//!   devices) share one symbol space while call sites keep `&str` keys.
//!
//! Interned symbols never cross the wire: contract ABI bytes, storage keys
//! and event payloads stay exactly as before. Interning only replaces the
//! *off-chain* bookkeeping around them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A `u32` symbol standing in for an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; comparing symbols from different interners is a logic error (not
/// UB — just nonsense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The raw index of this symbol (dense, starting at 0).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index previously obtained via
    /// [`Sym::index`].
    #[inline]
    pub const fn from_index(index: usize) -> Sym {
        Sym(index as u32)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A deterministic string interner.
///
/// Strings are stored once as `Arc<str>` (cheap to hand out, `Send +
/// Sync`, so an interner can live inside a `Contract: Send`); symbols are
/// assigned densely in first-insertion order.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    lookup: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its symbol — the existing one if `s` was
    /// seen before, a fresh dense id otherwise.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct strings are interned.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.lookup.get(s) {
            return Sym(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner symbol space exhausted");
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&arc));
        self.lookup.insert(arc, id);
        Sym(id)
    }

    /// The symbol of `s`, if it has been interned. Never allocates.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).map(|&id| Sym(id))
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// A cheap owned handle to the string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve_arc(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.strings[sym.index()])
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A flat, dense map keyed by [`Sym`].
///
/// Two-level layout: a `u32` index vector (one slot per symbol the map has
/// ever been probed with — 4 bytes each) pointing into a packed entry
/// array. Lookup is two array probes with no hashing; iteration walks the
/// packed entries, so it is cache-friendly and deterministic (insertion
/// order until a removal, arbitrary-but-deterministic after — removals
/// backfill with the last entry).
pub struct SymMap<V> {
    index: Vec<u32>,
    entries: Vec<(Sym, V)>,
}

const VACANT: u32 = u32::MAX;

impl<V> SymMap<V> {
    /// An empty map.
    pub fn new() -> SymMap<V> {
        SymMap {
            index: Vec::new(),
            entries: Vec::new(),
        }
    }

    fn slot(&self, key: Sym) -> Option<usize> {
        match self.index.get(key.index()) {
            Some(&s) if s != VACANT => Some(s as usize),
            _ => None,
        }
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: Sym, value: V) -> Option<V> {
        if let Some(slot) = self.slot(key) {
            return Some(std::mem::replace(&mut self.entries[slot].1, value));
        }
        if key.index() >= self.index.len() {
            self.index.resize(key.index() + 1, VACANT);
        }
        debug_assert!(self.entries.len() < VACANT as usize);
        self.index[key.index()] = self.entries.len() as u32;
        self.entries.push((key, value));
        None
    }

    /// The value under `key`, if present.
    #[inline]
    pub fn get(&self, key: Sym) -> Option<&V> {
        self.slot(key).map(|s| &self.entries[s].1)
    }

    /// Mutable access to the value under `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: Sym) -> Option<&mut V> {
        self.slot(key).map(|s| &mut self.entries[s].1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: Sym) -> bool {
        self.slot(key).is_some()
    }

    /// Removes and returns the value under `key`. The vacated slot is
    /// backfilled with the last packed entry (deterministic given the same
    /// operation sequence).
    pub fn remove(&mut self, key: Sym) -> Option<V> {
        let slot = self.slot(key)?;
        self.index[key.index()] = VACANT;
        let (_, value) = self.entries.swap_remove(slot);
        if let Some(&(moved, _)) = self.entries.get(slot) {
            self.index[moved.index()] = slot as u32;
        }
        Some(value)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries (keeps the index capacity).
    pub fn clear(&mut self) {
        self.index.fill(VACANT);
        self.entries.clear();
    }

    /// Iterates `(symbol, &value)` over the packed entries.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates `(symbol, &mut value)` over the packed entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Sym, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (*k, v))
    }

    /// Iterates the keys in packed order.
    pub fn keys(&self) -> impl Iterator<Item = Sym> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }

    /// Iterates the values in packed order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Iterates the values mutably in packed order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

impl<V> Default for SymMap<V> {
    fn default() -> SymMap<V> {
        SymMap::new()
    }
}

impl<V: fmt::Debug> fmt::Debug for SymMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<V: Clone> Clone for SymMap<V> {
    fn clone(&self) -> SymMap<V> {
        SymMap {
            index: self.index.clone(),
            entries: self.entries.clone(),
        }
    }
}

/// A clonable handle to an interner shared by several registries, so that
/// owners, devices and the driver's obligation keys all live in one symbol
/// space. Single-threaded by design (the simulation world is `!Send`);
/// `Send` contexts embed a plain [`Interner`] instead.
#[derive(Debug, Clone, Default)]
pub struct SharedInterner(Rc<RefCell<Interner>>);

impl SharedInterner {
    /// A fresh, empty shared interner.
    pub fn new() -> SharedInterner {
        SharedInterner::default()
    }

    /// Interns `s` (see [`Interner::intern`]).
    pub fn intern(&self, s: &str) -> Sym {
        self.0.borrow_mut().intern(s)
    }

    /// The symbol of `s`, if interned. Never allocates.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.0.borrow().get(s)
    }

    /// A cheap owned handle to the string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.0.borrow().resolve_arc(sym)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }
}

/// A thread-safe clonable interner handle: the [`SharedInterner`] shape
/// behind an `Arc<Mutex<_>>` instead of `Rc<RefCell<_>>`, for `Send`
/// contexts — the wall-clock runtime's metrics registry interns metric and
/// label names from worker threads and the scrape thread concurrently.
/// Symbol assignment stays first-insertion-order deterministic per handle
/// lineage; the lock is uncontended on hot paths because callers cache
/// the returned [`Sym`]s.
#[derive(Debug, Clone, Default)]
pub struct SyncInterner(std::sync::Arc<std::sync::Mutex<Interner>>);

impl SyncInterner {
    /// A fresh, empty thread-safe interner.
    pub fn new() -> SyncInterner {
        SyncInterner::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Interner> {
        // A panic while holding this lock leaves only a string table
        // behind; the table is always structurally valid.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Interns `s` (see [`Interner::intern`]).
    pub fn intern(&self, s: &str) -> Sym {
        self.lock().intern(s)
    }

    /// The symbol of `s`, if interned. Never allocates.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lock().get(s)
    }

    /// A cheap owned handle to the string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.lock().resolve_arc(sym)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// A string-façaded registry over a [`SharedInterner`]: behaves like a
/// `HashMap<String, V>` at the call site (`&str` keys in, `&str` keys
/// out), but stores values in a flat [`SymMap`] and each key string
/// exactly once (`Arc<str>` shared with the interner).
///
/// Iteration order is packed-entry order: insertion order until a removal,
/// deterministic always — unlike `HashMap`, two identical runs iterate
/// identically.
#[derive(Debug, Clone)]
pub struct Registry<V> {
    ids: SharedInterner,
    map: SymMap<(Arc<str>, V)>,
}

impl<V> Registry<V> {
    /// An empty registry sharing `ids`.
    pub fn new(ids: SharedInterner) -> Registry<V> {
        Registry {
            ids,
            map: SymMap::new(),
        }
    }

    /// The shared interner behind this registry.
    pub fn ids(&self) -> &SharedInterner {
        &self.ids
    }

    /// The symbol of `name` in the shared symbol space, if interned.
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.ids.get(name)
    }

    /// Inserts `value` under `name` (interning it), returning the previous
    /// value if any.
    pub fn insert(&mut self, name: &str, value: V) -> Option<V> {
        let sym = self.ids.intern(name);
        let arc = self.ids.resolve(sym);
        self.map.insert(sym, (arc, value)).map(|(_, v)| v)
    }

    /// The value under `name`, if present.
    pub fn get(&self, name: &str) -> Option<&V> {
        let sym = self.ids.get(name)?;
        self.map.get(sym).map(|(_, v)| v)
    }

    /// Mutable access to the value under `name`, if present.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut V> {
        let sym = self.ids.get(name)?;
        self.map.get_mut(sym).map(|(_, v)| v)
    }

    /// The value under symbol `sym`, if present.
    pub fn get_sym(&self, sym: Sym) -> Option<&V> {
        self.map.get(sym).map(|(_, v)| v)
    }

    /// Mutable access to the value under symbol `sym`, if present.
    pub fn get_sym_mut(&mut self, sym: Sym) -> Option<&mut V> {
        self.map.get_mut(sym).map(|(_, v)| v)
    }

    /// Whether `name` is registered.
    pub fn contains_key(&self, name: &str) -> bool {
        self.ids
            .get(name)
            .map(|sym| self.map.contains(sym))
            .unwrap_or(false)
    }

    /// Removes and returns the value under `name`.
    pub fn remove(&mut self, name: &str) -> Option<V> {
        let sym = self.ids.get(name)?;
        self.map.remove(sym).map(|(_, v)| v)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(&name, &value)` in packed order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.map.iter().map(|(_, (name, v))| (name.as_ref(), v))
    }

    /// Iterates `(&name, &mut value)` in packed order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut V)> {
        self.map.iter_mut().map(|(_, (name, v))| (&**name, v))
    }

    /// Iterates the registered names in packed order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.values().map(|(name, _)| name.as_ref())
    }

    /// Iterates the values in packed order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|(_, v)| v)
    }

    /// Iterates the values mutably in packed order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.map.values_mut().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("https://alice.pod/profile#me");
        let b = i.intern("https://bob.pod/profile#me");
        assert_eq!(a, i.intern("https://alice.pod/profile#me"));
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(a), "https://alice.pod/profile#me");
        assert_eq!(i.resolve(b), "https://bob.pod/profile#me");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("https://bob.pod/profile#me"), Some(b));
        assert_eq!(i.get("nope"), None);
    }

    #[test]
    fn symbols_are_first_insertion_ordered() {
        let words = ["pod", "resource", "pod", "device", "resource", "webid"];
        let mut a = Interner::new();
        let mut b = Interner::new();
        let syms_a: Vec<Sym> = words.iter().map(|w| a.intern(w)).collect();
        let syms_b: Vec<Sym> = words.iter().map(|w| b.intern(w)).collect();
        assert_eq!(
            syms_a, syms_b,
            "replaying the sequence reassigns identically"
        );
        assert_eq!(syms_a[0].index(), 0);
        assert_eq!(syms_a[2], syms_a[0]);
        assert_eq!(syms_a[5].index(), 3);
    }

    #[test]
    fn symmap_insert_get_remove() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        let mut m: SymMap<u32> = SymMap::new();
        assert_eq!(m.insert(a, 1), None);
        assert_eq!(m.insert(b, 2), None);
        assert_eq!(m.insert(c, 3), None);
        assert_eq!(m.insert(b, 20), Some(2));
        assert_eq!(m.get(b), Some(&20));
        assert_eq!(m.len(), 3);
        assert!(m.contains(a));
        // Removing the first entry backfills with the last.
        assert_eq!(m.remove(a), Some(1));
        assert!(!m.contains(a));
        assert_eq!(m.get(c), Some(&3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(a), None);
        *m.get_mut(c).unwrap() += 1;
        assert_eq!(m.get(c), Some(&4));
    }

    #[test]
    fn symmap_iterates_in_insertion_order() {
        let mut i = Interner::new();
        let syms: Vec<Sym> = ["z", "m", "a"].iter().map(|w| i.intern(w)).collect();
        let mut m: SymMap<&str> = SymMap::new();
        for (n, s) in syms.iter().enumerate() {
            m.insert(*s, ["z", "m", "a"][n]);
        }
        let order: Vec<&str> = m.values().copied().collect();
        assert_eq!(order, ["z", "m", "a"], "packed order, not key order");
    }

    #[test]
    fn registry_behaves_like_a_string_map() {
        let ids = SharedInterner::new();
        let mut owners: Registry<u32> = Registry::new(ids.clone());
        let mut devices: Registry<u32> = Registry::new(ids.clone());
        assert_eq!(owners.insert("alice", 1), None);
        assert_eq!(owners.insert("bob", 2), None);
        assert_eq!(devices.insert("alice-phone", 10), None);
        assert!(owners.contains_key("alice"));
        assert!(!owners.contains_key("alice-phone"));
        assert_eq!(owners.get("bob"), Some(&2));
        *owners.get_mut("bob").unwrap() = 3;
        assert_eq!(owners.get("bob"), Some(&3));
        // One shared symbol space across both registries.
        assert_eq!(ids.len(), 3);
        let alice = owners.sym("alice").unwrap();
        assert_eq!(owners.get_sym(alice), Some(&1));
        assert_eq!(
            owners
                .iter()
                .map(|(k, _)| k.to_string())
                .collect::<Vec<_>>(),
            ["alice", "bob"]
        );
        assert_eq!(owners.remove("alice"), Some(1));
        assert_eq!(owners.len(), 1);
        // The symbol survives removal; re-insertion reuses it.
        assert_eq!(owners.insert("alice", 9), None);
        assert_eq!(owners.sym("alice"), Some(alice));
    }

    #[test]
    fn sync_interner_is_shared_across_threads() {
        let ids = SyncInterner::new();
        let a = ids.intern("duc_requests_total");
        let handle = {
            let ids = ids.clone();
            std::thread::spawn(move || ids.intern("duc_requests_total"))
        };
        assert_eq!(handle.join().expect("interning thread"), a);
        assert_eq!(ids.resolve(a).as_ref(), "duc_requests_total");
        assert_eq!(ids.len(), 1);
    }
}
