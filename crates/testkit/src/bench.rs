//! Criterion-compatible benchmark harness for `harness = false` targets.
//!
//! Implements the subset the workspace's benches use — groups,
//! `bench_function`, `iter`/`iter_batched`, throughput, sample size and
//! measurement time — with an adaptive iteration count per sample and a
//! plain-text report. Designed so a full `cargo bench` completes in
//! seconds by default; set `DUC_BENCH_QUICK=1` for an even faster smoke
//! run (CI) or raise `measurement_time` for stable numbers.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup. The shim times each routine call
/// individually, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark manager: holds defaults and the CLI filter.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::var("DUC_BENCH_QUICK").is_ok();
        Criterion {
            filter: None,
            sample_size: if quick { 3 } else { 10 },
            measurement_time: if quick {
                Duration::from_millis(30)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: any non-flag argument is a
    /// substring filter on `group/bench` ids (flags such as cargo's
    /// `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    self.sample_size = 3;
                    self.measurement_time = Duration::from_millis(30);
                }
                // Flags that take a value we don't use.
                "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                a if a.starts_with('-') => {}
                a => self.filter = Some(a.to_string()),
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Criterion {
        self.sample_size = samples;
        self
    }

    /// Default total measurement budget per benchmark.
    pub fn measurement_time(mut self, budget: Duration) -> Criterion {
        self.measurement_time = budget;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.run_one(&id.into(), sample_size, measurement_time, None, f);
        self
    }

    fn run_one(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: sample_size.max(1),
            measurement_time,
            samples_secs_per_iter: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        bencher.report(id, throughput);
    }
}

/// A set of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Sets the total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = budget;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into());
        let (sample_size, measurement_time, throughput) =
            (self.sample_size, self.measurement_time, self.throughput);
        self.criterion
            .run_one(&full_id, sample_size, measurement_time, throughput, f);
        self
    }

    /// Ends the group (report lines are already printed; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_secs_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, called in adaptively sized batches.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup doubles as the single-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().as_secs_f64().max(1e-9);
        let iters = self.iters_for(estimate);
        let deadline = Instant::now() + self.measurement_time * 4;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_secs_per_iter
                .push(start.elapsed().as_secs_f64() / iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        self.iters_per_sample = iters;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let estimate = start.elapsed().as_secs_f64().max(1e-9);
        let iters = self.iters_for(estimate);
        let deadline = Instant::now() + self.measurement_time * 4;
        for _ in 0..self.sample_size {
            let mut measured = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                measured += start.elapsed();
            }
            self.samples_secs_per_iter
                .push(measured.as_secs_f64() / iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        self.iters_per_sample = iters;
    }

    fn iters_for(&self, estimate_secs: f64) -> u64 {
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        (per_sample / estimate_secs).clamp(1.0, 1e7) as u64
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples_secs_per_iter.is_empty() {
            println!("{id:<55} <no samples>");
            return;
        }
        let mut sorted = self.samples_secs_per_iter.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = sorted[sorted.len() / 2];
        let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(bytes) => {
                format!("  {:>10}/s", format_bytes(bytes as f64 / median))
            }
            Throughput::Elements(n) => format!("  {:>10.0} elem/s", n as f64 / median),
        });
        println!(
            "{id:<55} median {:>10}  [{} .. {}] x{} iters{}",
            format_time(median),
            format_time(lo),
            format_time(hi),
            self.iters_per_sample,
            rate.unwrap_or_default(),
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_bytes(bytes_per_sec: f64) -> String {
    const KIB: f64 = 1024.0;
    if bytes_per_sec >= KIB * KIB * KIB {
        format!("{:.2} GiB", bytes_per_sec / (KIB * KIB * KIB))
    } else if bytes_per_sec >= KIB * KIB {
        format!("{:.2} MiB", bytes_per_sec / (KIB * KIB))
    } else if bytes_per_sec >= KIB {
        format!("{:.2} KiB", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.0} B")
    }
}
