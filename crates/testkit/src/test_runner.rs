//! The property-test runner behind the `proptest!` macro.
//!
//! Each case is generated from a 64-bit seed drawn from a master
//! xoshiro256++ stream ([`TestRng`] is `duc_sim`'s deterministic RNG), so a
//! whole run is a pure function of `(master seed, case count)`. Shrinking
//! re-generates candidate cases at strictly smaller sizes from seeds
//! derived from the failing case's seed — also fully deterministic: the
//! same seed always reports the same minimal failing case.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use duc_sim::Rng as TestRng;

/// Default master seed, mixed with the test name so distinct properties
/// explore independent streams.
const DEFAULT_SEED: u64 = 0x0D0C_0001_5EED;

const SHRINK_SALT: u64 = 0x5821_AD5E_11E5_D00D;

/// Runner configuration, settable per-suite via
/// `#![proptest_config(ProptestConfig::with_cases(128))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum re-generation attempts while shrinking a failure.
    pub max_shrink_iters: u32,
    /// Master seed override; also settable via `PROPTEST_SEED`.
    pub seed: Option<u64>,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok());
        ProptestConfig {
            cases,
            max_shrink_iters: 512,
            seed,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (environment overrides still apply
    /// to the seed).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed assertion inside a property body (`prop_assert!` family).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs a property to completion, panicking with a shrink report on the
/// first failing case. Called by the `proptest!` macro.
pub fn run_proptest<V, G, T>(config: &ProptestConfig, name: &str, generate: G, test: T)
where
    V: fmt::Debug,
    G: Fn(&mut TestRng, usize) -> V,
    T: Fn(V) -> Result<(), TestCaseError>,
{
    if let Err(report) = run_proptest_result(config, name, generate, test) {
        panic!("{report}");
    }
}

/// Like [`run_proptest`] but returns the failure report instead of
/// panicking — the hook the testkit's own determinism tests use.
pub fn run_proptest_result<V, G, T>(
    config: &ProptestConfig,
    name: &str,
    generate: G,
    test: T,
) -> Result<(), String>
where
    V: fmt::Debug,
    G: Fn(&mut TestRng, usize) -> V,
    T: Fn(V) -> Result<(), TestCaseError>,
{
    let master_seed = config.seed.unwrap_or(DEFAULT_SEED ^ fnv1a(name));
    let mut master = TestRng::seed_from_u64(master_seed);
    for case in 0..config.cases {
        let case_seed = master.next_u64();
        // Cycle sizes so small and large inputs interleave from the start.
        let size = 4 + (case as usize % 61);
        if let Err(message) = run_case(&generate, &test, case_seed, size) {
            let (seed, size, message, repr) = shrink(
                &generate,
                &test,
                case_seed,
                size,
                message,
                config.max_shrink_iters,
            );
            return Err(format!(
                "proptest property {name} failed after {case} passing case(s)\n\
                 minimal failing input (seed {seed:#018x}, size {size}):\n  {repr}\n\
                 error: {message}\n\
                 reproduce the whole run with PROPTEST_SEED={master_seed}"
            ));
        }
    }
    Ok(())
}

fn run_case<V, G, T>(generate: &G, test: &T, seed: u64, size: usize) -> Result<(), String>
where
    G: Fn(&mut TestRng, usize) -> V,
    T: Fn(V) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed);
    let value = match catch_unwind(AssertUnwindSafe(|| generate(&mut rng, size))) {
        Ok(value) => value,
        Err(payload) => return Err(format!("generation panicked: {}", panic_message(payload))),
    };
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("panicked: {}", panic_message(payload))),
    }
}

/// Hunts for a *smaller* failing case, where "smaller" means a shorter
/// `Debug` representation — a generic minimality metric that exerts real
/// pressure on collection lengths and string sizes alike. Every candidate
/// is derived from the original failing seed, so the result is a pure
/// function of `(seed, size)`: the same seed always reports the same
/// minimal failing case.
fn shrink<V, G, T>(
    generate: &G,
    test: &T,
    seed: u64,
    size: usize,
    message: String,
    max_iters: u32,
) -> (u64, usize, String, String)
where
    V: fmt::Debug,
    G: Fn(&mut TestRng, usize) -> V,
    T: Fn(V) -> Result<(), TestCaseError>,
{
    let repr = case_repr(generate, seed, size);
    let mut best = (seed, size, message, repr);
    let mut shrink_rng = TestRng::seed_from_u64(seed ^ SHRINK_SALT);
    for _ in 0..max_iters {
        let candidate_size = shrink_rng.gen_range_inclusive(0, size as u64) as usize;
        let candidate_seed = shrink_rng.next_u64();
        if let Err(message) = run_case(generate, test, candidate_seed, candidate_size) {
            let repr = case_repr(generate, candidate_seed, candidate_size);
            if repr.len() < best.3.len() {
                best = (candidate_seed, candidate_size, message, repr);
            }
        }
    }
    best
}

/// Re-generates the case for `(seed, size)` and formats it for reporting.
fn case_repr<V, G>(generate: &G, seed: u64, size: usize) -> String
where
    V: fmt::Debug,
    G: Fn(&mut TestRng, usize) -> V,
{
    let mut rng = TestRng::seed_from_u64(seed);
    match catch_unwind(AssertUnwindSafe(|| {
        format!("{:?}", generate(&mut rng, size))
    })) {
        Ok(repr) => repr,
        Err(_) => "<generation panicked>".to_string(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
