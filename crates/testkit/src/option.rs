//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Option<T>` values: `None` one time in four, mirroring
/// upstream proptest's default `Some` weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng, size: usize) -> Option<S::Value> {
        if rng.gen_range(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng, size))
        }
    }
}
