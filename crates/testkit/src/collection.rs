//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng, size: usize) -> Vec<S::Value> {
        let len = rng.gen_range_inclusive(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.generate(rng, size)).collect()
    }
}
