//! The proptest-compatible [`Strategy`] abstraction.
//!
//! A strategy deterministically produces values of its `Value` type from a
//! seeded [`TestRng`] and a *size* hint (larger sizes produce larger
//! unbounded collections/strings). Unlike upstream proptest there is no
//! value tree: shrinking is performed by the runner re-generating candidate
//! cases at smaller sizes from derived seeds, which keeps the whole harness
//! dependency-free and fully reproducible.

use crate::pattern;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value. Implementations must be deterministic in
    /// `(rng state, size)`.
    fn generate(&self, rng: &mut TestRng, size: usize) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `f` returns true, retrying generation.
    ///
    /// # Panics
    /// Panics (failing the test case) when the predicate rejects too many
    /// candidates in a row; `whence` names the filter in that message.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng, _size: usize) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng, size: usize) -> U {
        (self.f)(self.source.generate(rng, size))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng, size: usize) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.source.generate(rng, size);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1024 candidates in a row; loosen the filter",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng, size: usize) -> S2::Value {
        (self.f)(self.source.generate(rng, size)).generate(rng, size)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng, size: usize) -> V {
        self.0.generate(rng, size)
    }
}

/// Weighted choice between strategies — the engine behind `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! requires a positive total weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng, size: usize) -> V {
        let mut pick = rng.gen_range(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng, size);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Regex-subset string strategies: `"[a-z]{1,8}"`, `".*"`, `"[ -~\n\t]{0,300}"`, …
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng, size: usize) -> String {
        pattern::generate(self, rng, size)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty)*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _size: usize) -> $t {
                assert!(self.start < self.end, "empty range strategy {}..{}", self.start, self.end);
                // Two's complement makes the unsigned span correct for
                // signed types as well.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(sample_u128(rng, span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _size: usize) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128);
                if span == u128::MAX {
                    return full_width_draw(rng) as $t;
                }
                lo.wrapping_add(sample_u128(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8 u16 u32 u64 u128 usize i8 i16 i32 i64 i128 isize);

/// Uniform draw in `[0, bound)`, where `bound > 0`.
fn sample_u128(rng: &mut TestRng, bound: u128) -> u128 {
    if bound <= u128::from(u64::MAX) {
        u128::from(rng.gen_range(bound as u64))
    } else {
        // Wide ranges only occur for 128-bit strategies; modulo bias over a
        // 128-bit draw is negligible for test generation purposes.
        full_width_draw(rng) % bound
    }
}

fn full_width_draw(rng: &mut TestRng) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng, size: usize) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                // Tuple construction evaluates left to right: deterministic.
                ($($name.generate(rng, size),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical "arbitrary value" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng, size: usize) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, size: usize) -> T {
        T::arbitrary(rng, size)
    }
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng, _size: usize) -> bool {
        rng.next_u64() & 1 != 0
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng, _size: usize) -> $t {
                // One draw in eight is an edge value: integer codecs and
                // comparators break at boundaries far more often than in
                // the middle of the range.
                if rng.gen_range(8) == 0 {
                    *rng.choose(&[0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2])
                } else if std::mem::size_of::<$t>() > 8 {
                    full_width_draw(rng) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_ints!(u8 u16 u32 u64 u128 usize i8 i16 i32 i64 i128 isize);
