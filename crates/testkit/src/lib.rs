//! # duc-testkit — in-repo proptest/criterion-compatible harness
//!
//! The build environment is fully offline, so the workspace cannot fetch
//! `proptest` or `criterion` from crates.io. This crate implements the
//! API subset the repository's property-test suites and benches actually
//! use, in the seed's own hand-rolled style (everything is seeded through
//! `duc_sim`'s xoshiro256++ RNG and therefore bit-for-bit reproducible).
//!
//! Manifests alias it under the upstream names, so suites keep their
//! stock imports:
//!
//! ```toml
//! [dev-dependencies]
//! proptest  = { path = "../testkit", package = "duc-testkit" }
//! criterion = { path = "../testkit", package = "duc-testkit" }
//! ```
//!
//! Property testing: [`proptest!`], [`prop_oneof!`], the `prop_assert*`
//! macros, [`strategy::Strategy`] with `prop_map`/`prop_filter`/
//! `prop_flat_map`/`boxed`, [`strategy::Just`], [`strategy::any`],
//! [`collection::vec`], [`option::of`] and
//! [`test_runner::ProptestConfig`]. Shrinking is seed-based and
//! deterministic: the same seed always reports the same minimal failing
//! case.
//!
//! Benchmarks: [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with
//! `iter`/`iter_batched`, [`BatchSize`], [`Throughput`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros, for
//! `harness = false` bench targets.

pub mod bench;
pub mod collection;
pub mod option;
mod pattern;
pub mod strategy;
pub mod test_runner;

pub use bench::{black_box, BatchSize, Bencher, BenchmarkGroup, Criterion, Throughput};

/// Everything a property-test suite needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(binding in strategy, ...)` body
/// runs once per generated case; the optional leading
/// `#![proptest_config(...)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                $crate::test_runner::run_proptest(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng, __size| {
                        ($($crate::strategy::Strategy::generate(&($strategy), __rng, __size),)+)
                    },
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                )
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Chooses between strategies, optionally weighted: `prop_oneof![a, b]`
/// or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a property body; failures become shrinkable test-case
/// errors instead of immediate panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, with a `left`/`right` diagnostic.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n{}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            left
        );
    }};
}

/// Bundles benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
