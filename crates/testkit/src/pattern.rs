//! Generator for the regex subset proptest-style string strategies use.
//!
//! Supported syntax — exactly what the workspace's suites need, with a
//! clear panic on anything else:
//!
//! * character classes `[a-z0-9-]` with ranges, literal chars, the escapes
//!   `\n` `\t` `\r` `\\` `\-` `\]`, and `\PC` (any non-control character,
//!   approximated by curated printable Unicode ranges);
//! * `.` (any printable character except newline);
//! * quantifiers `{m}`, `{m,n}`, `*`, `+`, `?` (unbounded repeats are
//!   capped by the runner's size hint);
//! * literal characters.

use crate::test_runner::TestRng;
use std::iter::Peekable;
use std::str::Chars;

/// Printable Unicode sampling pool: ASCII, accented Latin, Greek, CJK and
/// symbol/emoji blocks. Every code point is an assigned non-control
/// character, so the pool is a sound under-approximation of `\PC`.
const PRINTABLE_RANGES: &[(u32, u32)] = &[
    (0x0020, 0x007E),
    (0x00C0, 0x017F),
    (0x0391, 0x03C9),
    (0x4E00, 0x4FFF),
    (0x1F300, 0x1F5FF),
];

const UNBOUNDED: usize = usize::MAX;

struct CharClass {
    /// Inclusive code-point ranges.
    ranges: Vec<(u32, u32)>,
    /// Whether the curated printable-Unicode pool is part of the class.
    printable_unicode: bool,
}

enum Piece {
    Class(CharClass),
    /// `.` — any printable char except newline.
    AnyChar,
    Literal(char),
}

struct Element {
    piece: Piece,
    min: usize,
    /// Inclusive; [`UNBOUNDED`] for `*`/`+`.
    max: usize,
}

/// Generates one string matching `pattern`. Unbounded quantifiers emit at
/// most `min + size` repetitions.
pub fn generate(pattern: &str, rng: &mut TestRng, size: usize) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for element in &elements {
        let max = if element.max == UNBOUNDED {
            element.min + size
        } else {
            element.max
        };
        let count = rng.gen_range_inclusive(element.min as u64, max as u64) as usize;
        for _ in 0..count {
            out.push(match &element.piece {
                Piece::Class(class) => sample_class(class, rng),
                Piece::AnyChar => sample_ranges(PRINTABLE_RANGES, rng),
                Piece::Literal(c) => *c,
            });
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut it = pattern.chars().peekable();
    let mut elements = Vec::new();
    while let Some(c) = it.next() {
        let piece = match c {
            '[' => Piece::Class(parse_class(pattern, &mut it)),
            '.' => Piece::AnyChar,
            '\\' => match parse_escape(pattern, &mut it) {
                Escape::Char(ch) => Piece::Literal(ch),
                Escape::PrintableUnicode => Piece::Class(CharClass {
                    ranges: Vec::new(),
                    printable_unicode: true,
                }),
            },
            '(' | ')' | '|' | '^' | '$' => {
                panic!("pattern strategy {pattern:?}: unsupported regex construct {c:?}")
            }
            other => Piece::Literal(other),
        };
        let (min, max) = parse_quantifier(pattern, &mut it);
        elements.push(Element { piece, min, max });
    }
    elements
}

enum Escape {
    Char(char),
    PrintableUnicode,
}

fn parse_escape(pattern: &str, it: &mut Peekable<Chars>) -> Escape {
    match it.next() {
        Some('n') => Escape::Char('\n'),
        Some('t') => Escape::Char('\t'),
        Some('r') => Escape::Char('\r'),
        Some('P') => match it.next() {
            Some('C') => Escape::PrintableUnicode,
            other => panic!("pattern strategy {pattern:?}: unsupported class \\P{other:?}"),
        },
        Some(c @ ('\\' | '-' | ']' | '[' | '.' | '{' | '}' | '*' | '+' | '?' | '(' | ')')) => {
            Escape::Char(c)
        }
        other => panic!("pattern strategy {pattern:?}: unsupported escape \\{other:?}"),
    }
}

fn parse_class(pattern: &str, it: &mut Peekable<Chars>) -> CharClass {
    let mut class = CharClass {
        ranges: Vec::new(),
        printable_unicode: false,
    };
    loop {
        let c = match it.next() {
            Some(']') => break,
            Some(c) => c,
            None => panic!("pattern strategy {pattern:?}: unterminated character class"),
        };
        let lo = if c == '\\' {
            match parse_escape(pattern, it) {
                Escape::Char(ch) => ch,
                Escape::PrintableUnicode => {
                    class.printable_unicode = true;
                    continue;
                }
            }
        } else {
            c
        };
        if it.peek() == Some(&'-') {
            it.next();
            if it.peek() == Some(&']') {
                // Trailing '-' is a literal, e.g. `[a-z0-9-]`.
                class.ranges.push((lo as u32, lo as u32));
                class.ranges.push(('-' as u32, '-' as u32));
                continue;
            }
            let hi = match it.next() {
                Some('\\') => match parse_escape(pattern, it) {
                    Escape::Char(ch) => ch,
                    Escape::PrintableUnicode => {
                        panic!("pattern strategy {pattern:?}: \\PC cannot end a range")
                    }
                },
                Some(ch) => ch,
                None => panic!("pattern strategy {pattern:?}: unterminated range"),
            };
            assert!(
                lo <= hi,
                "pattern strategy {pattern:?}: inverted range {lo:?}-{hi:?}"
            );
            class.ranges.push((lo as u32, hi as u32));
        } else {
            class.ranges.push((lo as u32, lo as u32));
        }
    }
    assert!(
        !class.ranges.is_empty() || class.printable_unicode,
        "pattern strategy {pattern:?}: empty character class"
    );
    class
}

fn parse_quantifier(pattern: &str, it: &mut Peekable<Chars>) -> (usize, usize) {
    match it.peek() {
        Some('*') => {
            it.next();
            (0, UNBOUNDED)
        }
        Some('+') => {
            it.next();
            (1, UNBOUNDED)
        }
        Some('?') => {
            it.next();
            (0, 1)
        }
        Some('{') => {
            it.next();
            let min = parse_number(pattern, it);
            match it.next() {
                Some('}') => (min, min),
                Some(',') => {
                    let max = parse_number(pattern, it);
                    assert_eq!(
                        it.next(),
                        Some('}'),
                        "pattern strategy {pattern:?}: bad {{m,n}}"
                    );
                    assert!(
                        min <= max,
                        "pattern strategy {pattern:?}: {{m,n}} with m > n"
                    );
                    (min, max)
                }
                _ => panic!("pattern strategy {pattern:?}: bad quantifier"),
            }
        }
        _ => (1, 1),
    }
}

fn parse_number(pattern: &str, it: &mut Peekable<Chars>) -> usize {
    let mut digits = String::new();
    while let Some(c) = it.peek() {
        if c.is_ascii_digit() {
            digits.push(*c);
            it.next();
        } else {
            break;
        }
    }
    digits
        .parse()
        .unwrap_or_else(|_| panic!("pattern strategy {pattern:?}: expected a number"))
}

fn sample_class(class: &CharClass, rng: &mut TestRng) -> char {
    if class.printable_unicode && (class.ranges.is_empty() || rng.next_u64() & 1 == 0) {
        return sample_ranges(PRINTABLE_RANGES, rng);
    }
    sample_ranges(&class.ranges, rng)
}

/// Picks a char uniformly across inclusive code-point ranges, weighted by
/// range width.
fn sample_ranges(ranges: &[(u32, u32)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|(lo, hi)| u64::from(hi - lo) + 1).sum();
    let mut pick = rng.gen_range(total);
    for (lo, hi) in ranges {
        let width = u64::from(hi - lo) + 1;
        if pick < width {
            return char::from_u32(lo + pick as u32)
                .expect("pattern ranges must avoid surrogate code points");
        }
        pick -= width;
    }
    unreachable!("weighted pick out of range")
}
