//! Self-tests for the testkit harness: the runner must honor case counts,
//! report failures, shrink deterministically (same seed → same minimal
//! failing case), respect `prop_oneof!` weights, and generate strings
//! matching the supported pattern subset.

use duc_testkit::prelude::*;
use duc_testkit::test_runner::{run_proptest_result, TestRng};
use duc_testkit::{collection, option};
use std::sync::atomic::{AtomicU32, Ordering};

fn config(cases: u32) -> ProptestConfig {
    // Pin the seed so environment overrides can't perturb self-tests.
    ProptestConfig {
        cases,
        max_shrink_iters: 256,
        seed: Some(0xDEC0_DE00),
    }
}

#[test]
fn runs_exactly_the_configured_number_of_cases() {
    let executed = AtomicU32::new(0);
    let result = run_proptest_result(
        &config(137),
        "selftest::case_count",
        |rng, size| any::<u64>().generate(rng, size),
        |_| {
            executed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        },
    );
    assert!(result.is_ok());
    assert_eq!(executed.load(Ordering::Relaxed), 137);
}

#[test]
fn failing_property_is_reported() {
    let result = run_proptest_result(
        &config(256),
        "selftest::must_fail",
        |rng, size| (0u64..1_000_000).generate(rng, size),
        |v| {
            prop_assert!(v < 10, "value {v} is too big");
            Ok(())
        },
    );
    let report = result.expect_err("property should fail");
    assert!(report.contains("minimal failing input"), "report: {report}");
    assert!(report.contains("is too big"), "report: {report}");
}

#[test]
fn shrinking_is_deterministic_across_runs() {
    // A size-sensitive failure: unbounded patterns scale with the size
    // hint, so shrinking has real work to do.
    let run = || {
        run_proptest_result(
            &config(256),
            "selftest::shrink_determinism",
            |rng, size| ".*".generate(rng, size),
            |s| {
                prop_assert!(s.len() < 4, "string of length {} found", s.len());
                Ok(())
            },
        )
        .expect_err("property should fail")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must report the same failing case");
}

#[test]
fn shrinking_reduces_the_failing_size() {
    let report = run_proptest_result(
        &config(256),
        "selftest::shrink_reduces",
        |rng, size| collection::vec(any::<u8>(), 0..200).generate(rng, size),
        |v| {
            prop_assert!(v.len() < 5, "vec of length {} found", v.len());
            Ok(())
        },
    )
    .expect_err("property should fail");
    // The shrinker minimizes the witness's debug representation; among
    // ~250 failing candidates with uniform lengths in [5, 199], the kept
    // minimum must sit very close to the true boundary of 5.
    let found: usize = report
        .split("vec of length ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no length in report: {report}"));
    assert!(
        (5..=20).contains(&found),
        "expected a shrunken witness close to length 5, got {found} in: {report}"
    );
}

#[test]
fn panicking_property_is_caught_and_reported() {
    let report = run_proptest_result(
        &config(64),
        "selftest::panics",
        |rng, size| any::<u32>().generate(rng, size),
        |_| -> Result<(), TestCaseError> { panic!("boom in property body") },
    )
    .expect_err("panicking property should fail");
    assert!(report.contains("boom in property body"), "report: {report}");
}

#[test]
fn prop_oneof_weights_are_respected() {
    let strategy = prop_oneof![
        1 => Just(0u8),
        3 => Just(1u8),
        4 => Just(2u8),
    ];
    let mut rng = TestRng::seed_from_u64(42);
    let mut counts = [0u32; 3];
    const DRAWS: u32 = 16_000;
    for _ in 0..DRAWS {
        counts[strategy.generate(&mut rng, 8) as usize] += 1;
    }
    // Expected proportions 1/8, 3/8, 4/8 with a generous tolerance.
    let expect = [DRAWS / 8, 3 * DRAWS / 8, 4 * DRAWS / 8];
    for (arm, (&got, &want)) in counts.iter().zip(expect.iter()).enumerate() {
        let deviation = (got as i64 - want as i64).abs();
        assert!(
            deviation < (DRAWS / 20) as i64,
            "arm {arm}: got {got}, expected ~{want}"
        );
    }
}

#[test]
fn unweighted_oneof_is_uniform() {
    let strategy = prop_oneof![Just(0u8), Just(1u8)];
    let mut rng = TestRng::seed_from_u64(7);
    let ones: u32 = (0..10_000)
        .map(|_| u32::from(strategy.generate(&mut rng, 8)))
        .sum();
    assert!((4_500..5_500).contains(&ones), "ones: {ones}");
}

#[test]
fn generation_is_deterministic_for_equal_seeds() {
    let strategy = (
        collection::vec("[a-z]{1,8}", 0..10),
        option::of(any::<i64>()),
        0u64..500,
    );
    let a = strategy.generate(&mut TestRng::seed_from_u64(99), 16);
    let b = strategy.generate(&mut TestRng::seed_from_u64(99), 16);
    assert_eq!(a, b);
}

#[test]
fn pattern_strategies_match_their_patterns() {
    let mut rng = TestRng::seed_from_u64(3);
    for _ in 0..200 {
        let s = "[a-z][a-z0-9-]{0,10}".generate(&mut rng, 16);
        assert!((1..=11).contains(&s.chars().count()), "bad length: {s:?}");
        let mut chars = s.chars();
        assert!(chars.next().unwrap().is_ascii_lowercase());
        assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));

        let printable = "[ -~]{0,24}".generate(&mut rng, 16);
        assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        assert!(printable.chars().count() <= 24);

        let ws = "[ -~\\n\\t]{0,300}".generate(&mut rng, 16);
        assert!(ws
            .chars()
            .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

        let unicode = "[\\PC]{0,16}".generate(&mut rng, 16);
        assert!(
            unicode.chars().all(|c| !c.is_control()),
            "control char in {unicode:?}"
        );

        let exact = "[a-z]{2}".generate(&mut rng, 16);
        assert_eq!(exact.chars().count(), 2);
    }
}

#[test]
fn unbounded_patterns_scale_with_the_size_hint() {
    let mut rng = TestRng::seed_from_u64(5);
    let mut saw_long = false;
    for _ in 0..100 {
        let s = ".*".generate(&mut rng, 64);
        assert!(s.chars().count() <= 64);
        saw_long |= s.chars().count() > 32;
    }
    assert!(
        saw_long,
        "size hint 64 should sometimes produce long strings"
    );
}

#[test]
fn filter_and_flat_map_compose() {
    let strategy = (1u32..50)
        .prop_filter("even only", |v| v % 2 == 0)
        .prop_flat_map(|n| collection::vec(Just(n), n as usize..(n as usize + 1)))
        .boxed();
    let mut rng = TestRng::seed_from_u64(11);
    for _ in 0..100 {
        let v = strategy.generate(&mut rng, 8);
        assert!(!v.is_empty());
        assert_eq!(v[0] % 2, 0);
        assert_eq!(v.len(), v[0] as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The macro surface itself: multiple bindings, trailing comma, and
    /// prop_assert_* in a passing property.
    #[test]
    fn macro_smoke(
        v in collection::vec(any::<u8>(), 0..32),
        flag in any::<bool>(),
        label in "[a-z]{1,4}",
    ) {
        prop_assert!(v.len() < 32);
        prop_assert_eq!(label.is_empty(), false);
        prop_assert_ne!(label.len(), 0, );
        if flag {
            prop_assert!(label.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
