//! The contract runtime.
//!
//! Contracts are Rust types implementing [`Contract`], registered with the
//! chain under a [`ContractId`]. A call is dispatched by method name with
//! `duc-codec`-encoded arguments; the contract reads and writes state only
//! through the [`CallCtx`] (which meters gas), keeping execution
//! deterministic and replayable — the property the blockchain's consensus
//! relies on.

use std::collections::BTreeMap;

use duc_codec::{decode_from_slice, encode_to_vec, Decode, Encode};
use duc_sim::SimTime;

use crate::gas::{GasMeter, OutOfGas};
use crate::state::{InsufficientFunds, WorldState};
use crate::types::{Address, Amount, ContractId};

/// An event emitted during contract execution, recorded in the receipt and
/// the chain's event log (the on-chain half of push-out/pull-in oracles
/// subscribes to these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The emitting contract.
    pub contract: ContractId,
    /// Topic for subscription filtering (e.g. `"PolicyUpdated"`).
    pub topic: String,
    /// `duc-codec`-encoded payload.
    pub data: Vec<u8>,
}

/// Contract-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// The method name is not part of the contract's ABI.
    UnknownMethod(String),
    /// Argument bytes failed to decode.
    BadArguments(String),
    /// The call violated a contract rule (permission, state precondition).
    Reverted(String),
    /// Execution ran out of gas.
    OutOfGas,
}

impl From<OutOfGas> for ContractError {
    fn from(_: OutOfGas) -> Self {
        ContractError::OutOfGas
    }
}

impl From<duc_codec::DecodeError> for ContractError {
    fn from(e: duc_codec::DecodeError) -> Self {
        ContractError::BadArguments(e.to_string())
    }
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ContractError::BadArguments(e) => write!(f, "bad arguments: {e}"),
            ContractError::Reverted(why) => write!(f, "reverted: {why}"),
            ContractError::OutOfGas => f.write_str("out of gas"),
        }
    }
}

impl std::error::Error for ContractError {}

/// Execution context passed to a contract call.
///
/// All state access is gas-metered. Reads see the canonical [`WorldState`]
/// through a private write overlay; writes are buffered in that overlay and
/// only reach the canonical state when the chain applies the call's
/// [`CallEffects`] after a successful return. A revert simply drops the
/// context — nothing to undo, and nothing was copied up front (the previous
/// design cloned the entire state per call, which made execution cost scale
/// with total state size).
pub struct CallCtx<'a> {
    /// The calling account.
    pub caller: Address,
    /// Height of the block being built.
    pub block_height: u64,
    /// Timestamp of the block being built.
    pub block_time: SimTime,
    contract: ContractId,
    base: &'a WorldState,
    /// Buffered storage writes for this contract; `None` marks a deletion.
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Buffered native-token movements from [`CallCtx::transfer_from_caller`].
    balance_deltas: BTreeMap<Address, i128>,
    /// A fee reservation already charged against the caller but not yet
    /// reflected in `base`. The serial executor debits the max fee from the
    /// canonical state before calling; the parallel executor runs against
    /// an undebited snapshot and sets this instead, so the caller-visible
    /// balance is identical in both modes.
    shadow_debit: Amount,
    meter: &'a mut GasMeter,
    events: Vec<Event>,
}

impl<'a> CallCtx<'a> {
    /// Creates a context (used by the chain and by contract unit tests).
    pub fn new(
        caller: Address,
        block_height: u64,
        block_time: SimTime,
        contract: ContractId,
        state: &'a WorldState,
        meter: &'a mut GasMeter,
    ) -> Self {
        CallCtx {
            caller,
            block_height,
            block_time,
            contract,
            base: state,
            writes: BTreeMap::new(),
            balance_deltas: BTreeMap::new(),
            shadow_debit: 0,
            meter,
            events: Vec::new(),
        }
    }

    /// Marks `amount` of the caller's balance as already reserved (the max
    /// gas fee) when executing against a snapshot that has not been
    /// debited yet. See the `shadow_debit` field.
    #[must_use]
    pub fn with_shadow_debit(mut self, amount: Amount) -> Self {
        self.shadow_debit = amount;
        self
    }

    /// The contract being executed.
    pub fn contract_id(&self) -> &ContractId {
        &self.contract
    }

    /// Reads a raw storage slot (gas-metered).
    ///
    /// # Errors
    /// [`ContractError::OutOfGas`] when the read exhausts the budget.
    pub fn get_raw(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ContractError> {
        let value = match self.writes.get(key) {
            Some(slot) => slot.clone(),
            None => self.base.storage_get(&self.contract, key),
        };
        self.meter
            .charge_storage_read(value.as_ref().map(Vec::len).unwrap_or(0) + key.len())?;
        Ok(value)
    }

    /// Writes a raw storage slot (gas-metered).
    pub fn set_raw(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<(), ContractError> {
        self.meter.charge_storage_write(key.len() + value.len())?;
        self.writes.insert(key, Some(value));
        Ok(())
    }

    /// Deletes a storage slot (gas-metered); returns whether it existed.
    pub fn remove_raw(&mut self, key: &[u8]) -> Result<bool, ContractError> {
        self.meter.charge_storage_write(key.len())?;
        let existed = match self.writes.insert(key.to_vec(), None) {
            Some(prior) => prior.is_some(),
            None => self.base.storage_contains(&self.contract, key),
        };
        Ok(existed)
    }

    /// Reads and decodes a typed value.
    pub fn get<T: Decode>(&mut self, key: &[u8]) -> Result<Option<T>, ContractError> {
        match self.get_raw(key)? {
            None => Ok(None),
            Some(bytes) => Ok(Some(decode_from_slice(&bytes).map_err(|e| {
                ContractError::Reverted(format!("corrupt storage at {key:?}: {e}"))
            })?)),
        }
    }

    /// Encodes and writes a typed value.
    pub fn set<T: Encode>(&mut self, key: Vec<u8>, value: &T) -> Result<(), ContractError> {
        self.set_raw(key, encode_to_vec(value))
    }

    /// Lists all keys under a prefix (gas: one access per key).
    pub fn keys_with_prefix(&mut self, prefix: &[u8]) -> Result<Vec<Vec<u8>>, ContractError> {
        // Base keys not shadowed by the overlay, plus live overlay keys;
        // sorting restores the order a direct scan of the merged state
        // would produce.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        self.base
            .storage_for_each_prefix(&self.contract, prefix, |k, _| {
                if !self.writes.contains_key(k) {
                    keys.push(k.to_vec());
                }
            });
        for (k, slot) in self.writes.range(prefix.to_vec()..) {
            if !k.starts_with(prefix) {
                break;
            }
            if slot.is_some() {
                keys.push(k.clone());
            }
        }
        keys.sort();
        self.meter.charge_compute(keys.len() as u64 + 1)?;
        Ok(keys)
    }

    /// Emits an event (gas-metered).
    pub fn emit(&mut self, topic: impl Into<String>, data: Vec<u8>) -> Result<(), ContractError> {
        self.meter.charge_event(data.len())?;
        self.events.push(Event {
            contract: self.contract.clone(),
            topic: topic.into(),
            data,
        });
        Ok(())
    }

    /// Charges abstract compute units (contracts call this in loops).
    pub fn charge_compute(&mut self, units: u64) -> Result<(), ContractError> {
        Ok(self.meter.charge_compute(units)?)
    }

    /// The caller's native-token balance.
    pub fn caller_balance(&self) -> Amount {
        self.effective_balance(&self.caller)
    }

    /// An account balance as seen through the overlay.
    fn effective_balance(&self, addr: &Address) -> Amount {
        let mut base = self.base.balance(addr);
        if *addr == self.caller {
            // The reservation was affordability-checked before execution,
            // so it never exceeds the snapshot balance.
            base = base.saturating_sub(self.shadow_debit);
        }
        match self.balance_deltas.get(addr) {
            Some(delta) => (base as i128 + delta) as Amount,
            None => base,
        }
    }

    /// Moves native tokens from the caller to `to` (market payments).
    ///
    /// # Errors
    /// Reverts with [`ContractError::Reverted`] on insufficient balance.
    pub fn transfer_from_caller(
        &mut self,
        to: Address,
        amount: Amount,
    ) -> Result<(), ContractError> {
        self.meter.charge_compute(10)?;
        let available = self.effective_balance(&self.caller);
        if available < amount {
            let err = InsufficientFunds {
                needed: amount,
                available,
            };
            return Err(ContractError::Reverted(err.to_string()));
        }
        *self.balance_deltas.entry(self.caller).or_insert(0) -= amount as i128;
        *self.balance_deltas.entry(to).or_insert(0) += amount as i128;
        Ok(())
    }

    /// The events emitted so far in this call.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the context, returning the buffered effects of the call
    /// (chain-internal; a revert drops the context instead).
    pub fn into_effects(self) -> CallEffects {
        CallEffects {
            contract: self.contract,
            writes: self.writes,
            balance_deltas: self.balance_deltas,
            events: self.events,
        }
    }
}

/// The buffered outcome of a successful contract call: storage writes,
/// balance movements, and emitted events. The chain applies it to the
/// canonical state on success; reverted calls never produce one.
pub struct CallEffects {
    contract: ContractId,
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    balance_deltas: BTreeMap<Address, i128>,
    events: Vec<Event>,
}

impl CallEffects {
    /// Applies the buffered writes to `state`, returning the emitted events.
    ///
    /// Balance deltas cannot fail here: every debit was checked against the
    /// overlay-effective balance when the transfer was buffered.
    pub fn apply(self, state: &mut WorldState) -> Vec<Event> {
        for (key, slot) in self.writes {
            match slot {
                Some(value) => state.storage_set(&self.contract, key, value),
                None => {
                    state.storage_remove(&self.contract, &key);
                }
            }
        }
        for (addr, delta) in self.balance_deltas {
            match delta.cmp(&0) {
                std::cmp::Ordering::Greater => state.credit(addr, delta as Amount),
                std::cmp::Ordering::Less => state
                    .debit(&addr, delta.unsigned_abs())
                    .expect("buffered debit was balance-checked"),
                std::cmp::Ordering::Equal => {}
            }
        }
        self.events
    }
}

/// A smart contract: deterministic state transitions dispatched by method
/// name.
///
/// Implementations must be pure over `(ctx state, args)` — no interior
/// state, no randomness, no wall-clock — so that every validator replays to
/// the same result. `Send + Sync` because the parallel block executor
/// dispatches calls from a thread pool (interior caches must use `Mutex`,
/// not `RefCell`).
pub trait Contract: Send + Sync {
    /// Handles one call.
    ///
    /// # Errors
    /// Returning any [`ContractError`] reverts the transaction: state
    /// changes are discarded, gas remains charged.
    fn call(
        &self,
        ctx: &mut CallCtx<'_>,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::GasSchedule;

    /// A toy counter contract used to exercise the runtime.
    struct Counter;

    impl Contract for Counter {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "incr" => {
                    let (by,): (u64,) = decode_from_slice(args)?;
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    ctx.set(b"count".to_vec(), &(current + by))?;
                    ctx.emit("Incremented", encode_to_vec(&(current + by,)))?;
                    Ok(encode_to_vec(&(current + by,)))
                }
                "get" => {
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    Ok(encode_to_vec(&(current,)))
                }
                "fail" => Err(ContractError::Reverted("always fails".into())),
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    fn ctx_on<'a>(state: &'a WorldState, meter: &'a mut GasMeter) -> CallCtx<'a> {
        CallCtx::new(
            Address::from_seed(b"caller"),
            1,
            SimTime::from_secs(10),
            ContractId::new("counter"),
            state,
            meter,
        )
    }

    #[test]
    fn call_reads_and_writes_storage() {
        let mut state = WorldState::new();
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        let out = Counter
            .call(&mut ctx, "incr", &encode_to_vec(&(5u64,)))
            .unwrap();
        let (value,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(value, 5);
        assert_eq!(ctx.events().len(), 1);
        assert_eq!(ctx.events()[0].topic, "Incremented");
        // Applying the effects persists the write.
        let events = ctx.into_effects().apply(&mut state);
        assert_eq!(events.len(), 1);
        let mut meter2 = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx2 = ctx_on(&state, &mut meter2);
        let out = Counter.call(&mut ctx2, "get", &[]).unwrap();
        let (value,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(value, 5);
    }

    #[test]
    fn reverted_calls_leave_no_trace_without_apply() {
        let state = WorldState::new();
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        // Write, then pretend the call reverted: dropping the context must
        // leave the canonical state untouched.
        ctx.set_raw(b"count".to_vec(), vec![9]).unwrap();
        assert_eq!(ctx.get_raw(b"count").unwrap(), Some(vec![9]));
        drop(ctx);
        assert!(state
            .storage_get(&ContractId::new("counter"), b"count")
            .is_none());
    }

    #[test]
    fn overlay_shadows_base_for_reads_removals_and_prefix_scans() {
        let mut state = WorldState::new();
        let cid = ContractId::new("counter");
        state.storage_set(&cid, b"idx/1".to_vec(), vec![1]);
        state.storage_set(&cid, b"idx/2".to_vec(), vec![2]);
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        // Overwrite one base key, delete the other, add a fresh one.
        ctx.set_raw(b"idx/1".to_vec(), vec![9]).unwrap();
        assert!(ctx.remove_raw(b"idx/2").unwrap());
        assert!(!ctx.remove_raw(b"idx/2").unwrap()); // already gone
        ctx.set_raw(b"idx/0".to_vec(), vec![0]).unwrap();
        assert_eq!(ctx.get_raw(b"idx/1").unwrap(), Some(vec![9]));
        assert_eq!(ctx.get_raw(b"idx/2").unwrap(), None);
        assert_eq!(
            ctx.keys_with_prefix(b"idx/").unwrap(),
            vec![b"idx/0".to_vec(), b"idx/1".to_vec()]
        );
        ctx.into_effects().apply(&mut state);
        assert_eq!(state.storage_get(&cid, b"idx/1"), Some(vec![9]));
        assert_eq!(state.storage_get(&cid, b"idx/2"), None);
        assert_eq!(state.storage_get(&cid, b"idx/0"), Some(vec![0]));
    }

    #[test]
    fn transfer_from_caller_buffers_and_applies_balance_moves() {
        let mut state = WorldState::new();
        let caller = Address::from_seed(b"caller");
        let payee = Address::from_seed(b"payee");
        state.credit(caller, 100);
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        ctx.transfer_from_caller(payee, 60).unwrap();
        assert_eq!(ctx.caller_balance(), 40);
        // A second transfer sees the buffered debit, not the base balance.
        let err = ctx.transfer_from_caller(payee, 50).unwrap_err();
        assert!(matches!(err, ContractError::Reverted(ref why)
            if why.contains("need 50, have 40")));
        ctx.into_effects().apply(&mut state);
        assert_eq!(state.balance(&caller), 40);
        assert_eq!(state.balance(&payee), 60);
    }

    #[test]
    fn unknown_method_and_bad_args() {
        let state = WorldState::new();
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        assert!(matches!(
            Counter.call(&mut ctx, "nope", &[]),
            Err(ContractError::UnknownMethod(_))
        ));
        assert!(matches!(
            Counter.call(&mut ctx, "incr", &[1, 2]),
            Err(ContractError::BadArguments(_))
        ));
    }

    #[test]
    fn gas_exhaustion_surfaces_as_out_of_gas() {
        let state = WorldState::new();
        let mut meter = GasMeter::new(10, GasSchedule::default()); // hopeless budget
        let mut ctx = ctx_on(&state, &mut meter);
        assert_eq!(
            Counter.call(&mut ctx, "incr", &encode_to_vec(&(1u64,))),
            Err(ContractError::OutOfGas)
        );
    }

    #[test]
    fn typed_storage_detects_corruption() {
        let mut state = WorldState::new();
        state.storage_set(
            &ContractId::new("counter"),
            b"count".to_vec(),
            vec![1, 2, 3],
        );
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        let res: Result<Option<u64>, _> = ctx.get(b"count");
        assert!(matches!(res, Err(ContractError::Reverted(_))));
    }

    #[test]
    fn keys_with_prefix_lists_in_order() {
        let mut state = WorldState::new();
        let cid = ContractId::new("counter");
        state.storage_set(&cid, b"idx/2".to_vec(), vec![]);
        state.storage_set(&cid, b"idx/1".to_vec(), vec![]);
        state.storage_set(&cid, b"other".to_vec(), vec![]);
        let mut meter = GasMeter::new(1_000_000, GasSchedule::default());
        let mut ctx = ctx_on(&state, &mut meter);
        let keys = ctx.keys_with_prefix(b"idx/").unwrap();
        assert_eq!(keys, vec![b"idx/1".to_vec(), b"idx/2".to_vec()]);
    }

    #[test]
    fn error_display() {
        assert!(ContractError::UnknownMethod("m".into())
            .to_string()
            .contains("m"));
        assert!(ContractError::Reverted("why".into())
            .to_string()
            .contains("why"));
        assert_eq!(
            ContractError::from(OutOfGas { limit: 1 }),
            ContractError::OutOfGas
        );
    }
}
