//! Deterministic parallel block execution (ROADMAP item 2).
//!
//! A block's ready transactions are partitioned on *access sets* — the
//! state keys each call may read or write, derived from the decoded ABI
//! before execution (see `duc_contracts::access` for the DE App's
//! derivation). Transactions whose sets do not conflict run concurrently
//! on a work-stealing pool of scoped threads; their buffered
//! [`crate::contract::CallEffects`] are then committed in canonical
//! (sorted mempool key) order, so receipts, the event log, nonce bumps,
//! per-method gas and replay fingerprints stay byte-identical to serial
//! execution. Anything that cannot declare its footprint — raw transfers,
//! unknown methods, undecodable arguments — falls back to
//! [`AccessSet::Exclusive`], which conflicts with everything and therefore
//! serializes exactly where the serial executor would.

use std::collections::VecDeque;
use std::sync::Mutex;

use duc_sim::SimTime;

use crate::state::WorldState;
use crate::types::{Address, ContractId};

/// How a chain applies the transactions inside one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One at a time, in canonical mempool order (the historical
    /// behaviour; the default).
    #[default]
    Serial,
    /// Conflict-scheduled batches on a thread pool, committed in
    /// canonical order — byte-identical outputs, less wall-clock.
    Parallel,
}

impl ExecMode {
    /// Parses a mode name (`serial` / `parallel`, case-insensitive).
    pub fn parse(value: &str) -> Option<ExecMode> {
        if value.eq_ignore_ascii_case("serial") {
            Some(ExecMode::Serial)
        } else if value.eq_ignore_ascii_case("parallel") {
            Some(ExecMode::Parallel)
        } else {
            None
        }
    }

    /// The mode selected by `DUC_EXEC_MODE` (unset → [`ExecMode::Serial`]).
    /// Any other value panics so a typo cannot silently bench the wrong
    /// executor.
    pub fn from_env() -> ExecMode {
        match std::env::var("DUC_EXEC_MODE") {
            Err(_) => ExecMode::Serial,
            Ok(v) => ExecMode::parse(&v).unwrap_or_else(|| {
                panic!("DUC_EXEC_MODE must be \"serial\" or \"parallel\", got {v:?}")
            }),
        }
    }
}

/// Worker-thread count for the parallel executor: `DUC_EXEC_THREADS` when
/// set (min 1), else the host's available parallelism capped at 8 (block
/// batches are small; more threads only add scheduling overhead).
pub fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("DUC_EXEC_THREADS") {
        return v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("DUC_EXEC_THREADS must be a positive integer, got {v:?}"))
            .max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// One state key a transaction may touch. Key material is FNV-hashed into
/// `u64` *spaces* (a table prefix, e.g. `copy/{resource}\0`) and *slots*
/// within a space: a hash collision can only merge two distinct keys into
/// one, which adds a conflict edge and serializes — never the unsound
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKey {
    /// An account's balance + nonce row.
    Account(Address),
    /// One storage slot inside a key space.
    Slot {
        /// Hash of the slot's table/prefix.
        space: u64,
        /// Hash of the slot key within the space.
        key: u64,
    },
    /// A whole key space (prefix scans); overlaps every [`AccessKey::Slot`]
    /// in the same space.
    Table(u64),
}

impl AccessKey {
    /// Whether two keys can name overlapping state.
    fn overlaps(&self, other: &AccessKey) -> bool {
        match (self, other) {
            (AccessKey::Account(a), AccessKey::Account(b)) => a == b,
            (AccessKey::Slot { space: s1, key: k1 }, AccessKey::Slot { space: s2, key: k2 }) => {
                s1 == s2 && k1 == k2
            }
            (AccessKey::Table(s1), AccessKey::Table(s2)) => s1 == s2,
            (AccessKey::Slot { space, .. }, AccessKey::Table(t))
            | (AccessKey::Table(t), AccessKey::Slot { space, .. }) => space == t,
            _ => false,
        }
    }
}

/// The declared footprint of one transaction.
#[derive(Debug, Clone, Default)]
pub struct AccessSummary {
    /// Keys the call may read.
    pub reads: Vec<AccessKey>,
    /// Keys the call may write.
    pub writes: Vec<AccessKey>,
    /// Keys the call only applies commutative balance credits to (e.g. the
    /// market treasury): delta–delta pairs commute and never conflict, but
    /// a delta against a read or write on the same key does.
    pub deltas: Vec<AccessKey>,
}

/// A transaction's access set: either a declared footprint or "conflicts
/// with everything".
#[derive(Debug, Clone)]
pub enum AccessSet {
    /// Undeclarable: serializes against every other transaction.
    Exclusive,
    /// Declared reads/writes/deltas.
    Declared(AccessSummary),
}

impl AccessSet {
    /// An empty declared set (builder entry point).
    pub fn declared() -> AccessSet {
        AccessSet::Declared(AccessSummary::default())
    }

    /// Adds a read key.
    #[must_use]
    pub fn read(mut self, key: AccessKey) -> AccessSet {
        if let AccessSet::Declared(s) = &mut self {
            s.reads.push(key);
        }
        self
    }

    /// Adds a write key (implies the read).
    #[must_use]
    pub fn write(mut self, key: AccessKey) -> AccessSet {
        if let AccessSet::Declared(s) = &mut self {
            s.writes.push(key);
        }
        self
    }

    /// Adds a commutative-credit key.
    #[must_use]
    pub fn delta(mut self, key: AccessKey) -> AccessSet {
        if let AccessSet::Declared(s) = &mut self {
            s.deltas.push(key);
        }
        self
    }

    /// Augments the set with the fee/nonce row every transaction touches:
    /// the sender's account is read (affordability) and written (fee debit,
    /// refund, nonce bump). Ensures same-sender nonce chains land in
    /// strictly increasing levels.
    #[must_use]
    pub fn with_sender(mut self, sender: Address) -> AccessSet {
        if let AccessSet::Declared(s) = &mut self {
            s.reads.push(AccessKey::Account(sender));
            s.writes.push(AccessKey::Account(sender));
        }
        self
    }

    /// Whether two transactions must execute in canonical order.
    pub fn conflicts(&self, other: &AccessSet) -> bool {
        let (a, b) = match (self, other) {
            (AccessSet::Declared(a), AccessSet::Declared(b)) => (a, b),
            _ => return true,
        };
        let hits = |xs: &[AccessKey], ys: &[AccessKey]| {
            xs.iter().any(|x| ys.iter().any(|y| x.overlaps(y)))
        };
        // W–W, W–R, W–Δ in either direction; Δ–R in either direction.
        // R–R and Δ–Δ commute.
        hits(&a.writes, &b.writes)
            || hits(&a.writes, &b.reads)
            || hits(&a.reads, &b.writes)
            || hits(&a.writes, &b.deltas)
            || hits(&a.deltas, &b.writes)
            || hits(&a.deltas, &b.reads)
            || hits(&a.reads, &b.deltas)
    }
}

/// Everything an access-derivation function may inspect about one call.
/// Derivation runs on the proposer thread against the pre-block state, so
/// it may resolve indirections (e.g. the treasury address behind
/// `cfg/treasury`) that the call will re-read unchanged — anything that
/// *could* change mid-block must instead widen the set or go
/// [`AccessSet::Exclusive`].
pub struct AccessParams<'a> {
    /// Target contract.
    pub contract: &'a ContractId,
    /// Method name.
    pub method: &'a str,
    /// Encoded arguments.
    pub args: &'a [u8],
    /// Transaction sender.
    pub caller: Address,
    /// Block height being produced.
    pub block_height: u64,
    /// Block timestamp being produced.
    pub block_time: SimTime,
    /// Pre-block state.
    pub state: &'a WorldState,
}

/// Maps one decoded call to its access set. Installed per chain (see
/// `Ledger::install_access_fn`); absent → every call is
/// [`AccessSet::Exclusive`].
pub type AccessFn = Box<dyn Fn(&AccessParams<'_>) -> AccessSet>;

/// FNV-1a over one byte string (the shared key/space hasher — same
/// construction as the sharded router's placement hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a over a list of parts with per-part length framing, so
/// `("ab","c")` and `("a","bc")` hash differently.
pub fn fnv1a_parts(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in (part.len() as u64).to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in *part {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Assigns each transaction the earliest level consistent with its
/// conflicts: `level(i) = 1 + max(level(j))` over earlier conflicting `j`.
/// All transactions in one level are mutually conflict-free and may
/// execute concurrently; levels commit in order, and within a level the
/// commit order is canonical (input) order. O(n²) pairwise checks — block
/// batches are small and the sets are a handful of keys each.
pub fn schedule_levels(sets: &[AccessSet]) -> Vec<u32> {
    let mut levels: Vec<u32> = Vec::with_capacity(sets.len());
    for (i, set) in sets.iter().enumerate() {
        let mut level = 0u32;
        for j in 0..i {
            if set.conflicts(&sets[j]) {
                level = level.max(levels[j] + 1);
            }
        }
        levels.push(level);
    }
    levels
}

/// Runs `f(0..n)` across a work-stealing pool of `threads` scoped threads
/// and returns the results in index order. Tasks are dealt round-robin
/// onto per-worker deques; an idle worker steals from the back of victims
/// in an order drawn from a seeded [`duc_sim::Rng`], so the *schedule* is
/// load-adaptive while the *output* is a pure function of the inputs.
/// Falls back to an inline loop for tiny batches or a single thread.
pub fn run_batch<T, F>(threads: usize, seed: u64, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        queues[i % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(i);
    }
    // Per-worker victim orders, fixed up front from the seed: stealing
    // stays deterministic in *choice* (though not in interleaving, which
    // the index-keyed result merge makes irrelevant).
    let mut rng = duc_sim::Rng::seed_from_u64(seed);
    let victim_orders: Vec<Vec<usize>> = (0..workers)
        .map(|w| {
            let mut order: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
            rng.fork(w as u64).shuffle(&mut order);
            order
        })
        .collect();
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let f = &f;
                let order = &victim_orders[w];
                scope.spawn(move || {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let task = queues[w]
                            .lock()
                            .expect("queue poisoned")
                            .pop_front()
                            .or_else(|| {
                                order.iter().find_map(|&v| {
                                    queues[v].lock().expect("queue poisoned").pop_back()
                                })
                            });
                        match task {
                            Some(i) => done.push((i, f(i))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("executor worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every task dealt to a queue runs exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(space: u64, key: u64) -> AccessKey {
        AccessKey::Slot { space, key }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(ExecMode::parse("serial"), Some(ExecMode::Serial));
        assert_eq!(ExecMode::parse("PARALLEL"), Some(ExecMode::Parallel));
        assert_eq!(ExecMode::parse("both"), None);
    }

    #[test]
    fn reads_commute_writes_serialize() {
        let r = AccessSet::declared().read(slot(1, 1));
        let w = AccessSet::declared().write(slot(1, 1));
        let w_other = AccessSet::declared().write(slot(1, 2));
        assert!(!r.conflicts(&r));
        assert!(r.conflicts(&w));
        assert!(w.conflicts(&w));
        assert!(!w.conflicts(&w_other));
    }

    #[test]
    fn tables_overlap_their_slots() {
        let scan = AccessSet::declared().read(AccessKey::Table(7));
        let write_in = AccessSet::declared().write(slot(7, 3));
        let write_out = AccessSet::declared().write(slot(8, 3));
        assert!(scan.conflicts(&write_in));
        assert!(!scan.conflicts(&write_out));
    }

    #[test]
    fn deltas_commute_with_each_other_only() {
        let a = Address::from_seed(b"treasury");
        let d = AccessSet::declared().delta(AccessKey::Account(a));
        let r = AccessSet::declared().read(AccessKey::Account(a));
        let w = AccessSet::declared().write(AccessKey::Account(a));
        assert!(!d.conflicts(&d));
        assert!(d.conflicts(&r));
        assert!(d.conflicts(&w));
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let e = AccessSet::Exclusive;
        let r = AccessSet::declared().read(slot(1, 1));
        assert!(e.conflicts(&r));
        assert!(r.conflicts(&e));
        assert!(e.conflicts(&e));
    }

    #[test]
    fn sender_augmentation_orders_nonce_chains() {
        let alice = Address::from_seed(b"alice");
        let t1 = AccessSet::declared().write(slot(1, 1)).with_sender(alice);
        let t2 = AccessSet::declared().write(slot(2, 2)).with_sender(alice);
        // Disjoint storage, same sender: the fee/nonce row still orders them.
        assert!(t1.conflicts(&t2));
        let levels = schedule_levels(&[t1, t2]);
        assert_eq!(levels, vec![0, 1]);
    }

    #[test]
    fn levels_chain_through_transitive_conflicts() {
        // t0 writes A; t1 reads A, writes B; t2 reads B; t3 disjoint.
        let t0 = AccessSet::declared().write(slot(0, 0));
        let t1 = AccessSet::declared().read(slot(0, 0)).write(slot(0, 1));
        let t2 = AccessSet::declared().read(slot(0, 1));
        let t3 = AccessSet::declared().write(slot(9, 9));
        let levels = schedule_levels(&[t0, t1, t2, t3]);
        assert_eq!(levels, vec![0, 1, 2, 0]);
    }

    #[test]
    fn exclusive_occupies_singleton_levels() {
        let a = AccessSet::declared().write(slot(1, 1));
        let b = AccessSet::Exclusive;
        let c = AccessSet::declared().write(slot(2, 2));
        let levels = schedule_levels(&[a, b, c]);
        assert_eq!(levels, vec![0, 1, 2]);
    }

    #[test]
    fn run_batch_returns_results_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_batch(threads, 42, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_batch_handles_empty_and_singleton() {
        assert_eq!(run_batch(4, 0, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_batch(4, 0, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn framed_part_hashing_separates_boundaries() {
        assert_ne!(fnv1a_parts(&[b"ab", b"c"]), fnv1a_parts(&[b"a", b"bc"]));
        assert_eq!(fnv1a_parts(&[b"ab", b"c"]), fnv1a_parts(&[b"ab", b"c"]));
    }
}
