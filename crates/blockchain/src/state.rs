//! The world state: accounts and a paged contract-slot store.
//!
//! Contract storage is organized as fixed-capacity *pages* — contiguous
//! key ranges per contract, in the style of B-tree leaves — so the
//! resident footprint is bounded by a page cache rather than growing
//! linearly with the population. Cold pages spill through a
//! [`duc_storage::PageStore`] (memory- or file-backed) and fault back in
//! transparently on read; the XOR-multiset commitment accumulator makes
//! this safe, because eviction never touches the commitment and every
//! fault-in re-verifies the page digest.

use std::borrow::Borrow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound::{Excluded, Included, Unbounded};
use std::sync::Mutex;

use duc_crypto::{hash_parts, Digest};
use duc_storage::{decode_page, encode_page, PageRef, PageStore, PagingConfig};

use crate::types::{Address, Amount, ContractId};

/// One account's ledger entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Spendable balance.
    pub balance: Amount,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

// --------------------------------------------------------------- inline key

/// Longest key stored without a heap allocation. DE App hot keys
/// (`pod/{webid}`, `sub/{webid}`, `cert/{digest}`) fit comfortably;
/// composite round/copy keys spill to a boxed slice.
const INLINE_KEY_CAP: usize = 55;

/// A storage key that keeps short keys inline (no per-key heap box).
///
/// Ordering, equality and hashing all delegate to the byte slice, so an
/// `InlineKey` map can be probed with a bare `&[u8]` through [`Borrow`].
#[derive(Clone)]
pub enum InlineKey {
    /// Keys up to [`INLINE_KEY_CAP`] bytes, stored in place.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// The key bytes (tail is zero padding).
        buf: [u8; INLINE_KEY_CAP],
    },
    /// Longer keys, boxed.
    Heap(Box<[u8]>),
}

impl InlineKey {
    /// Builds a key from a byte slice.
    #[must_use]
    pub fn from_slice(key: &[u8]) -> InlineKey {
        if key.len() <= INLINE_KEY_CAP {
            let mut buf = [0u8; INLINE_KEY_CAP];
            buf[..key.len()].copy_from_slice(key);
            InlineKey::Inline {
                len: key.len() as u8,
                buf,
            }
        } else {
            InlineKey::Heap(key.into())
        }
    }

    /// The key bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            InlineKey::Inline { len, buf } => &buf[..*len as usize],
            InlineKey::Heap(b) => b,
        }
    }
}

impl Borrow<[u8]> for InlineKey {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for InlineKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InlineKey {}

impl PartialOrd for InlineKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InlineKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for InlineKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for InlineKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InlineKey({:?})",
            String::from_utf8_lossy(self.as_slice())
        )
    }
}

// ------------------------------------------------------------ paging stats

/// Residency counters for the paged slot store.
///
/// These are *observability* numbers (exported as `/metrics` gauges and
/// E19 columns), never part of replay fingerprints: under parallel
/// execution the fault/eviction pattern depends on thread interleaving
/// while the state content — and therefore the commitment — does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Pages currently decoded in memory.
    pub resident_pages: usize,
    /// Pages in existence (resident + evicted).
    pub total_pages: usize,
    /// Key + value bytes held by resident pages.
    pub resident_bytes: usize,
    /// Pages pushed out of the cache since genesis.
    pub evictions: u64,
    /// Pages decoded back in since genesis.
    pub fault_ins: u64,
    /// Pages spilled to the store (net of compaction rewrites).
    pub spilled_pages: u64,
    /// Live bytes in the spill log.
    pub spilled_live_bytes: u64,
    /// Retired bytes in the spill log awaiting compaction.
    pub spilled_dead_bytes: u64,
    /// Spill-log compaction passes.
    pub compactions: u64,
}

impl PagingStats {
    /// Accumulates another shard's stats into this one.
    pub fn merge(&mut self, other: &PagingStats) {
        self.resident_pages += other.resident_pages;
        self.total_pages += other.total_pages;
        self.resident_bytes += other.resident_bytes;
        self.evictions += other.evictions;
        self.fault_ins += other.fault_ins;
        self.spilled_pages += other.spilled_pages;
        self.spilled_live_bytes += other.spilled_live_bytes;
        self.spilled_dead_bytes += other.spilled_dead_bytes;
        self.compactions += other.compactions;
    }
}

// ------------------------------------------------------------- paged slots

type PageId = u64;

#[derive(Debug)]
enum PageData {
    /// Decoded slots, ordered by key.
    Resident(BTreeMap<InlineKey, Vec<u8>>),
    /// Dropped from memory; `Page::spill` holds the verified handle.
    Evicted,
}

#[derive(Debug)]
struct Page {
    contract: ContractId,
    /// Lowest key this page covers (its directory key). The page owns
    /// `[first, next page's first)` within its contract.
    first: InlineKey,
    data: PageData,
    /// LRU timestamp; `(last_used, id)` is the page's entry in the LRU
    /// index while resident.
    last_used: u64,
    /// A spill-log copy of the page, valid only while the resident data is
    /// clean. Dirtying a page retires the handle immediately, so
    /// `spill.is_some()` ⟺ the log holds the page's current content.
    spill: Option<PageRef>,
}

/// The paged contract-slot store. All mutation goes through
/// [`WorldState`], which keeps the commitment accumulator in sync.
#[derive(Debug)]
struct PagedSlots {
    /// Per-contract page directory: first key → page id.
    dir: BTreeMap<ContractId, BTreeMap<InlineKey, PageId>>,
    pages: HashMap<PageId, Page>,
    /// Resident pages ordered by last use — O(log n) victim selection.
    lru: BTreeSet<(u64, PageId)>,
    next_page: PageId,
    tick: u64,
    /// Maximum slots per page before a median split.
    capacity: usize,
    /// Maximum resident pages (`None` = unbounded).
    limit: Option<usize>,
    resident: usize,
    /// Total slots across all pages (commitment cardinality input).
    slot_count: usize,
    /// Total value bytes across all pages (state-growth metric).
    byte_size: usize,
    store: PageStore,
    evictions: u64,
    fault_ins: u64,
}

impl PagedSlots {
    fn new(capacity: usize, limit: Option<usize>, store: PageStore) -> PagedSlots {
        PagedSlots {
            dir: BTreeMap::new(),
            pages: HashMap::new(),
            lru: BTreeSet::new(),
            next_page: 0,
            tick: 0,
            capacity: capacity.max(1),
            limit,
            resident: 0,
            slot_count: 0,
            byte_size: 0,
            store,
            evictions: 0,
            fault_ins: 0,
        }
    }

    fn from_config(cfg: &PagingConfig) -> PagedSlots {
        let store = match &cfg.spill_dir {
            Some(dir) => PageStore::in_dir(dir).expect("open page spill file"),
            None => PageStore::in_memory(),
        };
        PagedSlots::new(cfg.page_capacity, cfg.resident_limit, store)
    }

    /// The page whose range covers `key`, if any page's range starts at or
    /// below it.
    fn owner_of(&self, contract: &ContractId, key: &[u8]) -> Option<PageId> {
        let dir = self.dir.get(contract)?;
        dir.range::<[u8], _>((Unbounded, Included(key)))
            .next_back()
            .map(|(_, &id)| id)
    }

    fn lru_touch(&mut self, id: PageId) {
        let page = self.pages.get_mut(&id).expect("page exists");
        if matches!(page.data, PageData::Evicted) {
            return;
        }
        self.lru.remove(&(page.last_used, id));
        self.tick += 1;
        page.last_used = self.tick;
        self.lru.insert((self.tick, id));
    }

    /// Decodes an evicted page back into memory, verifying its digest.
    ///
    /// # Panics
    /// A failed read is a state-integrity violation (corrupt page bytes or
    /// a stale handle below the compaction horizon) and deliberately fatal:
    /// silently continuing would fork the replicated state machine.
    fn fault_in(&mut self, id: PageId) {
        let page = self.pages.get_mut(&id).expect("page exists");
        if matches!(page.data, PageData::Resident(_)) {
            return;
        }
        let spill = page.spill.expect("evicted page keeps a spill handle");
        let bytes = self
            .store
            .read(&spill)
            .unwrap_or_else(|e| panic!("paged world state fault-in failed: {e}"));
        let slots = decode_page(&bytes).expect("spilled page decodes");
        let map: BTreeMap<InlineKey, Vec<u8>> = slots
            .into_iter()
            .map(|(k, v)| (InlineKey::from_slice(&k), v))
            .collect();
        let page = self.pages.get_mut(&id).expect("page exists");
        page.data = PageData::Resident(map);
        self.resident += 1;
        self.fault_ins += 1;
        self.lru_touch(id);
    }

    /// Marks a resident page as mutated: its spill-log copy (if any) no
    /// longer matches and is retired on the spot.
    fn dirty(&mut self, id: PageId) {
        let page = self.pages.get_mut(&id).expect("page exists");
        if let Some(spill) = page.spill.take() {
            self.store.retire(&spill);
        }
    }

    /// Spills (if needed) and drops one resident page.
    fn evict(&mut self, id: PageId) {
        let needs_spill = match self.pages.get(&id) {
            Some(page) if matches!(page.data, PageData::Resident(_)) => page.spill.is_none(),
            _ => return,
        };
        if needs_spill {
            let page = self.pages.get(&id).expect("page exists");
            let PageData::Resident(slots) = &page.data else {
                unreachable!("checked resident above")
            };
            let bytes = encode_page(slots.iter().map(|(k, v)| (k.as_slice(), v.as_slice())));
            let spill = self.store.append(&bytes).expect("page spill append");
            self.pages.get_mut(&id).expect("page exists").spill = Some(spill);
        }
        let page = self.pages.get_mut(&id).expect("page exists");
        page.data = PageData::Evicted;
        let last_used = page.last_used;
        self.lru.remove(&(last_used, id));
        self.resident -= 1;
        self.evictions += 1;
    }

    /// Evicts least-recently-used pages until the residency limit holds.
    fn enforce_limit(&mut self) {
        let Some(limit) = self.limit else { return };
        while self.resident > limit {
            let &(_, id) = self.lru.iter().next().expect("resident pages are indexed");
            self.evict(id);
        }
        self.maybe_compact();
    }

    /// Rewrites the spill log once dead weight dominates, refreshing every
    /// live handle. Deterministic directory order keeps file layout
    /// reproducible (not that anything hashes it).
    fn maybe_compact(&mut self) {
        if !self.store.should_compact() {
            return;
        }
        let mut ids = Vec::new();
        let mut refs = Vec::new();
        for dir in self.dir.values() {
            for &id in dir.values() {
                if let Some(spill) = self.pages.get(&id).and_then(|p| p.spill) {
                    ids.push(id);
                    refs.push(spill);
                }
            }
        }
        let fresh = self.store.compact(&refs).expect("page log compaction");
        for (id, spill) in ids.into_iter().zip(fresh) {
            self.pages.get_mut(&id).expect("page exists").spill = Some(spill);
        }
    }

    fn alloc_page(&mut self, contract: ContractId, first: InlineKey) -> PageId {
        let id = self.next_page;
        self.next_page += 1;
        self.tick += 1;
        self.pages.insert(
            id,
            Page {
                contract: contract.clone(),
                first: first.clone(),
                data: PageData::Resident(BTreeMap::new()),
                last_used: self.tick,
                spill: None,
            },
        );
        self.lru.insert((self.tick, id));
        self.resident += 1;
        self.dir.entry(contract).or_default().insert(first, id);
        id
    }

    /// The page that will own `key` after this call: the covering page, or
    /// the contract's lowest page extended downward, or a fresh page.
    fn page_for_insert(&mut self, contract: &ContractId, key: &[u8]) -> PageId {
        if let Some(id) = self.owner_of(contract, key) {
            return id;
        }
        let first_entry = self
            .dir
            .get(contract)
            .and_then(|d| d.iter().next().map(|(k, &id)| (k.clone(), id)));
        match first_entry {
            Some((old_first, id)) => {
                let dir = self.dir.get_mut(contract).expect("contract dir exists");
                dir.remove(&old_first);
                let new_first = InlineKey::from_slice(key);
                dir.insert(new_first.clone(), id);
                self.pages.get_mut(&id).expect("page exists").first = new_first;
                id
            }
            None => self.alloc_page(contract.clone(), InlineKey::from_slice(key)),
        }
    }

    /// Splits a page at its median key once it exceeds capacity.
    fn split_if_over(&mut self, id: PageId) {
        let (contract, mid, upper) = {
            let page = self.pages.get_mut(&id).expect("page exists");
            let PageData::Resident(slots) = &mut page.data else {
                return;
            };
            if slots.len() <= self.capacity {
                return;
            }
            let mid = slots
                .keys()
                .nth(slots.len() / 2)
                .cloned()
                .expect("over-capacity page is nonempty");
            let upper = slots.split_off(&mid);
            (page.contract.clone(), mid, upper)
        };
        let nid = self.next_page;
        self.next_page += 1;
        self.tick += 1;
        self.pages.insert(
            nid,
            Page {
                contract: contract.clone(),
                first: mid.clone(),
                data: PageData::Resident(upper),
                last_used: self.tick,
                spill: None,
            },
        );
        self.lru.insert((self.tick, nid));
        self.resident += 1;
        self.dir
            .get_mut(&contract)
            .expect("contract dir exists")
            .insert(mid, nid);
    }

    fn insert(&mut self, contract: &ContractId, key: &[u8], value: Vec<u8>) -> Option<Vec<u8>> {
        let id = self.page_for_insert(contract, key);
        self.fault_in(id);
        self.dirty(id);
        let value_len = value.len();
        let page = self.pages.get_mut(&id).expect("page exists");
        let PageData::Resident(slots) = &mut page.data else {
            unreachable!("faulted in above")
        };
        let prev = slots.insert(InlineKey::from_slice(key), value);
        match &prev {
            Some(old) => self.byte_size = self.byte_size - old.len() + value_len,
            None => {
                self.slot_count += 1;
                self.byte_size += value_len;
            }
        }
        self.lru_touch(id);
        self.split_if_over(id);
        self.enforce_limit();
        prev
    }

    fn remove(&mut self, contract: &ContractId, key: &[u8]) -> Option<Vec<u8>> {
        let id = self.owner_of(contract, key)?;
        self.fault_in(id);
        let page = self.pages.get_mut(&id).expect("page exists");
        let PageData::Resident(slots) = &mut page.data else {
            unreachable!("faulted in above")
        };
        if !slots.contains_key(key) {
            self.lru_touch(id);
            return None;
        }
        self.dirty(id);
        let page = self.pages.get_mut(&id).expect("page exists");
        let PageData::Resident(slots) = &mut page.data else {
            unreachable!("faulted in above")
        };
        let prev = slots.remove(key).expect("checked present");
        self.slot_count -= 1;
        self.byte_size -= prev.len();
        if slots.is_empty() {
            let first = page.first.clone();
            let contract = page.contract.clone();
            let last_used = page.last_used;
            if let Some(spill) = page.spill.take() {
                self.store.retire(&spill);
            }
            self.pages.remove(&id);
            self.lru.remove(&(last_used, id));
            self.resident -= 1;
            let dir = self.dir.get_mut(&contract).expect("contract dir exists");
            dir.remove(&first);
            if dir.is_empty() {
                self.dir.remove(&contract);
            }
        } else {
            self.lru_touch(id);
        }
        self.maybe_compact();
        Some(prev)
    }

    fn get(&mut self, contract: &ContractId, key: &[u8]) -> Option<Vec<u8>> {
        let id = self.owner_of(contract, key)?;
        self.fault_in(id);
        let page = self.pages.get(&id).expect("page exists");
        let PageData::Resident(slots) = &page.data else {
            unreachable!("faulted in above")
        };
        let value = slots.get(key).cloned();
        self.lru_touch(id);
        self.enforce_limit();
        value
    }

    fn contains(&mut self, contract: &ContractId, key: &[u8]) -> bool {
        let Some(id) = self.owner_of(contract, key) else {
            return false;
        };
        self.fault_in(id);
        let page = self.pages.get(&id).expect("page exists");
        let PageData::Resident(slots) = &page.data else {
            unreachable!("faulted in above")
        };
        let hit = slots.contains_key(key);
        self.lru_touch(id);
        self.enforce_limit();
        hit
    }

    /// Visits `contract`'s slots whose keys start with `prefix`, in key
    /// order, faulting in only pages whose range can intersect the prefix.
    fn for_each_prefix(
        &mut self,
        contract: &ContractId,
        prefix: &[u8],
        f: &mut dyn FnMut(&[u8], &[u8]),
    ) {
        let Some(dir) = self.dir.get(contract) else {
            return;
        };
        let mut ids: Vec<PageId> = Vec::new();
        if let Some((_, &id)) = dir
            .range::<[u8], _>((Unbounded, Included(prefix)))
            .next_back()
        {
            ids.push(id);
        }
        for (first, &id) in dir.range::<[u8], _>((Excluded(prefix), Unbounded)) {
            // A page starting past the prefix range cannot hold matching
            // keys (they would sort below its first key) — stop without
            // faulting it in.
            if !first.as_slice().starts_with(prefix) {
                break;
            }
            ids.push(id);
        }
        for id in ids {
            self.fault_in(id);
            let page = self.pages.get(&id).expect("page exists");
            let PageData::Resident(slots) = &page.data else {
                unreachable!("faulted in above")
            };
            for (k, v) in slots.range::<[u8], _>((Included(prefix), Unbounded)) {
                if !k.as_slice().starts_with(prefix) {
                    break;
                }
                f(k.as_slice(), v.as_slice());
            }
            self.lru_touch(id);
            self.enforce_limit();
        }
    }

    fn stats(&self) -> PagingStats {
        let resident_bytes = self
            .pages
            .values()
            .filter_map(|p| match &p.data {
                PageData::Resident(slots) => Some(
                    slots
                        .iter()
                        .map(|(k, v)| k.as_slice().len() + v.len())
                        .sum::<usize>(),
                ),
                PageData::Evicted => None,
            })
            .sum();
        PagingStats {
            resident_pages: self.resident,
            total_pages: self.pages.len(),
            resident_bytes,
            evictions: self.evictions,
            fault_ins: self.fault_ins,
            spilled_pages: self.store.appended(),
            spilled_live_bytes: self.store.live_bytes(),
            spilled_dead_bytes: self.store.dead_bytes(),
            compactions: self.store.compactions(),
        }
    }

    /// Full integrity sweep: every evicted page must read back under its
    /// verified handle (no stale or compacted-away page is reachable), the
    /// directory must partition each contract's key space, and the decoded
    /// whole must reproduce the maintained counters and the caller's
    /// accumulator exactly.
    fn verify(
        &mut self,
        accounts: &BTreeMap<Address, AccountState>,
        acc: &[u8; 32],
    ) -> Result<(), String> {
        let mut recomputed = [0u8; 32];
        for (addr, account) in accounts {
            xor_row(&mut recomputed, &account_row(addr, account));
        }
        let mut slot_count = 0usize;
        let mut byte_size = 0usize;
        let PagedSlots {
            dir, pages, store, ..
        } = self;
        for (contract, cdir) in dir.iter() {
            let mut prev_last: Option<InlineKey> = None;
            for (first, id) in cdir.iter() {
                let page = pages
                    .get(id)
                    .ok_or_else(|| format!("directory references missing page {id}"))?;
                if page.first != *first {
                    return Err(format!("page {id} first-key desynced from directory"));
                }
                let decoded;
                let slots: Vec<(&[u8], &[u8])> = match &page.data {
                    PageData::Resident(slots) => slots
                        .iter()
                        .map(|(k, v)| (k.as_slice(), v.as_slice()))
                        .collect(),
                    PageData::Evicted => {
                        let spill = page
                            .spill
                            .ok_or_else(|| format!("evicted page {id} lost its spill handle"))?;
                        let bytes = store
                            .read(&spill)
                            .map_err(|e| format!("page {id} unreadable: {e}"))?;
                        decoded = decode_page(&bytes)
                            .map_err(|e| format!("page {id} undecodable: {e}"))?;
                        decoded.iter().map(|(k, v)| (&k[..], &v[..])).collect()
                    }
                };
                if let Some((lowest, _)) = slots.first() {
                    if *lowest < first.as_slice() {
                        return Err(format!("page {id} holds a key below its first key"));
                    }
                    if let Some(prev) = &prev_last {
                        if prev.as_slice() >= first.as_slice() {
                            return Err(format!("page {id} range overlaps its predecessor"));
                        }
                    }
                }
                for (k, v) in &slots {
                    xor_row(&mut recomputed, &storage_row(contract, k, v));
                    slot_count += 1;
                    byte_size += v.len();
                }
                if let Some((last, _)) = slots.last() {
                    prev_last = Some(InlineKey::from_slice(last));
                }
            }
        }
        if slot_count != self.slot_count {
            return Err(format!(
                "slot count desynced: maintained {} vs actual {slot_count}",
                self.slot_count
            ));
        }
        if byte_size != self.byte_size {
            return Err(format!(
                "byte size desynced: maintained {} vs actual {byte_size}",
                self.byte_size
            ));
        }
        if recomputed != *acc {
            return Err("commitment accumulator diverges from page contents".to_string());
        }
        Ok(())
    }

    /// A fully-resident deep copy with its own fresh spill log. Evicted
    /// pages are decoded read-through (the source's residency is
    /// untouched); the copy then enforces its own limit.
    fn clone_materialized(&mut self) -> PagedSlots {
        let store = self
            .store
            .fresh_like()
            .unwrap_or_else(|_| PageStore::in_memory());
        let mut out = PagedSlots::new(self.capacity, self.limit, store);
        out.next_page = self.next_page;
        let PagedSlots {
            dir, pages, store, ..
        } = self;
        for (contract, cdir) in dir.iter() {
            let mut out_dir = BTreeMap::new();
            for (first, id) in cdir.iter() {
                let page = pages.get(id).expect("directory references live pages");
                let slots: BTreeMap<InlineKey, Vec<u8>> = match &page.data {
                    PageData::Resident(slots) => slots.clone(),
                    PageData::Evicted => {
                        let spill = page.spill.expect("evicted page keeps a spill handle");
                        let bytes = store
                            .read(&spill)
                            .unwrap_or_else(|e| panic!("paged state clone failed: {e}"));
                        decode_page(&bytes)
                            .expect("spilled page decodes")
                            .into_iter()
                            .map(|(k, v)| (InlineKey::from_slice(&k), v))
                            .collect()
                    }
                };
                out.tick += 1;
                out.byte_size += slots.values().map(Vec::len).sum::<usize>();
                out.slot_count += slots.len();
                out.pages.insert(
                    *id,
                    Page {
                        contract: contract.clone(),
                        first: first.clone(),
                        data: PageData::Resident(slots),
                        last_used: out.tick,
                        spill: None,
                    },
                );
                out.lru.insert((out.tick, *id));
                out.resident += 1;
                out_dir.insert(first.clone(), *id);
            }
            out.dir.insert(contract.clone(), out_dir);
        }
        out.enforce_limit();
        out
    }
}

// -------------------------------------------------------------- world state

/// The replicated state machine's state: account balances/nonces plus a
/// paged key/value store per contract.
///
/// Ordered pages keep iteration deterministic, and every mutator keeps the
/// commitment accumulator in sync so [`WorldState::commitment`] — which
/// block state roots depend on — stays O(1) in the state size. Reads go
/// through a `Mutex` because a read may *fault in* an evicted page (and
/// evict another); the lock keeps `WorldState: Sync` for the parallel
/// executor, which probes shared state from scoped threads.
#[derive(Debug)]
pub struct WorldState {
    accounts: BTreeMap<Address, AccountState>,
    slots: Mutex<PagedSlots>,
    /// XOR multiset of per-row digests (one row per account, one per
    /// storage slot). XOR is commutative and self-inverse, so replacing a
    /// row is "XOR out the old, XOR in the new" and the accumulator always
    /// equals the XOR over the *current* rows, independent of history —
    /// which is exactly what a state commitment must hash. Maintaining it
    /// incrementally keeps block sealing from walking the full state, and
    /// makes paging invisible to commitments: eviction moves bytes, not
    /// rows.
    acc: [u8; 32],
}

/// Folds one row digest into (or out of) the accumulator.
fn xor_row(acc: &mut [u8; 32], row: &Digest) {
    for (a, b) in acc.iter_mut().zip(row.as_bytes()) {
        *a ^= b;
    }
}

/// The commitment row for one account (domain-separated from slot rows).
fn account_row(addr: &Address, acct: &AccountState) -> Digest {
    hash_parts(&[
        b"duc/state/acct",
        addr.0.as_bytes(),
        &acct.balance.to_le_bytes(),
        &acct.nonce.to_le_bytes(),
    ])
}

/// The commitment row for one storage slot.
fn storage_row(contract: &ContractId, key: &[u8], value: &[u8]) -> Digest {
    hash_parts(&[b"duc/state/slot", contract.0.as_bytes(), key, value])
}

impl WorldState {
    /// Empty state: always paged, unbounded residency, in-memory spill —
    /// behaviour (commitments, iteration order, gas) is byte-identical to
    /// any other cache size.
    pub fn new() -> WorldState {
        WorldState::with_paging(&PagingConfig::default())
    }

    /// Empty state with explicit paging knobs.
    pub fn with_paging(cfg: &PagingConfig) -> WorldState {
        WorldState {
            accounts: BTreeMap::new(),
            slots: Mutex::new(PagedSlots::from_config(cfg)),
            acc: [0u8; 32],
        }
    }

    fn slots_mut(&mut self) -> &mut PagedSlots {
        self.slots.get_mut().expect("world-state lock poisoned")
    }

    fn slots_shared(&self) -> std::sync::MutexGuard<'_, PagedSlots> {
        self.slots.lock().expect("world-state lock poisoned")
    }

    /// The account entry (default zero for unknown addresses).
    pub fn account(&self, addr: &Address) -> AccountState {
        self.accounts.get(addr).copied().unwrap_or_default()
    }

    /// Current balance.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.account(addr).balance
    }

    /// Current nonce.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.account(addr).nonce
    }

    /// Applies `mutate` to `addr`'s account entry (created on first touch),
    /// keeping the commitment accumulator in sync.
    fn with_account(&mut self, addr: &Address, mutate: impl FnOnce(&mut AccountState)) {
        if let Some(prev) = self.accounts.get(addr) {
            let old = account_row(addr, prev);
            xor_row(&mut self.acc, &old);
        }
        let entry = self.accounts.entry(*addr).or_default();
        mutate(entry);
        let new = account_row(addr, entry);
        xor_row(&mut self.acc, &new);
    }

    /// Credits an account (used by genesis funding and fee redistribution).
    pub fn credit(&mut self, addr: Address, amount: Amount) {
        self.with_account(&addr, |a| a.balance += amount);
    }

    /// Debits an account.
    ///
    /// # Errors
    /// Returns `Err(())` without mutating on insufficient balance.
    pub fn debit(&mut self, addr: &Address, amount: Amount) -> Result<(), InsufficientFunds> {
        let available = self.balance(addr);
        if available < amount {
            return Err(InsufficientFunds {
                needed: amount,
                available,
            });
        }
        self.with_account(addr, |a| a.balance -= amount);
        Ok(())
    }

    /// Increments an account's nonce.
    pub fn bump_nonce(&mut self, addr: &Address) {
        self.with_account(addr, |a| a.nonce += 1);
    }

    /// Reads a contract storage slot. Owned because the slot may live on
    /// an evicted page that is decoded (and possibly re-evicted) on the
    /// way — there is no stable buffer to borrow from.
    pub fn storage_get(&self, contract: &ContractId, key: &[u8]) -> Option<Vec<u8>> {
        self.slots_shared().get(contract, key)
    }

    /// Whether a contract storage slot exists (no value clone).
    pub fn storage_contains(&self, contract: &ContractId, key: &[u8]) -> bool {
        self.slots_shared().contains(contract, key)
    }

    /// Writes a contract storage slot.
    pub fn storage_set(&mut self, contract: &ContractId, key: Vec<u8>, value: Vec<u8>) {
        let new = storage_row(contract, &key, &value);
        let prev = self.slots_mut().insert(contract, &key, value);
        if let Some(prev) = prev {
            let old = storage_row(contract, &key, &prev);
            xor_row(&mut self.acc, &old);
        }
        xor_row(&mut self.acc, &new);
    }

    /// Deletes a contract storage slot; returns whether it existed.
    pub fn storage_remove(&mut self, contract: &ContractId, key: &[u8]) -> bool {
        match self.slots_mut().remove(contract, key) {
            Some(prev) => {
                let old = storage_row(contract, key, &prev);
                xor_row(&mut self.acc, &old);
                true
            }
            None => false,
        }
    }

    /// Visits a contract's slots whose keys start with `prefix`, in key
    /// order (contracts build indexes on ordered key prefixes). Callback
    /// style because pages may fault in and out during the walk; only
    /// pages whose range can intersect the prefix are touched.
    pub fn storage_for_each_prefix(
        &self,
        contract: &ContractId,
        prefix: &[u8],
        mut f: impl FnMut(&[u8], &[u8]),
    ) {
        self.slots_shared()
            .for_each_prefix(contract, prefix, &mut f);
    }

    /// Collects keys under a prefix (convenience over
    /// [`WorldState::storage_for_each_prefix`]).
    pub fn storage_keys_with_prefix(&self, contract: &ContractId, prefix: &[u8]) -> Vec<Vec<u8>> {
        let mut keys = Vec::new();
        self.storage_for_each_prefix(contract, prefix, |k, _| keys.push(k.to_vec()));
        keys
    }

    /// Number of storage slots across all contracts (state-growth metric,
    /// experiment E12). Maintained incrementally — O(1).
    pub fn storage_slot_count(&self) -> usize {
        self.slots_shared().slot_count
    }

    /// Total bytes held in storage values (state-growth metric). Maintained
    /// incrementally — O(1).
    pub fn storage_byte_size(&self) -> usize {
        self.slots_shared().byte_size
    }

    /// Residency counters for the paged slot store (observability only;
    /// never folded into replay fingerprints).
    pub fn paging_stats(&self) -> PagingStats {
        self.slots_shared().stats()
    }

    /// Verifies page-store integrity: every evicted page reads back under
    /// its digest-verified handle, page ranges partition the key space,
    /// and the decoded whole reproduces the commitment accumulator. Does
    /// not change residency.
    ///
    /// # Errors
    /// A human-readable description of the first violation found.
    pub fn verify_pages(&self) -> Result<(), String> {
        let accounts = &self.accounts;
        let acc = self.acc;
        self.slots_shared().verify(accounts, &acc)
    }

    /// A digest committing to the entire state (accounts + storage).
    ///
    /// Reads the incrementally-maintained accumulator, so sealing a block
    /// costs O(1) regardless of how many accounts and slots exist. The
    /// entry counts are folded in so states whose accumulators collide by
    /// row-set size manipulation still separate on cardinality.
    pub fn commitment(&self) -> Digest {
        hash_parts(&[
            b"duc/state",
            &self.acc,
            &(self.accounts.len() as u64).to_le_bytes(),
            &(self.storage_slot_count() as u64).to_le_bytes(),
        ])
    }

    /// The raw XOR-multiset accumulator behind [`WorldState::commitment`].
    ///
    /// Checkpoints persist this so a restored store can resume incremental
    /// maintenance without replaying history.
    pub fn accumulator(&self) -> [u8; 32] {
        self.acc
    }
}

impl Default for WorldState {
    fn default() -> Self {
        WorldState::new()
    }
}

impl Clone for WorldState {
    /// Deep copy: the clone materializes every page into its own fresh
    /// spill log (then re-applies its residency limit), so the two states
    /// evolve — and compact — fully independently.
    fn clone(&self) -> Self {
        WorldState {
            accounts: self.accounts.clone(),
            slots: Mutex::new(self.slots_shared().clone_materialized()),
            acc: self.acc,
        }
    }
}

/// Debit failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientFunds {
    /// Amount requested.
    pub needed: Amount,
    /// Amount available.
    pub available: Amount,
}

impl std::fmt::Display for InsufficientFunds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient funds: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientFunds {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ContractId {
        ContractId::new("dex")
    }

    fn collect_prefix(
        s: &WorldState,
        contract: &ContractId,
        prefix: &[u8],
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        s.storage_for_each_prefix(contract, prefix, |k, v| out.push((k.to_vec(), v.to_vec())));
        out
    }

    #[test]
    fn unknown_accounts_are_zero() {
        let s = WorldState::new();
        let a = Address::from_seed(b"a");
        assert_eq!(s.balance(&a), 0);
        assert_eq!(s.nonce(&a), 0);
    }

    #[test]
    fn credit_debit_and_nonce() {
        let mut s = WorldState::new();
        let a = Address::from_seed(b"a");
        s.credit(a, 100);
        assert_eq!(s.balance(&a), 100);
        s.debit(&a, 40).unwrap();
        assert_eq!(s.balance(&a), 60);
        let err = s.debit(&a, 100).unwrap_err();
        assert_eq!(
            err,
            InsufficientFunds {
                needed: 100,
                available: 60
            }
        );
        assert_eq!(s.balance(&a), 60, "failed debit does not mutate");
        s.bump_nonce(&a);
        s.bump_nonce(&a);
        assert_eq!(s.nonce(&a), 2);
    }

    #[test]
    fn storage_crud() {
        let mut s = WorldState::new();
        assert!(s.storage_get(&cid(), b"k").is_none());
        assert!(!s.storage_contains(&cid(), b"k"));
        s.storage_set(&cid(), b"k".to_vec(), b"v1".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v1");
        assert!(s.storage_contains(&cid(), b"k"));
        s.storage_set(&cid(), b"k".to_vec(), b"v2".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v2");
        assert!(s.storage_remove(&cid(), b"k"));
        assert!(!s.storage_remove(&cid(), b"k"));
        assert!(s.storage_get(&cid(), b"k").is_none());
    }

    #[test]
    fn storage_is_namespaced_per_contract() {
        let mut s = WorldState::new();
        let other = ContractId::new("other");
        s.storage_set(&cid(), b"k".to_vec(), b"dex".to_vec());
        s.storage_set(&other, b"k".to_vec(), b"other".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"dex");
        assert_eq!(s.storage_get(&other, b"k").unwrap(), b"other");
    }

    #[test]
    fn prefix_iteration_is_ordered_and_bounded() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"res/b".to_vec(), b"2".to_vec());
        s.storage_set(&cid(), b"res/a".to_vec(), b"1".to_vec());
        s.storage_set(&cid(), b"res/c".to_vec(), b"3".to_vec());
        s.storage_set(&cid(), b"pod/x".to_vec(), b"x".to_vec());
        s.storage_set(&ContractId::new("zz"), b"res/z".to_vec(), b"z".to_vec());
        assert_eq!(
            collect_prefix(&s, &cid(), b"res/"),
            vec![
                (b"res/a".to_vec(), b"1".to_vec()),
                (b"res/b".to_vec(), b"2".to_vec()),
                (b"res/c".to_vec(), b"3".to_vec()),
            ]
        );
        assert_eq!(
            s.storage_keys_with_prefix(&cid(), b"res/"),
            vec![b"res/a".to_vec(), b"res/b".to_vec(), b"res/c".to_vec()]
        );
    }

    #[test]
    fn size_metrics() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"a".to_vec(), vec![0; 10]);
        s.storage_set(&cid(), b"b".to_vec(), vec![0; 20]);
        assert_eq!(s.storage_slot_count(), 2);
        assert_eq!(s.storage_byte_size(), 30);
        s.storage_set(&cid(), b"a".to_vec(), vec![0; 4]);
        assert_eq!(s.storage_byte_size(), 24);
        s.storage_remove(&cid(), b"b");
        assert_eq!(s.storage_slot_count(), 1);
        assert_eq!(s.storage_byte_size(), 4);
    }

    #[test]
    fn commitment_changes_with_state() {
        let mut s = WorldState::new();
        let c0 = s.commitment();
        s.credit(Address::from_seed(b"a"), 1);
        let c1 = s.commitment();
        assert_ne!(c0, c1);
        s.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        let c2 = s.commitment();
        assert_ne!(c1, c2);
        // Identical state → identical commitment.
        let mut t = WorldState::new();
        t.credit(Address::from_seed(b"a"), 1);
        t.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        assert_eq!(t.commitment(), c2);
    }

    #[test]
    fn commitment_is_content_addressed_not_history_addressed() {
        // The incremental accumulator must converge to the same digest as a
        // state built directly with the final content, whatever the
        // mutation order and however many overwrites/removals happened on
        // the way there.
        let a = Address::from_seed(b"a");
        let b = Address::from_seed(b"b");
        let mut s = WorldState::new();
        s.credit(a, 5);
        s.credit(b, 7);
        s.storage_set(&cid(), b"k".to_vec(), b"old".to_vec());
        s.storage_set(&cid(), b"k".to_vec(), b"new".to_vec());
        s.storage_set(&cid(), b"gone".to_vec(), b"x".to_vec());
        assert!(s.storage_remove(&cid(), b"gone"));

        let mut t = WorldState::new();
        t.storage_set(&cid(), b"k".to_vec(), b"new".to_vec());
        t.credit(b, 7);
        t.credit(a, 2);
        t.credit(a, 3);
        assert_eq!(s.commitment(), t.commitment());

        // A clone diverges once either side mutates.
        let u = s.clone();
        assert_eq!(u.commitment(), s.commitment());
        s.bump_nonce(&a);
        assert_ne!(u.commitment(), s.commitment());
    }

    #[test]
    fn inline_key_keeps_short_keys_inline_and_delegates_ordering() {
        let short = InlineKey::from_slice(b"pod/https://p1.id/me");
        assert!(matches!(short, InlineKey::Inline { .. }));
        let long = InlineKey::from_slice(&[b'x'; 80]);
        assert!(matches!(long, InlineKey::Heap(_)));
        assert_eq!(short.as_slice(), b"pod/https://p1.id/me");
        assert_eq!(long.as_slice(), &[b'x'; 80][..]);
        let a = InlineKey::from_slice(b"a");
        let b = InlineKey::from_slice(&[b'b'; 70]);
        assert!(a < b, "ordering crosses the inline/heap boundary");
        assert_eq!(a, InlineKey::from_slice(b"a"));
    }

    /// Interleaved writes/overwrites/removes/scans on paged states at
    /// several cache sizes (including 0) must match the unbounded store
    /// slot-for-slot and commitment-for-commitment.
    #[test]
    fn paged_state_is_byte_identical_across_cache_sizes() {
        let tiny = PagingConfig::in_memory(None).with_page_capacity(4);
        let apply = |s: &mut WorldState| {
            for i in 0..200u32 {
                let key = format!("pod/https://p{}.id/me", i % 60).into_bytes();
                s.storage_set(&cid(), key, i.to_le_bytes().to_vec());
                if i % 3 == 0 {
                    let gone = format!("pod/https://p{}.id/me", (i / 3) % 60).into_bytes();
                    s.storage_remove(&cid(), &gone);
                }
                if i % 7 == 0 {
                    s.storage_set(&ContractId::new("other"), vec![i as u8], vec![i as u8; 9]);
                }
            }
        };
        let mut baseline = WorldState::with_paging(&tiny);
        apply(&mut baseline);
        for limit in [0usize, 1, 2, 7] {
            let cfg = PagingConfig {
                resident_limit: Some(limit),
                ..tiny.clone()
            };
            let mut paged = WorldState::with_paging(&cfg);
            apply(&mut paged);
            assert_eq!(paged.commitment(), baseline.commitment(), "limit {limit}");
            assert_eq!(paged.storage_slot_count(), baseline.storage_slot_count());
            assert_eq!(paged.storage_byte_size(), baseline.storage_byte_size());
            assert_eq!(
                collect_prefix(&paged, &cid(), b"pod/"),
                collect_prefix(&baseline, &cid(), b"pod/"),
                "limit {limit}"
            );
            paged.verify_pages().expect("page integrity");
            let stats = paged.paging_stats();
            assert!(stats.resident_pages <= limit.max(1));
            assert!(stats.evictions > 0, "bounded cache evicts");
            assert!(stats.fault_ins > 0, "reads fault pages back in");
        }
        let stats = baseline.paging_stats();
        assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
        assert_eq!(stats.resident_pages, stats.total_pages);
        baseline.verify_pages().expect("page integrity");
    }

    #[test]
    fn file_backed_paging_round_trips_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("duc-paged-state-{}", std::process::id()));
        let cfg = PagingConfig::in_memory(Some(1))
            .with_page_capacity(3)
            .with_spill_dir(&dir);
        let mut s = WorldState::with_paging(&cfg);
        for i in 0..40u8 {
            s.storage_set(&cid(), vec![b'k', i], vec![i; 16]);
        }
        for i in 0..40u8 {
            assert_eq!(s.storage_get(&cid(), &[b'k', i]).unwrap(), vec![i; 16]);
        }
        s.verify_pages().expect("page integrity");
        let stats = s.paging_stats();
        assert!(stats.spilled_live_bytes > 0, "cold pages hit the file");
        assert!(stats.resident_pages <= 1);
    }

    #[test]
    fn paged_clone_is_independent() {
        let cfg = PagingConfig::in_memory(Some(1)).with_page_capacity(2);
        let mut s = WorldState::with_paging(&cfg);
        for i in 0..20u8 {
            s.storage_set(&cid(), vec![i], vec![i]);
        }
        let t = s.clone();
        assert_eq!(t.commitment(), s.commitment());
        t.verify_pages().expect("clone integrity");
        s.storage_remove(&cid(), &[3]);
        assert_ne!(t.commitment(), s.commitment());
        assert_eq!(t.storage_get(&cid(), &[3]).unwrap(), vec![3]);
    }

    #[test]
    fn empty_pages_are_dropped_not_leaked() {
        let cfg = PagingConfig::in_memory(None).with_page_capacity(2);
        let mut s = WorldState::with_paging(&cfg);
        for i in 0..10u8 {
            s.storage_set(&cid(), vec![i], vec![i]);
        }
        let before = s.paging_stats().total_pages;
        assert!(before > 1, "splits happened");
        for i in 0..10u8 {
            assert!(s.storage_remove(&cid(), &[i]));
        }
        let stats = s.paging_stats();
        assert_eq!(stats.total_pages, 0, "empty pages are reclaimed");
        assert_eq!(s.storage_slot_count(), 0);
        s.verify_pages().expect("page integrity");
    }
}
