//! The world state: accounts and contract storage.

use std::collections::BTreeMap;

use duc_crypto::{hash_parts, Digest};

use crate::types::{Address, Amount, ContractId};

/// One account's ledger entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Spendable balance.
    pub balance: Amount,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// The replicated state machine's state: account balances/nonces plus a
/// key/value store per contract.
///
/// `BTreeMap`s keep iteration deterministic, and every mutator keeps the
/// commitment accumulator in sync so [`WorldState::commitment`] — which
/// block state roots depend on — stays O(1) in the state size.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, AccountState>,
    storage: BTreeMap<(ContractId, Vec<u8>), Vec<u8>>,
    /// XOR multiset of per-row digests (one row per account, one per
    /// storage slot). XOR is commutative and self-inverse, so replacing a
    /// row is "XOR out the old, XOR in the new" and the accumulator always
    /// equals the XOR over the *current* rows, independent of history —
    /// which is exactly what a state commitment must hash. Maintaining it
    /// incrementally keeps block sealing from walking the full state
    /// (population-scale chains produce thousands of blocks over
    /// hundreds of thousands of slots).
    acc: [u8; 32],
}

/// Folds one row digest into (or out of) the accumulator.
fn xor_row(acc: &mut [u8; 32], row: &Digest) {
    for (a, b) in acc.iter_mut().zip(row.as_bytes()) {
        *a ^= b;
    }
}

/// The commitment row for one account (domain-separated from slot rows).
fn account_row(addr: &Address, acct: &AccountState) -> Digest {
    hash_parts(&[
        b"duc/state/acct",
        addr.0.as_bytes(),
        &acct.balance.to_le_bytes(),
        &acct.nonce.to_le_bytes(),
    ])
}

/// The commitment row for one storage slot.
fn storage_row(contract: &ContractId, key: &[u8], value: &[u8]) -> Digest {
    hash_parts(&[b"duc/state/slot", contract.0.as_bytes(), key, value])
}

impl WorldState {
    /// Empty state.
    pub fn new() -> WorldState {
        WorldState::default()
    }

    /// The account entry (default zero for unknown addresses).
    pub fn account(&self, addr: &Address) -> AccountState {
        self.accounts.get(addr).cloned().unwrap_or_default()
    }

    /// Current balance.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.account(addr).balance
    }

    /// Current nonce.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.account(addr).nonce
    }

    /// Applies `mutate` to `addr`'s account entry (created on first touch),
    /// keeping the commitment accumulator in sync.
    fn with_account(&mut self, addr: &Address, mutate: impl FnOnce(&mut AccountState)) {
        if let Some(prev) = self.accounts.get(addr) {
            let old = account_row(addr, prev);
            xor_row(&mut self.acc, &old);
        }
        let entry = self.accounts.entry(*addr).or_default();
        mutate(entry);
        let new = account_row(addr, entry);
        xor_row(&mut self.acc, &new);
    }

    /// Credits an account (used by genesis funding and fee redistribution).
    pub fn credit(&mut self, addr: Address, amount: Amount) {
        self.with_account(&addr, |a| a.balance += amount);
    }

    /// Debits an account.
    ///
    /// # Errors
    /// Returns `Err(())` without mutating on insufficient balance.
    pub fn debit(&mut self, addr: &Address, amount: Amount) -> Result<(), InsufficientFunds> {
        let available = self.balance(addr);
        if available < amount {
            return Err(InsufficientFunds {
                needed: amount,
                available,
            });
        }
        self.with_account(addr, |a| a.balance -= amount);
        Ok(())
    }

    /// Increments an account's nonce.
    pub fn bump_nonce(&mut self, addr: &Address) {
        self.with_account(addr, |a| a.nonce += 1);
    }

    /// Reads a contract storage slot.
    pub fn storage_get(&self, contract: &ContractId, key: &[u8]) -> Option<&Vec<u8>> {
        self.storage.get(&(contract.clone(), key.to_vec()))
    }

    /// Writes a contract storage slot.
    pub fn storage_set(&mut self, contract: &ContractId, key: Vec<u8>, value: Vec<u8>) {
        if let Some(prev) = self.storage.get(&(contract.clone(), key.clone())) {
            let old = storage_row(contract, &key, prev);
            xor_row(&mut self.acc, &old);
        }
        let new = storage_row(contract, &key, &value);
        xor_row(&mut self.acc, &new);
        self.storage.insert((contract.clone(), key), value);
    }

    /// Deletes a contract storage slot; returns whether it existed.
    pub fn storage_remove(&mut self, contract: &ContractId, key: &[u8]) -> bool {
        match self.storage.remove(&(contract.clone(), key.to_vec())) {
            Some(prev) => {
                let old = storage_row(contract, key, &prev);
                xor_row(&mut self.acc, &old);
                true
            }
            None => false,
        }
    }

    /// Iterates a contract's slots whose keys start with `prefix`, in key
    /// order (contracts build indexes on ordered key prefixes).
    pub fn storage_prefix<'a>(
        &'a self,
        contract: &ContractId,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> {
        let contract = contract.clone();
        self.storage
            .range((contract.clone(), prefix.to_vec())..)
            .take_while(move |((c, k), _)| *c == contract && k.starts_with(prefix))
            .map(|((_, k), v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of storage slots across all contracts (state-growth metric,
    /// experiment E12).
    pub fn storage_slot_count(&self) -> usize {
        self.storage.len()
    }

    /// Total bytes held in storage values (state-growth metric).
    pub fn storage_byte_size(&self) -> usize {
        self.storage.values().map(Vec::len).sum()
    }

    /// A digest committing to the entire state (accounts + storage).
    ///
    /// Reads the incrementally-maintained accumulator, so sealing a block
    /// costs O(1) regardless of how many accounts and slots exist. The
    /// entry counts are folded in so states whose accumulators collide by
    /// row-set size manipulation still separate on cardinality.
    pub fn commitment(&self) -> Digest {
        hash_parts(&[
            b"duc/state",
            &self.acc,
            &(self.accounts.len() as u64).to_le_bytes(),
            &(self.storage.len() as u64).to_le_bytes(),
        ])
    }

    /// The raw XOR-multiset accumulator behind [`WorldState::commitment`].
    ///
    /// Checkpoints persist this so a restored store can resume incremental
    /// maintenance without replaying history.
    pub fn accumulator(&self) -> [u8; 32] {
        self.acc
    }
}

/// Debit failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientFunds {
    /// Amount requested.
    pub needed: Amount,
    /// Amount available.
    pub available: Amount,
}

impl std::fmt::Display for InsufficientFunds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient funds: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientFunds {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ContractId {
        ContractId::new("dex")
    }

    #[test]
    fn unknown_accounts_are_zero() {
        let s = WorldState::new();
        let a = Address::from_seed(b"a");
        assert_eq!(s.balance(&a), 0);
        assert_eq!(s.nonce(&a), 0);
    }

    #[test]
    fn credit_debit_and_nonce() {
        let mut s = WorldState::new();
        let a = Address::from_seed(b"a");
        s.credit(a, 100);
        assert_eq!(s.balance(&a), 100);
        s.debit(&a, 40).unwrap();
        assert_eq!(s.balance(&a), 60);
        let err = s.debit(&a, 100).unwrap_err();
        assert_eq!(
            err,
            InsufficientFunds {
                needed: 100,
                available: 60
            }
        );
        assert_eq!(s.balance(&a), 60, "failed debit does not mutate");
        s.bump_nonce(&a);
        s.bump_nonce(&a);
        assert_eq!(s.nonce(&a), 2);
    }

    #[test]
    fn storage_crud() {
        let mut s = WorldState::new();
        assert!(s.storage_get(&cid(), b"k").is_none());
        s.storage_set(&cid(), b"k".to_vec(), b"v1".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v1");
        s.storage_set(&cid(), b"k".to_vec(), b"v2".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v2");
        assert!(s.storage_remove(&cid(), b"k"));
        assert!(!s.storage_remove(&cid(), b"k"));
        assert!(s.storage_get(&cid(), b"k").is_none());
    }

    #[test]
    fn storage_is_namespaced_per_contract() {
        let mut s = WorldState::new();
        let other = ContractId::new("other");
        s.storage_set(&cid(), b"k".to_vec(), b"dex".to_vec());
        s.storage_set(&other, b"k".to_vec(), b"other".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"dex");
        assert_eq!(s.storage_get(&other, b"k").unwrap(), b"other");
    }

    #[test]
    fn prefix_iteration_is_ordered_and_bounded() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"res/b".to_vec(), b"2".to_vec());
        s.storage_set(&cid(), b"res/a".to_vec(), b"1".to_vec());
        s.storage_set(&cid(), b"res/c".to_vec(), b"3".to_vec());
        s.storage_set(&cid(), b"pod/x".to_vec(), b"x".to_vec());
        s.storage_set(&ContractId::new("zz"), b"res/z".to_vec(), b"z".to_vec());
        let found: Vec<(&[u8], &[u8])> = s.storage_prefix(&cid(), b"res/").collect();
        assert_eq!(
            found,
            vec![
                (&b"res/a"[..], &b"1"[..]),
                (&b"res/b"[..], &b"2"[..]),
                (&b"res/c"[..], &b"3"[..]),
            ]
        );
    }

    #[test]
    fn size_metrics() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"a".to_vec(), vec![0; 10]);
        s.storage_set(&cid(), b"b".to_vec(), vec![0; 20]);
        assert_eq!(s.storage_slot_count(), 2);
        assert_eq!(s.storage_byte_size(), 30);
    }

    #[test]
    fn commitment_changes_with_state() {
        let mut s = WorldState::new();
        let c0 = s.commitment();
        s.credit(Address::from_seed(b"a"), 1);
        let c1 = s.commitment();
        assert_ne!(c0, c1);
        s.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        let c2 = s.commitment();
        assert_ne!(c1, c2);
        // Identical state → identical commitment.
        let mut t = WorldState::new();
        t.credit(Address::from_seed(b"a"), 1);
        t.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        assert_eq!(t.commitment(), c2);
    }

    #[test]
    fn commitment_is_content_addressed_not_history_addressed() {
        // The incremental accumulator must converge to the same digest as a
        // state built directly with the final content, whatever the
        // mutation order and however many overwrites/removals happened on
        // the way there.
        let a = Address::from_seed(b"a");
        let b = Address::from_seed(b"b");
        let mut s = WorldState::new();
        s.credit(a, 5);
        s.credit(b, 7);
        s.storage_set(&cid(), b"k".to_vec(), b"old".to_vec());
        s.storage_set(&cid(), b"k".to_vec(), b"new".to_vec());
        s.storage_set(&cid(), b"gone".to_vec(), b"x".to_vec());
        assert!(s.storage_remove(&cid(), b"gone"));

        let mut t = WorldState::new();
        t.storage_set(&cid(), b"k".to_vec(), b"new".to_vec());
        t.credit(b, 7);
        t.credit(a, 2);
        t.credit(a, 3);
        assert_eq!(s.commitment(), t.commitment());

        // A clone diverges once either side mutates.
        let u = s.clone();
        assert_eq!(u.commitment(), s.commitment());
        s.bump_nonce(&a);
        assert_ne!(u.commitment(), s.commitment());
    }
}
