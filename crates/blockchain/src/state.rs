//! The world state: accounts and contract storage.

use std::collections::BTreeMap;

use duc_crypto::{hash_parts, Digest};

use crate::types::{Address, Amount, ContractId};

/// One account's ledger entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Spendable balance.
    pub balance: Amount,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// The replicated state machine's state: account balances/nonces plus a
/// key/value store per contract.
///
/// `BTreeMap`s keep iteration deterministic so the [`WorldState::commitment`]
/// digest is stable across runs — block state roots depend on it.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, AccountState>,
    storage: BTreeMap<(ContractId, Vec<u8>), Vec<u8>>,
}

impl WorldState {
    /// Empty state.
    pub fn new() -> WorldState {
        WorldState::default()
    }

    /// The account entry (default zero for unknown addresses).
    pub fn account(&self, addr: &Address) -> AccountState {
        self.accounts.get(addr).cloned().unwrap_or_default()
    }

    /// Current balance.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.account(addr).balance
    }

    /// Current nonce.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.account(addr).nonce
    }

    /// Credits an account (used by genesis funding and fee redistribution).
    pub fn credit(&mut self, addr: Address, amount: Amount) {
        self.accounts.entry(addr).or_default().balance += amount;
    }

    /// Debits an account.
    ///
    /// # Errors
    /// Returns `Err(())` without mutating on insufficient balance.
    pub fn debit(&mut self, addr: &Address, amount: Amount) -> Result<(), InsufficientFunds> {
        let entry = self.accounts.entry(*addr).or_default();
        if entry.balance < amount {
            return Err(InsufficientFunds {
                needed: amount,
                available: entry.balance,
            });
        }
        entry.balance -= amount;
        Ok(())
    }

    /// Increments an account's nonce.
    pub fn bump_nonce(&mut self, addr: &Address) {
        self.accounts.entry(*addr).or_default().nonce += 1;
    }

    /// Reads a contract storage slot.
    pub fn storage_get(&self, contract: &ContractId, key: &[u8]) -> Option<&Vec<u8>> {
        self.storage.get(&(contract.clone(), key.to_vec()))
    }

    /// Writes a contract storage slot.
    pub fn storage_set(&mut self, contract: &ContractId, key: Vec<u8>, value: Vec<u8>) {
        self.storage.insert((contract.clone(), key), value);
    }

    /// Deletes a contract storage slot; returns whether it existed.
    pub fn storage_remove(&mut self, contract: &ContractId, key: &[u8]) -> bool {
        self.storage
            .remove(&(contract.clone(), key.to_vec()))
            .is_some()
    }

    /// Iterates a contract's slots whose keys start with `prefix`, in key
    /// order (contracts build indexes on ordered key prefixes).
    pub fn storage_prefix<'a>(
        &'a self,
        contract: &ContractId,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> {
        let contract = contract.clone();
        self.storage
            .range((contract.clone(), prefix.to_vec())..)
            .take_while(move |((c, k), _)| *c == contract && k.starts_with(prefix))
            .map(|((_, k), v)| (k.as_slice(), v.as_slice()))
    }

    /// Number of storage slots across all contracts (state-growth metric,
    /// experiment E12).
    pub fn storage_slot_count(&self) -> usize {
        self.storage.len()
    }

    /// Total bytes held in storage values (state-growth metric).
    pub fn storage_byte_size(&self) -> usize {
        self.storage.values().map(Vec::len).sum()
    }

    /// A digest committing to the entire state (accounts + storage).
    pub fn commitment(&self) -> Digest {
        let mut parts_owned: Vec<Vec<u8>> = Vec::new();
        for (addr, acct) in &self.accounts {
            let mut row = Vec::new();
            row.extend_from_slice(addr.0.as_bytes());
            row.extend_from_slice(&acct.balance.to_le_bytes());
            row.extend_from_slice(&acct.nonce.to_le_bytes());
            parts_owned.push(row);
        }
        for ((contract, key), value) in &self.storage {
            let mut row = Vec::new();
            row.extend_from_slice(contract.0.as_bytes());
            row.push(0);
            row.extend_from_slice(key);
            row.push(0);
            row.extend_from_slice(value);
            parts_owned.push(row);
        }
        let parts: Vec<&[u8]> = std::iter::once(&b"duc/state"[..])
            .chain(parts_owned.iter().map(Vec::as_slice))
            .collect();
        hash_parts(&parts)
    }
}

/// Debit failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientFunds {
    /// Amount requested.
    pub needed: Amount,
    /// Amount available.
    pub available: Amount,
}

impl std::fmt::Display for InsufficientFunds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient funds: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientFunds {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ContractId {
        ContractId::new("dex")
    }

    #[test]
    fn unknown_accounts_are_zero() {
        let s = WorldState::new();
        let a = Address::from_seed(b"a");
        assert_eq!(s.balance(&a), 0);
        assert_eq!(s.nonce(&a), 0);
    }

    #[test]
    fn credit_debit_and_nonce() {
        let mut s = WorldState::new();
        let a = Address::from_seed(b"a");
        s.credit(a, 100);
        assert_eq!(s.balance(&a), 100);
        s.debit(&a, 40).unwrap();
        assert_eq!(s.balance(&a), 60);
        let err = s.debit(&a, 100).unwrap_err();
        assert_eq!(
            err,
            InsufficientFunds {
                needed: 100,
                available: 60
            }
        );
        assert_eq!(s.balance(&a), 60, "failed debit does not mutate");
        s.bump_nonce(&a);
        s.bump_nonce(&a);
        assert_eq!(s.nonce(&a), 2);
    }

    #[test]
    fn storage_crud() {
        let mut s = WorldState::new();
        assert!(s.storage_get(&cid(), b"k").is_none());
        s.storage_set(&cid(), b"k".to_vec(), b"v1".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v1");
        s.storage_set(&cid(), b"k".to_vec(), b"v2".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"v2");
        assert!(s.storage_remove(&cid(), b"k"));
        assert!(!s.storage_remove(&cid(), b"k"));
        assert!(s.storage_get(&cid(), b"k").is_none());
    }

    #[test]
    fn storage_is_namespaced_per_contract() {
        let mut s = WorldState::new();
        let other = ContractId::new("other");
        s.storage_set(&cid(), b"k".to_vec(), b"dex".to_vec());
        s.storage_set(&other, b"k".to_vec(), b"other".to_vec());
        assert_eq!(s.storage_get(&cid(), b"k").unwrap(), b"dex");
        assert_eq!(s.storage_get(&other, b"k").unwrap(), b"other");
    }

    #[test]
    fn prefix_iteration_is_ordered_and_bounded() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"res/b".to_vec(), b"2".to_vec());
        s.storage_set(&cid(), b"res/a".to_vec(), b"1".to_vec());
        s.storage_set(&cid(), b"res/c".to_vec(), b"3".to_vec());
        s.storage_set(&cid(), b"pod/x".to_vec(), b"x".to_vec());
        s.storage_set(&ContractId::new("zz"), b"res/z".to_vec(), b"z".to_vec());
        let found: Vec<(&[u8], &[u8])> = s.storage_prefix(&cid(), b"res/").collect();
        assert_eq!(
            found,
            vec![
                (&b"res/a"[..], &b"1"[..]),
                (&b"res/b"[..], &b"2"[..]),
                (&b"res/c"[..], &b"3"[..]),
            ]
        );
    }

    #[test]
    fn size_metrics() {
        let mut s = WorldState::new();
        s.storage_set(&cid(), b"a".to_vec(), vec![0; 10]);
        s.storage_set(&cid(), b"b".to_vec(), vec![0; 20]);
        assert_eq!(s.storage_slot_count(), 2);
        assert_eq!(s.storage_byte_size(), 30);
    }

    #[test]
    fn commitment_changes_with_state() {
        let mut s = WorldState::new();
        let c0 = s.commitment();
        s.credit(Address::from_seed(b"a"), 1);
        let c1 = s.commitment();
        assert_ne!(c0, c1);
        s.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        let c2 = s.commitment();
        assert_ne!(c1, c2);
        // Identical state → identical commitment.
        let mut t = WorldState::new();
        t.credit(Address::from_seed(b"a"), 1);
        t.storage_set(&cid(), b"k".to_vec(), b"v".to_vec());
        assert_eq!(t.commitment(), c2);
    }
}
