//! # duc-blockchain — the distributed-ledger substrate
//!
//! The paper stores resource locations and usage policies on a blockchain
//! and runs the DistExchange application as smart contracts (§III-B). This
//! crate is that substrate, built from scratch:
//!
//! * [`types`] — addresses, amounts, identifiers.
//! * [`tx`] — signed transactions and execution receipts.
//! * [`gas`] — deterministic gas metering (the affordability experiments
//!   E7/E9 read their numbers from here).
//! * [`state`] — the world state: accounts plus per-contract key/value
//!   storage, with a commitment digest.
//! * [`contract`] — the contract runtime: a [`contract::Contract`] trait
//!   dispatched by method name over [`duc_codec`]-encoded arguments, with a
//!   [`contract::CallCtx`] exposing storage, events, caller identity and
//!   block metadata.
//! * [`exec`] — the deterministic parallel executor: access-set conflict
//!   scheduling plus a seeded work-stealing pool (byte-identical outputs
//!   to serial execution).
//! * [`block`] — Merkle-committed blocks signed by their proposer.
//! * [`chain`] — a proof-of-authority chain: round-robin validator
//!   committee, mempool, block production clocked by the simulation,
//!   event log for oracle subscriptions, and crash-fault injection for the
//!   robustness experiments (E8).
//! * [`ledger`] — the pluggable [`Ledger`] abstraction the rest of the
//!   stack consumes: [`SingleChain`] (the chain above, byte-identical) and
//!   [`ShardedLedger`] (N chains, deterministic routing, merged event
//!   view; experiment E13).
//!
//! ## Consensus model
//!
//! Validators take turns proposing blocks at a fixed interval. A proposer
//! that is crashed (fault injection) misses its slot and the chain produces
//! no block until the next live proposer — mirroring the liveness behaviour
//! of real PoA networks under crash faults, which is what E8 measures.
//! Byzantine behaviour beyond crash faults is out of scope, as it is for
//! the paper.
//!
//! ## Example
//! ```
//! use duc_blockchain::prelude::*;
//! use duc_sim::SimTime;
//!
//! let mut chain = Blockchain::builder()
//!     .validators(4)
//!     .block_interval(duc_sim::SimDuration::from_secs(2))
//!     .build();
//! let alice = chain.create_funded_account(b"alice", 1_000_000);
//! let tx = chain.build_transfer(&alice, Address::from_seed(b"bob"), 500).expect("funds");
//! chain.submit(tx).expect("valid tx");
//! chain.advance_to(SimTime::from_secs(2));
//! assert_eq!(chain.height(), 1);
//! assert_eq!(chain.balance(&Address::from_seed(b"bob")), 500);
//! ```

pub mod block;
pub mod chain;
pub mod contract;
pub mod exec;
pub mod gas;
pub mod ledger;
pub mod state;
pub mod tx;
pub mod types;

pub use block::{Block, BlockHeader};
pub use chain::{Blockchain, BlockchainBuilder, SubmitError};
pub use contract::{CallCtx, Contract, ContractError, Event};
pub use exec::{AccessFn, AccessKey, AccessParams, AccessSet, AccessSummary, ExecMode};
pub use gas::{GasMeter, GasSchedule, OutOfGas};
pub use ledger::{Ledger, RouteKey, RouterFn, ShardedLedger, SingleChain};
pub use state::{AccountState, InlineKey, PagingStats, WorldState};
pub use tx::{Receipt, SignedTransaction, Transaction, TxStatus};
pub use types::{Address, Amount, ContractId, TxId};

// Storage-layer types the chain API surfaces (checkpointing, pruning and
// world-state paging).
pub use duc_storage::{Checkpoint, PageCompacted, PagingConfig, PrunedRange, StorageConfig};

/// Common imports.
pub mod prelude {
    pub use crate::block::{Block, BlockHeader};
    pub use crate::chain::{Blockchain, BlockchainBuilder, SubmitError};
    pub use crate::contract::{CallCtx, Contract, ContractError, Event};
    pub use crate::exec::{AccessFn, AccessKey, AccessParams, AccessSet, AccessSummary, ExecMode};
    pub use crate::gas::{GasMeter, GasSchedule};
    pub use crate::ledger::{Ledger, RouteKey, RouterFn, ShardedLedger, SingleChain};
    pub use crate::state::WorldState;
    pub use crate::tx::{Receipt, SignedTransaction, Transaction, TxStatus};
    pub use crate::types::{Address, Amount, ContractId, TxId};
    pub use duc_storage::{Checkpoint, PrunedRange, StorageConfig};
}
