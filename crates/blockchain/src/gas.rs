//! Gas metering.
//!
//! Every contract execution is priced in gas, exactly as on public
//! blockchains: a base cost per transaction, per-byte costs for payloads
//! and storage, and per-operation compute costs. Gas numbers drive the
//! affordability analysis (paper §V-4, experiments E7/E9/E12).

/// The price list. Numbers are loosely modelled on Ethereum's relative
/// magnitudes (storage ≫ compute ≫ calldata) so cost *shapes* transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GasSchedule {
    /// Flat cost charged for every transaction.
    pub tx_base: u64,
    /// Per byte of transaction payload.
    pub payload_byte: u64,
    /// Per byte written to contract storage.
    pub storage_write_byte: u64,
    /// Per byte read from contract storage.
    pub storage_read_byte: u64,
    /// Flat cost per storage key touched.
    pub storage_access: u64,
    /// Per byte of emitted event data.
    pub event_byte: u64,
    /// Flat cost per event.
    pub event_base: u64,
    /// Per abstract compute unit (contracts charge these explicitly for
    /// loops over collections).
    pub compute_unit: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            payload_byte: 16,
            storage_write_byte: 625, // ≈ 20k per 32-byte word
            storage_read_byte: 25,   // ≈ 800 per word
            storage_access: 100,
            event_byte: 8,
            event_base: 375,
            compute_unit: 5,
        }
    }
}

/// Raised when a transaction exhausts its gas limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas {
    /// The limit that was exceeded.
    pub limit: u64,
}

impl std::fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of gas (limit {})", self.limit)
    }
}

impl std::error::Error for OutOfGas {}

/// Tracks gas consumption against a limit during one execution.
#[derive(Debug, Clone)]
pub struct GasMeter {
    limit: u64,
    used: u64,
    schedule: GasSchedule,
}

impl GasMeter {
    /// A meter with the given limit and schedule.
    pub fn new(limit: u64, schedule: GasSchedule) -> GasMeter {
        GasMeter {
            limit,
            used: 0,
            schedule,
        }
    }

    /// A meter with an effectively unlimited budget (read-only view calls).
    pub fn unmetered() -> GasMeter {
        GasMeter::new(u64::MAX, GasSchedule::default())
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Gas remaining.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }

    /// Charges raw gas.
    ///
    /// # Errors
    /// Returns [`OutOfGas`] when the limit would be exceeded; the meter is
    /// then pinned at the limit (all gas consumed, like EVM semantics).
    pub fn charge(&mut self, gas: u64) -> Result<(), OutOfGas> {
        let new_used = self.used.saturating_add(gas);
        if new_used > self.limit {
            self.used = self.limit;
            return Err(OutOfGas { limit: self.limit });
        }
        self.used = new_used;
        Ok(())
    }

    /// Charges for `n` abstract compute units.
    pub fn charge_compute(&mut self, n: u64) -> Result<(), OutOfGas> {
        self.charge(self.schedule.compute_unit.saturating_mul(n))
    }

    /// Charges for reading `bytes` from storage.
    pub fn charge_storage_read(&mut self, bytes: usize) -> Result<(), OutOfGas> {
        self.charge(
            self.schedule
                .storage_access
                .saturating_add(self.schedule.storage_read_byte.saturating_mul(bytes as u64)),
        )
    }

    /// Charges for writing `bytes` to storage.
    pub fn charge_storage_write(&mut self, bytes: usize) -> Result<(), OutOfGas> {
        self.charge(
            self.schedule.storage_access.saturating_add(
                self.schedule
                    .storage_write_byte
                    .saturating_mul(bytes as u64),
            ),
        )
    }

    /// Charges for emitting an event with `bytes` of data.
    pub fn charge_event(&mut self, bytes: usize) -> Result<(), OutOfGas> {
        self.charge(
            self.schedule
                .event_base
                .saturating_add(self.schedule.event_byte.saturating_mul(bytes as u64)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates() {
        let mut m = GasMeter::new(1000, GasSchedule::default());
        m.charge(300).unwrap();
        m.charge(300).unwrap();
        assert_eq!(m.used(), 600);
        assert_eq!(m.remaining(), 400);
    }

    #[test]
    fn out_of_gas_pins_to_limit() {
        let mut m = GasMeter::new(100, GasSchedule::default());
        assert_eq!(m.charge(150), Err(OutOfGas { limit: 100 }));
        assert_eq!(m.used(), 100, "all gas consumed on failure");
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn exact_limit_is_allowed() {
        let mut m = GasMeter::new(100, GasSchedule::default());
        assert!(m.charge(100).is_ok());
        assert!(m.charge(1).is_err());
    }

    #[test]
    fn storage_writes_cost_more_than_reads() {
        let s = GasSchedule::default();
        let mut w = GasMeter::new(u64::MAX, s.clone());
        let mut r = GasMeter::new(u64::MAX, s);
        w.charge_storage_write(64).unwrap();
        r.charge_storage_read(64).unwrap();
        assert!(
            w.used() > 10 * r.used(),
            "writes dominate: {} vs {}",
            w.used(),
            r.used()
        );
    }

    #[test]
    fn event_costs_scale_with_size() {
        let mut small = GasMeter::new(u64::MAX, GasSchedule::default());
        let mut large = GasMeter::new(u64::MAX, GasSchedule::default());
        small.charge_event(10).unwrap();
        large.charge_event(1000).unwrap();
        assert!(large.used() > small.used());
    }

    #[test]
    fn unmetered_never_runs_out() {
        let mut m = GasMeter::unmetered();
        for _ in 0..1000 {
            m.charge(u64::MAX / 2000).unwrap();
        }
    }

    #[test]
    fn display_out_of_gas() {
        assert!(OutOfGas { limit: 9 }.to_string().contains('9'));
    }
}
