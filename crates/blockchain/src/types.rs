//! Core ledger identifiers and quantities.

use std::fmt;

use duc_codec::{Decode, DecodeError, Encode, Reader};
use duc_crypto::{hash_parts, Digest, PublicKey};

/// An account address: the hash of the account's public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub Digest);

impl Address {
    /// Derives the address of a public key.
    pub fn from_public_key(pk: &PublicKey) -> Address {
        Address(hash_parts(&[b"duc/address", &pk.to_bytes()]))
    }

    /// Derives a deterministic address from a seed (test/workload helper:
    /// the address of the key pair generated from the same seed).
    pub fn from_seed(seed: &[u8]) -> Address {
        Address::from_public_key(&duc_crypto::KeyPair::from_seed(seed).public())
    }

    /// Short printable form.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.0.short())
    }
}

impl Encode for Address {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Address {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Address(Digest::decode(r)?))
    }
}

/// A token amount (the chain's native unit, used for gas fees and market
/// payments).
pub type Amount = u128;

/// A transaction identifier: the hash of the signed transaction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub Digest);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0.short())
    }
}

impl Encode for TxId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for TxId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxId(Digest::decode(r)?))
    }
}

/// Identifies a deployed contract.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContractId(pub String);

impl ContractId {
    /// Creates a contract id.
    pub fn new(name: impl Into<String>) -> ContractId {
        ContractId(name.into())
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract:{}", self.0)
    }
}

impl Encode for ContractId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for ContractId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ContractId(String::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn address_is_deterministic_per_key() {
        let a1 = Address::from_seed(b"alice");
        let a2 = Address::from_seed(b"alice");
        let b = Address::from_seed(b"bob");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn address_matches_public_key_derivation() {
        let kp = duc_crypto::KeyPair::from_seed(b"x");
        assert_eq!(
            Address::from_seed(b"x"),
            Address::from_public_key(&kp.public())
        );
    }

    #[test]
    fn display_forms() {
        let a = Address::from_seed(b"a");
        assert!(a.to_string().starts_with("0x"));
        let tx = TxId(duc_crypto::sha256(b"t"));
        assert!(tx.to_string().starts_with("tx:"));
        assert_eq!(ContractId::new("dex").to_string(), "contract:dex");
    }

    #[test]
    fn codec_roundtrips() {
        let a = Address::from_seed(b"a");
        assert_eq!(decode_from_slice::<Address>(&encode_to_vec(&a)).unwrap(), a);
        let t = TxId(duc_crypto::sha256(b"t"));
        assert_eq!(decode_from_slice::<TxId>(&encode_to_vec(&t)).unwrap(), t);
        let c = ContractId::new("dex");
        assert_eq!(
            decode_from_slice::<ContractId>(&encode_to_vec(&c)).unwrap(),
            c
        );
    }
}
