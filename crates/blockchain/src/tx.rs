//! Transactions and receipts.

use duc_codec::{encode_to_vec, Decode, DecodeError, Encode, Reader};
use duc_crypto::{hash_parts, KeyPair, PublicKey, Signature};

use crate::contract::Event;
use crate::types::{Address, Amount, ContractId, TxId};

/// What a transaction does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxKind {
    /// Moves native tokens.
    Transfer {
        /// Recipient address.
        to: Address,
        /// Amount to move.
        amount: Amount,
    },
    /// Calls a contract method.
    Call {
        /// Target contract.
        contract: ContractId,
        /// Method name (dispatched by the contract's `call`).
        method: String,
        /// `duc-codec`-encoded arguments.
        args: Vec<u8>,
    },
}

impl Encode for TxKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TxKind::Transfer { to, amount } => {
                buf.push(0);
                to.encode(buf);
                amount.encode(buf);
            }
            TxKind::Call {
                contract,
                method,
                args,
            } => {
                buf.push(1);
                contract.encode(buf);
                method.encode(buf);
                args.encode(buf);
            }
        }
    }
}

impl Decode for TxKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.read_u8()? {
            0 => TxKind::Transfer {
                to: Address::decode(r)?,
                amount: Amount::decode(r)?,
            },
            1 => TxKind::Call {
                contract: ContractId::decode(r)?,
                method: String::decode(r)?,
                args: Vec::decode(r)?,
            },
            tag => {
                return Err(DecodeError::InvalidTag {
                    tag,
                    type_name: "TxKind",
                })
            }
        })
    }
}

/// An unsigned transaction body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender address (must match the signing key).
    pub from: Address,
    /// Sender's account nonce (replay protection).
    pub nonce: u64,
    /// The operation.
    pub kind: TxKind,
    /// Gas budget.
    pub gas_limit: u64,
}

impl Encode for Transaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        self.nonce.encode(buf);
        self.kind.encode(buf);
        self.gas_limit.encode(buf);
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Transaction {
            from: Address::decode(r)?,
            nonce: u64::decode(r)?,
            kind: TxKind::decode(r)?,
            gas_limit: u64::decode(r)?,
        })
    }
}

impl Transaction {
    /// The canonical bytes that are signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        encode_to_vec(self)
    }

    /// Signs the transaction with `key` (whose address must equal `from`).
    ///
    /// # Panics
    /// Panics when the key does not own the `from` address — a programming
    /// error at the call site, never data-dependent.
    pub fn sign(self, key: &KeyPair) -> SignedTransaction {
        assert_eq!(
            Address::from_public_key(&key.public()),
            self.from,
            "signing key does not own the sender address"
        );
        let signature = key.sign(&self.signing_bytes());
        SignedTransaction {
            tx: self,
            public_key: key.public(),
            signature,
        }
    }
}

/// A signed transaction ready for submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTransaction {
    /// The body.
    pub tx: Transaction,
    /// The sender's public key.
    pub public_key: PublicKey,
    /// Schnorr signature over [`Transaction::signing_bytes`].
    pub signature: Signature,
}

impl Encode for SignedTransaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tx.encode(buf);
        self.public_key.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for SignedTransaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SignedTransaction {
            tx: Transaction::decode(r)?,
            public_key: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl SignedTransaction {
    /// The transaction id (hash of the full signed encoding).
    pub fn id(&self) -> TxId {
        TxId(hash_parts(&[b"duc/tx", &encode_to_vec(self)]))
    }

    /// Verifies signature and sender-address consistency.
    pub fn verify(&self) -> bool {
        Address::from_public_key(&self.public_key) == self.tx.from
            && self
                .public_key
                .verify(&self.tx.signing_bytes(), &self.signature)
                .is_ok()
    }

    /// The encoded size in bytes (for payload gas and network modelling).
    pub fn encoded_size(&self) -> usize {
        encode_to_vec(self).len()
    }
}

/// Execution outcome recorded on-chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxStatus {
    /// Executed successfully.
    Ok,
    /// The contract rejected the call (state rolled back, gas charged).
    Reverted(String),
    /// The gas limit was exhausted (state rolled back, all gas charged).
    OutOfGas,
    /// Never executed: a later transaction from the same sender was
    /// included first and consumed the nonce, so this mempool entry was
    /// evicted. Recorded so inclusion polls resolve immediately instead of
    /// burning their full retry budget waiting for a receipt that would
    /// never appear.
    Superseded,
}

impl TxStatus {
    /// Whether execution succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, TxStatus::Ok)
    }
}

/// The receipt for one executed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Transaction id.
    pub tx_id: TxId,
    /// Block that included it.
    pub block_height: u64,
    /// Outcome.
    pub status: TxStatus,
    /// Gas consumed.
    pub gas_used: u64,
    /// Events emitted (empty on revert). `Rc`-shared with the chain's
    /// event log — one allocation per event, not one per consumer.
    pub events: Vec<std::rc::Rc<Event>>,
    /// Return value of the contract call (empty for transfers/reverts).
    pub return_data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::decode_from_slice;

    fn call_tx(nonce: u64) -> Transaction {
        Transaction {
            from: Address::from_seed(b"alice"),
            nonce,
            kind: TxKind::Call {
                contract: ContractId::new("dex"),
                method: "register_pod".into(),
                args: encode_to_vec(&("https://alice.pod/".to_string(),)),
            },
            gas_limit: 100_000,
        }
    }

    #[test]
    fn sign_and_verify() {
        let key = KeyPair::from_seed(b"alice");
        let signed = call_tx(0).sign(&key);
        assert!(signed.verify());
    }

    #[test]
    fn tampered_body_fails_verification() {
        let key = KeyPair::from_seed(b"alice");
        let mut signed = call_tx(0).sign(&key);
        signed.tx.nonce = 7;
        assert!(!signed.verify());
    }

    #[test]
    fn wrong_key_cannot_claim_address() {
        let mallory = KeyPair::from_seed(b"mallory");
        let tx = call_tx(0); // from = alice's address
        let signature = mallory.sign(&tx.signing_bytes());
        let forged = SignedTransaction {
            tx,
            public_key: mallory.public(),
            signature,
        };
        assert!(!forged.verify(), "address/key mismatch must fail");
    }

    #[test]
    #[should_panic(expected = "does not own")]
    fn signing_with_foreign_key_panics() {
        let mallory = KeyPair::from_seed(b"mallory");
        let _ = call_tx(0).sign(&mallory);
    }

    #[test]
    fn tx_ids_are_unique_per_content() {
        let key = KeyPair::from_seed(b"alice");
        let a = call_tx(0).sign(&key);
        let b = call_tx(1).sign(&key);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id(), "stable");
    }

    #[test]
    fn codec_roundtrip() {
        let key = KeyPair::from_seed(b"alice");
        let signed = call_tx(3).sign(&key);
        let bytes = encode_to_vec(&signed);
        let back: SignedTransaction = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, signed);
        assert!(back.verify());
        assert_eq!(back.encoded_size(), bytes.len());
    }

    #[test]
    fn transfer_kind_roundtrip() {
        let kind = TxKind::Transfer {
            to: Address::from_seed(b"bob"),
            amount: 12_345,
        };
        let back: TxKind = decode_from_slice(&encode_to_vec(&kind)).unwrap();
        assert_eq!(back, kind);
    }

    #[test]
    fn status_helpers() {
        assert!(TxStatus::Ok.is_ok());
        assert!(!TxStatus::Reverted("nope".into()).is_ok());
        assert!(!TxStatus::OutOfGas.is_ok());
        assert!(!TxStatus::Superseded.is_ok());
    }
}
