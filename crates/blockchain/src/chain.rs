//! The proof-of-authority blockchain.
//!
//! Block production is clocked by the simulation: slot `k` opens at
//! `genesis + k × interval` and belongs to validator `k mod n` (round
//! robin). [`Blockchain::advance_to`] produces every due block; a crashed
//! proposer simply misses its slot, which is exactly the liveness behaviour
//! the robustness experiment (E8) measures.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use duc_crypto::{Digest, KeyPair};
use duc_intern::{Interner, Sym};
use duc_sim::{SimDuration, SimTime};
use duc_storage::{BlockStore, Checkpoint, FileArchive, PrunedRange, StateStore, StorageConfig};

use crate::block::{Block, BlockValidationError};
use crate::contract::{CallCtx, CallEffects, Contract, ContractError, Event};
use crate::exec::{self, AccessFn, AccessParams, AccessSet, ExecMode};
use crate::gas::{GasMeter, GasSchedule};
use crate::state::{InsufficientFunds, PagingStats, WorldState};
use crate::tx::{Receipt, SignedTransaction, Transaction, TxKind, TxStatus};
use crate::types::{Address, Amount, ContractId, TxId};

/// Why a transaction was rejected at submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Signature or sender-address check failed.
    InvalidSignature,
    /// The nonce is below the account's current nonce (stale/replay).
    NonceTooLow {
        /// Expected minimum.
        expected: u64,
        /// Provided nonce.
        got: u64,
    },
    /// The sender cannot cover the maximum gas fee.
    CannotPayGas,
    /// The maximum fee (`gas_limit × gas_price`, plus the amount for
    /// transfers) overflows the amount type. Unchecked, the fee arithmetic
    /// would wrap and under-charge — rejected typed instead.
    FeeOverflow,
    /// The mempool is at capacity.
    MempoolFull,
    /// A transaction with the same sender and nonce is already pending.
    DuplicateNonce,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::InvalidSignature => f.write_str("invalid signature"),
            SubmitError::NonceTooLow { expected, got } => {
                write!(f, "nonce too low: expected >= {expected}, got {got}")
            }
            SubmitError::CannotPayGas => f.write_str("cannot pay gas"),
            SubmitError::FeeOverflow => f.write_str("maximum fee overflows the amount type"),
            SubmitError::MempoolFull => f.write_str("mempool full"),
            SubmitError::DuplicateNonce => f.write_str("duplicate (sender, nonce) pending"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One row of the gas ledger (who spent what on which method) — the raw
/// data behind the affordability table (E7).
///
/// Labels are interned [`Sym`]s into the chain's label table (resolve via
/// [`Blockchain::gas_label`]); a record is three words instead of two
/// heap-owned strings, and aggregation compares `u32`s instead of URLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasRecord {
    /// The called contract (`None` for plain transfers).
    pub contract: Option<Sym>,
    /// The method label (`"transfer"` for transfers).
    pub method: Sym,
    /// Gas consumed.
    pub gas_used: u64,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Block height.
    pub height: u64,
}

/// Configures and creates a [`Blockchain`].
#[derive(Debug)]
pub struct BlockchainBuilder {
    validator_count: usize,
    block_interval: SimDuration,
    gas_schedule: GasSchedule,
    max_block_gas: u64,
    gas_price: Amount,
    mempool_capacity: usize,
    storage: StorageConfig,
    exec_mode: ExecMode,
    exec_threads: usize,
}

impl Default for BlockchainBuilder {
    fn default() -> Self {
        BlockchainBuilder {
            validator_count: 4,
            block_interval: SimDuration::from_secs(2),
            gas_schedule: GasSchedule::default(),
            max_block_gas: 30_000_000,
            gas_price: 1,
            mempool_capacity: 10_000,
            storage: StorageConfig::disabled(),
            // Every construction path inherits `DUC_EXEC_MODE` /
            // `DUC_EXEC_THREADS` unless explicitly overridden, which is how
            // the CI matrix flips the whole stack between executors.
            exec_mode: ExecMode::from_env(),
            exec_threads: exec::threads_from_env(),
        }
    }
}

impl BlockchainBuilder {
    /// Number of PoA validators (keys derived deterministically).
    pub fn validators(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one validator required");
        self.validator_count = n;
        self
    }

    /// Target block interval.
    pub fn block_interval(mut self, interval: SimDuration) -> Self {
        self.block_interval = interval;
        self
    }

    /// Gas price list.
    pub fn gas_schedule(mut self, schedule: GasSchedule) -> Self {
        self.gas_schedule = schedule;
        self
    }

    /// Per-block gas ceiling.
    pub fn max_block_gas(mut self, gas: u64) -> Self {
        self.max_block_gas = gas;
        self
    }

    /// Native-token price per unit of gas.
    pub fn gas_price(mut self, price: Amount) -> Self {
        self.gas_price = price;
        self
    }

    /// Mempool capacity.
    pub fn mempool_capacity(mut self, cap: usize) -> Self {
        self.mempool_capacity = cap;
        self
    }

    /// Retention configuration (checkpoint interval, window, archive path).
    /// Defaults to [`StorageConfig::disabled`]: infinite retention.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Intra-block execution mode (defaults to `DUC_EXEC_MODE`, serial
    /// when unset).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Worker-thread count for [`ExecMode::Parallel`] (defaults to
    /// `DUC_EXEC_THREADS` / available parallelism).
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// Builds the chain (genesis at t = 0).
    ///
    /// # Panics
    /// If an archive path is configured and the archive file cannot be
    /// opened for appending.
    pub fn build(self) -> Blockchain {
        let validators: Vec<KeyPair> = (0..self.validator_count)
            .map(|i| KeyPair::from_seed(format!("duc/validator-{i}").as_bytes()))
            .collect();
        let archive = self.storage.archive_path.as_ref().map(|path| {
            FileArchive::open(path).unwrap_or_else(|e| panic!("open archive {path:?}: {e}"))
        });
        Blockchain {
            validators,
            down_validators: HashSet::new(),
            block_interval: self.block_interval,
            next_slot: 1,
            current_time: SimTime::ZERO,
            state: match &self.storage.paging {
                Some(paging) => WorldState::with_paging(paging),
                None => WorldState::new(),
            },
            blocks: BlockStore::new(archive),
            storage: self.storage,
            checkpoints: StateStore::new(),
            mempool: BTreeMap::new(),
            receipts: HashMap::new(),
            event_log: Vec::new(),
            contracts: HashMap::new(),
            gas_schedule: self.gas_schedule,
            gas_price: self.gas_price,
            max_block_gas: self.max_block_gas,
            mempool_capacity: self.mempool_capacity,
            gas_ledger: Vec::new(),
            labels: Interner::new(),
            slots_missed: 0,
            exec_mode: self.exec_mode,
            exec_threads: self.exec_threads,
            access_fn: None,
        }
    }
}

/// The chain node (in this simulation, one logical replica of the PoA
/// network — consensus among honest replicas is deterministic replay).
pub struct Blockchain {
    validators: Vec<KeyPair>,
    down_validators: HashSet<usize>,
    block_interval: SimDuration,
    /// The next production slot (slot k opens at genesis + k × interval).
    next_slot: u64,
    /// The latest instant the chain has observed (view calls evaluate
    /// time-dependent logic against this).
    current_time: SimTime,
    state: WorldState,
    /// Windowed block storage: retained heights are
    /// `prune_horizon + 1 ..= height` once pruning has run.
    blocks: BlockStore<Block>,
    storage: StorageConfig,
    checkpoints: StateStore,
    mempool: BTreeMap<(Address, u64), SignedTransaction>,
    receipts: HashMap<TxId, Receipt>,
    event_log: Vec<(u64, Rc<Event>)>,
    contracts: HashMap<ContractId, Box<dyn Contract>>,
    gas_schedule: GasSchedule,
    gas_price: Amount,
    max_block_gas: u64,
    mempool_capacity: usize,
    gas_ledger: Vec<GasRecord>,
    /// Gas-ledger label table: contract ids and method names interned once
    /// per distinct label instead of cloned per record.
    labels: Interner,
    slots_missed: u64,
    /// How blocks apply their transactions (serial or conflict-scheduled
    /// parallel batches — outputs are byte-identical either way).
    exec_mode: ExecMode,
    /// Worker threads for the parallel executor.
    exec_threads: usize,
    /// Access-set derivation for the parallel executor; absent → every
    /// call is [`AccessSet::Exclusive`] and blocks effectively serialize.
    access_fn: Option<AccessFn>,
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("pending", &self.mempool.len())
            .field("validators", &self.validators.len())
            .field("contracts", &self.contracts.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Blockchain {
    /// Starts a builder with defaults (4 validators, 2 s blocks).
    pub fn builder() -> BlockchainBuilder {
        BlockchainBuilder::default()
    }

    // ------------------------------------------------------------ accounts

    /// Creates a key pair from `seed` and funds its account.
    pub fn create_funded_account(&mut self, seed: &[u8], amount: Amount) -> KeyPair {
        let key = KeyPair::from_seed(seed);
        self.state
            .credit(Address::from_public_key(&key.public()), amount);
        key
    }

    /// Current balance of an address.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.state.balance(addr)
    }

    /// The next nonce `addr` should use (accounts for pending txs).
    pub fn next_nonce(&self, addr: &Address) -> u64 {
        let pending_max = self
            .mempool
            .range((*addr, 0)..=(*addr, u64::MAX))
            .map(|((_, n), _)| *n + 1)
            .max();
        pending_max.unwrap_or(0).max(self.state.nonce(addr))
    }

    // ----------------------------------------------------------- contracts

    /// Deploys a contract at genesis (before or between blocks).
    pub fn deploy(&mut self, id: ContractId, contract: Box<dyn Contract>) {
        self.contracts.insert(id, contract);
    }

    /// Installs the access-set derivation the parallel executor partitions
    /// on. Without one, every call conflicts with everything.
    pub fn set_access_fn(&mut self, f: AccessFn) {
        self.access_fn = Some(f);
    }

    /// Switches the intra-block execution mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The intra-block execution mode in force.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Sets the parallel executor's worker-thread count.
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// The parallel executor's worker-thread count.
    pub fn exec_threads(&self) -> usize {
        self.exec_threads
    }

    /// Whether a contract is deployed.
    pub fn has_contract(&self, id: &ContractId) -> bool {
        self.contracts.contains_key(id)
    }

    // -------------------------------------------------------- tx building

    /// Builds a signed transfer using the account's next nonce.
    ///
    /// # Errors
    /// Returns [`SubmitError::CannotPayGas`] when the balance cannot cover
    /// amount + maximum fee.
    pub fn build_transfer(
        &self,
        key: &KeyPair,
        to: Address,
        amount: Amount,
    ) -> Result<SignedTransaction, SubmitError> {
        let from = Address::from_public_key(&key.public());
        // Intrinsic cost covers the base fee plus per-byte payload charges
        // (a signed transfer encodes to ~120 bytes).
        let gas_limit = self.gas_schedule.tx_base + 8_000;
        let needed = (gas_limit as Amount)
            .checked_mul(self.gas_price)
            .and_then(|fee| amount.checked_add(fee))
            .ok_or(SubmitError::FeeOverflow)?;
        if self.state.balance(&from) < needed {
            return Err(SubmitError::CannotPayGas);
        }
        Ok(Transaction {
            from,
            nonce: self.next_nonce(&from),
            kind: TxKind::Transfer { to, amount },
            gas_limit,
        }
        .sign(key))
    }

    /// Builds a signed contract call using the account's next nonce.
    pub fn build_call(
        &self,
        key: &KeyPair,
        contract: ContractId,
        method: impl Into<String>,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        let from = Address::from_public_key(&key.public());
        Transaction {
            from,
            nonce: self.next_nonce(&from),
            kind: TxKind::Call {
                contract,
                method: method.into(),
                args,
            },
            gas_limit,
        }
        .sign(key)
    }

    // ----------------------------------------------------------- mempool

    /// Submits a signed transaction to the mempool.
    ///
    /// # Errors
    /// See [`SubmitError`] for the rejection conditions.
    pub fn submit(&mut self, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        if !tx.verify() {
            return Err(SubmitError::InvalidSignature);
        }
        let expected = self.state.nonce(&tx.tx.from);
        if tx.tx.nonce < expected {
            return Err(SubmitError::NonceTooLow {
                expected,
                got: tx.tx.nonce,
            });
        }
        let max_fee = (tx.tx.gas_limit as Amount)
            .checked_mul(self.gas_price)
            .ok_or(SubmitError::FeeOverflow)?;
        if self.state.balance(&tx.tx.from) < max_fee {
            return Err(SubmitError::CannotPayGas);
        }
        if self.mempool.len() >= self.mempool_capacity {
            return Err(SubmitError::MempoolFull);
        }
        let keypair_key = (tx.tx.from, tx.tx.nonce);
        if self.mempool.contains_key(&keypair_key) {
            return Err(SubmitError::DuplicateNonce);
        }
        let id = tx.id();
        self.mempool.insert(keypair_key, tx);
        Ok(id)
    }

    /// Number of pending transactions.
    pub fn pending_count(&self) -> usize {
        self.mempool.len()
    }

    // ------------------------------------------------------ block making

    /// Produces every block whose slot opens at or before `now`.
    /// Returns the number of blocks produced.
    ///
    /// Blocks are produced *on demand*: a slot with an empty mempool is
    /// skipped without sealing an empty block (the behaviour of on-demand
    /// sequencers; it also keeps long idle simulated periods cheap). Slot
    /// accounting still advances, so proposer rotation and crash-fault
    /// liveness behave like a fixed-cadence PoA network whenever there is
    /// work to include.
    pub fn advance_to(&mut self, now: SimTime) -> usize {
        self.prune_due();
        let mut produced = 0;
        loop {
            let slot_time = SimTime::ZERO + self.block_interval.saturating_mul(self.next_slot);
            if slot_time > now {
                break;
            }
            if self.mempool.is_empty() {
                // Fast-forward the slot counter to the last empty slot
                // before `now` (or before more work could exist).
                let slots_until_now = now.as_nanos() / self.block_interval.as_nanos().max(1);
                self.next_slot = self.next_slot.max(slots_until_now).saturating_add(1);
                break;
            }
            let proposer_idx = (self.next_slot as usize) % self.validators.len();
            self.next_slot += 1;
            if self.down_validators.contains(&proposer_idx) {
                self.slots_missed += 1;
                continue;
            }
            self.produce_block(slot_time, proposer_idx);
            produced += 1;
        }
        if now > self.current_time {
            self.current_time = now;
        }
        produced
    }

    /// The latest instant the chain has observed.
    pub fn current_time(&self) -> SimTime {
        self.current_time
    }

    fn produce_block(&mut self, timestamp: SimTime, proposer_idx: usize) {
        let height = self.blocks.height() + 1;
        let included = match self.exec_mode {
            ExecMode::Serial => self.fill_block_serial(height, timestamp, proposer_idx),
            ExecMode::Parallel => self.fill_block_parallel(height, timestamp, proposer_idx),
        };
        self.evict_superseded(height);
        let parent = self
            .blocks
            .last()
            .map(|b| b.hash())
            .unwrap_or_else(|| self.blocks.base_parent());
        let block = Block::seal(
            height,
            parent,
            self.state.commitment(),
            timestamp,
            included,
            &self.validators[proposer_idx],
        );
        self.blocks.push(block);
        self.maybe_checkpoint(height);
    }

    /// The serial block body: executable transactions in canonical
    /// (sorted mempool key) order, respecting per-account nonce sequencing
    /// and the block gas ceiling. This is the reference semantics the
    /// parallel executor must reproduce byte-for-byte.
    fn fill_block_serial(
        &mut self,
        height: u64,
        timestamp: SimTime,
        proposer_idx: usize,
    ) -> Vec<SignedTransaction> {
        let mut included = Vec::new();
        let mut block_gas: u64 = 0;
        // `BTreeMap` keys already iterate in canonical sorted order.
        let ready: Vec<(Address, u64)> = self.mempool.keys().cloned().collect();
        for key in ready {
            let expected = self.state.nonce(&key.0);
            if key.1 != expected {
                continue; // future nonce stays pending; stale handled later
            }
            let gas_limit = self
                .mempool
                .get(&key)
                .expect("key from mempool")
                .tx
                .gas_limit;
            if block_gas.saturating_add(gas_limit) > self.max_block_gas {
                continue;
            }
            // Execution consumes the mempool entry — no working clone.
            let tx = self.mempool.remove(&key).expect("key from mempool");
            // The ceiling reserves each transaction's full gas limit, as
            // real block builders must (gas_used is unknown pre-execution).
            block_gas += gas_limit;
            let receipt = self.execute(&tx, height, timestamp, proposer_idx);
            for ev in &receipt.events {
                // One Rc per event, shared between the receipt and the
                // event log: every downstream consumer (push-out fan-out,
                // pull-in polls, sharded merge) clones the pointer, not the
                // payload.
                self.event_log.push((height, Rc::clone(ev)));
            }
            self.receipts.insert(receipt.tx_id, receipt);
            included.push(tx);
        }
        included
    }

    /// The parallel block body: plans the same transaction set the serial
    /// executor would pick, partitions it into conflict-free levels on the
    /// derived access sets, executes each level purely (no state writes) on
    /// the work-stealing pool, then commits and emits in canonical order —
    /// receipts, events, gas records and replay fingerprints are
    /// byte-identical to [`Blockchain::fill_block_serial`].
    fn fill_block_parallel(
        &mut self,
        height: u64,
        timestamp: SimTime,
        proposer_idx: usize,
    ) -> Vec<SignedTransaction> {
        // ---- plan: replicate serial selection with projected nonces (the
        // serial loop observes each executed tx's nonce bump before
        // selecting the next; project those bumps without executing).
        let mut projected: HashMap<Address, u64> = HashMap::new();
        let mut plan_keys: Vec<(Address, u64)> = Vec::new();
        let mut block_gas: u64 = 0;
        let mut ceiling_hit = false;
        for (key, tx) in &self.mempool {
            let expected = *projected
                .entry(key.0)
                .or_insert_with(|| self.state.nonce(&key.0));
            if key.1 != expected {
                continue;
            }
            if block_gas.saturating_add(tx.tx.gas_limit) > self.max_block_gas {
                // Serial reserves ceiling gas only for transactions it
                // actually executes; a fee failure upstream could shift
                // which ones fit. Rare and cheap: fall back to serial.
                ceiling_hit = true;
                continue;
            }
            block_gas += tx.tx.gas_limit;
            projected.insert(key.0, key.1 + 1);
            plan_keys.push(*key);
        }
        if ceiling_hit || plan_keys.len() < 2 {
            return self.fill_block_serial(height, timestamp, proposer_idx);
        }

        let plan: Vec<SignedTransaction> = plan_keys
            .iter()
            .map(|key| self.mempool.remove(key).expect("planned key from mempool"))
            .collect();

        // ---- derive access sets and level the conflict graph
        let validator_addrs: HashSet<Address> = self
            .validators
            .iter()
            .map(|k| Address::from_public_key(&k.public()))
            .collect();
        let sets: Vec<AccessSet> = plan
            .iter()
            .map(|tx| {
                // A validator-sender could observe its own mid-block
                // proposer fee credits through its balance; serialize it.
                let base = if validator_addrs.contains(&tx.tx.from) {
                    AccessSet::Exclusive
                } else {
                    match (&tx.tx.kind, &self.access_fn) {
                        (
                            TxKind::Call {
                                contract,
                                method,
                                args,
                            },
                            Some(derive),
                        ) => derive(&AccessParams {
                            contract,
                            method,
                            args,
                            caller: tx.tx.from,
                            block_height: height,
                            block_time: timestamp,
                            state: &self.state,
                        }),
                        _ => AccessSet::Exclusive,
                    }
                };
                base.with_sender(tx.tx.from)
            })
            .collect();
        let levels = exec::schedule_levels(&sets);
        let max_level = levels.iter().copied().max().unwrap_or(0);

        // ---- execute level by level, committing state in canonical order
        let mut committed: Vec<Option<CommittedTx>> = (0..plan.len()).map(|_| None).collect();
        let mut deferred = vec![false; plan.len()];
        for level in 0..=max_level {
            let mut runnable: Vec<usize> = Vec::new();
            for i in 0..plan.len() {
                if levels[i] != level {
                    continue;
                }
                // A fee-failed predecessor left the sender's nonce
                // unbumped: this tx can no longer execute in this block
                // (serial would never have selected it).
                if self.state.nonce(&plan[i].tx.from) != plan[i].tx.nonce {
                    deferred[i] = true;
                } else {
                    runnable.push(i);
                }
            }
            if runnable.is_empty() {
                continue;
            }
            let seed = height
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(level));
            let outcomes = {
                let state = &self.state;
                let contracts = &self.contracts;
                let schedule = &self.gas_schedule;
                let gas_price = self.gas_price;
                let txs: Vec<&SignedTransaction> = runnable.iter().map(|&i| &plan[i]).collect();
                exec::run_batch(self.exec_threads, seed, txs.len(), |j| {
                    run_tx_pure(
                        state, contracts, schedule, gas_price, txs[j], height, timestamp,
                    )
                })
            };
            let proposer_addr = Address::from_public_key(&self.validators[proposer_idx].public());
            for (&i, outcome) in runnable.iter().zip(outcomes) {
                committed[i] = Some(self.commit_outcome(&plan[i], outcome, proposer_addr));
            }
        }

        // ---- emit in canonical order: intern labels, push gas records,
        // events and receipts exactly as the serial loop would have.
        let mut included = Vec::with_capacity(plan.len());
        for (i, tx) in plan.into_iter().enumerate() {
            if deferred[i] {
                // Never executed; back to the mempool without a receipt.
                // Its sender's nonce did not advance, so eviction leaves
                // it pending — exactly the serial outcome.
                self.mempool.insert((tx.tx.from, tx.tx.nonce), tx);
                continue;
            }
            let done = committed[i].take().expect("scheduled tx executed");
            if let Some(label) = done.label {
                let (contract_label, method_label) = match &label {
                    ExecLabel::Intrinsic => (None, self.labels.intern("intrinsic")),
                    ExecLabel::Transfer => (None, self.labels.intern("transfer")),
                    ExecLabel::Call { contract, method } => {
                        // Same interning order as serial: method first.
                        let m = self.labels.intern(method);
                        let c = self.labels.intern(contract.as_str());
                        (Some(c), m)
                    }
                };
                self.gas_ledger.push(GasRecord {
                    contract: contract_label,
                    method: method_label,
                    gas_used: done.gas_used,
                    ok: done.status.is_ok(),
                    height,
                });
            }
            let events: Vec<Rc<Event>> = done.events.into_iter().map(Rc::new).collect();
            for ev in &events {
                self.event_log.push((height, Rc::clone(ev)));
            }
            let receipt = Receipt {
                tx_id: tx.id(),
                block_height: height,
                status: done.status,
                gas_used: done.gas_used,
                events,
                return_data: done.return_data,
            };
            self.receipts.insert(receipt.tx_id, receipt);
            included.push(tx);
        }
        included
    }

    /// Applies one pure execution outcome to the canonical state — fee
    /// debit, nonce bump, buffered effects, refund, proposer credit, the
    /// exact mutation sequence of [`Blockchain::execute`] — and returns
    /// what the emission pass needs.
    fn commit_outcome(
        &mut self,
        signed: &SignedTransaction,
        outcome: PureExec,
        proposer_addr: Address,
    ) -> CommittedTx {
        let PureExec::Ran {
            status,
            effects,
            transfer,
            return_data,
            gas_used,
            label,
        } = outcome
        else {
            // Fee failure: serial returns early without touching state or
            // the gas ledger.
            return CommittedTx {
                status: TxStatus::Reverted("cannot pay gas".into()),
                gas_used: 0,
                label: None,
                events: Vec::new(),
                return_data: Vec::new(),
            };
        };
        let from = signed.tx.from;
        let gas_limit = signed.tx.gas_limit;
        let max_fee = (gas_limit as Amount)
            .checked_mul(self.gas_price)
            .expect("an overflowing fee is a fee failure");
        self.state
            .debit(&from, max_fee)
            .expect("pure phase checked fee affordability against this state");
        self.state.bump_nonce(&from);
        let mut events = Vec::new();
        if let Some(effects) = effects {
            events = effects.apply(&mut self.state);
        }
        if let Some((to, amount)) = transfer {
            self.state
                .debit(&from, amount)
                .expect("pure phase checked transfer affordability");
            self.state.credit(to, amount);
        }
        let refund = (gas_limit - gas_used) as Amount * self.gas_price;
        self.state.credit(from, refund);
        self.state
            .credit(proposer_addr, gas_used as Amount * self.gas_price);
        CommittedTx {
            status,
            gas_used,
            label: Some(label),
            events,
            return_data,
        }
    }

    /// Evicts mempool transactions whose nonce a sealed block made stale,
    /// recording a [`TxStatus::Superseded`] receipt for each so inclusion
    /// polls resolve immediately instead of exhausting their retry budget
    /// on a transaction that can never execute.
    fn evict_superseded(&mut self, height: u64) {
        let stale: Vec<(Address, u64)> = self
            .mempool
            .keys()
            .filter(|(addr, nonce)| *nonce < self.state.nonce(addr))
            .cloned()
            .collect();
        for key in stale {
            let tx = self.mempool.remove(&key).expect("stale key from mempool");
            let receipt = Receipt {
                tx_id: tx.id(),
                block_height: height,
                status: TxStatus::Superseded,
                gas_used: 0,
                events: Vec::new(),
                return_data: Vec::new(),
            };
            self.receipts.insert(receipt.tx_id, receipt);
        }
    }

    /// Seals a checkpoint when the configured interval has elapsed since
    /// the last one. Pruning itself is deferred to the *next*
    /// [`Blockchain::advance_to`] call (see [`Blockchain::prune_due`]).
    fn maybe_checkpoint(&mut self, height: u64) {
        if !self.storage.is_enabled() {
            return;
        }
        let last = self.checkpoints.last().map_or(0, |cp| cp.height);
        if height - last < self.storage.checkpoint_interval {
            return;
        }
        self.checkpoints.seal(Checkpoint {
            height,
            state_commitment: self.state.commitment(),
            accumulator: self.state.accumulator(),
            event_cursor_floor: self.storage.horizon_after_checkpoint(height, height),
        });
    }

    /// Applies the pruning implied by the last sealed checkpoint: evicts
    /// blocks, events and receipts at or below
    /// `min(checkpoint_height - 1, tip - window)`, so the checkpoint's own
    /// block and the most recent `window` blocks always stay resident.
    ///
    /// Runs at the *start* of `advance_to` — one call behind checkpoint
    /// sealing — so every event sealed in a burst of blocks is readable by
    /// consumers (the sharded merge, oracle polls between driver steps)
    /// before it is evicted.
    fn prune_due(&mut self) {
        if !self.storage.is_enabled() {
            return;
        }
        let Some(cp) = self.checkpoints.last() else {
            return;
        };
        let horizon = self
            .storage
            .horizon_after_checkpoint(cp.height, self.blocks.height());
        if horizon <= self.blocks.prune_horizon() {
            return;
        }
        let evicted = self
            .blocks
            .prune_below(horizon, Block::hash)
            .unwrap_or_else(|e| panic!("archive pruned blocks: {e}"));
        if evicted == 0 {
            return;
        }
        let horizon = self.blocks.prune_horizon();
        let cut = self.event_log.partition_point(|(h, _)| *h <= horizon);
        self.event_log.drain(..cut);
        self.receipts.retain(|_, r| r.block_height > horizon);
    }

    fn execute(
        &mut self,
        signed: &SignedTransaction,
        height: u64,
        timestamp: SimTime,
        proposer_idx: usize,
    ) -> Receipt {
        let tx_id = signed.id();
        let from = signed.tx.from;
        let gas_limit = signed.tx.gas_limit;
        // An overflowing max fee is unpayable by definition; checked so a
        // wrap cannot under-charge (submission rejects these, but the
        // execution layer must not trust the mempool).
        let Some(max_fee) = (gas_limit as Amount).checked_mul(self.gas_price) else {
            return fee_failure_receipt(tx_id, height);
        };
        // Reserve the maximum fee upfront (refund the unused part later).
        if self.state.debit(&from, max_fee).is_err() {
            return fee_failure_receipt(tx_id, height);
        }
        self.state.bump_nonce(&from);

        let mut meter = GasMeter::new(gas_limit, self.gas_schedule.clone());
        let intrinsic = self.gas_schedule.tx_base.saturating_add(
            self.gas_schedule
                .payload_byte
                .saturating_mul(signed.encoded_size() as u64),
        );
        let intrinsic_result = meter.charge(intrinsic);

        let (status, events, return_data, method_label, contract_label) =
            if intrinsic_result.is_err() {
                (
                    TxStatus::OutOfGas,
                    Vec::new(),
                    Vec::new(),
                    self.labels.intern("intrinsic"),
                    None,
                )
            } else {
                match &signed.tx.kind {
                    TxKind::Transfer { to, amount } => {
                        let status = match self.state.debit(&from, *amount) {
                            Ok(()) => {
                                self.state.credit(*to, *amount);
                                TxStatus::Ok
                            }
                            Err(e) => TxStatus::Reverted(e.to_string()),
                        };
                        (
                            status,
                            Vec::new(),
                            Vec::new(),
                            self.labels.intern("transfer"),
                            None,
                        )
                    }
                    TxKind::Call {
                        contract,
                        method,
                        args,
                    } => {
                        let method_sym = self.labels.intern(method);
                        let contract_sym = self.labels.intern(contract.as_str());
                        match self.contracts.get(contract) {
                            None => (
                                TxStatus::Reverted(format!("no contract {contract}")),
                                Vec::new(),
                                Vec::new(),
                                method_sym,
                                Some(contract_sym),
                            ),
                            Some(code) => {
                                // Execute against the canonical state through
                                // a write overlay; apply the buffered effects
                                // only on success. A revert drops them — no
                                // full-state scratch copy per call.
                                let mut ctx = CallCtx::new(
                                    from,
                                    height,
                                    timestamp,
                                    contract.clone(),
                                    &self.state,
                                    &mut meter,
                                );
                                match code.call(&mut ctx, method, args) {
                                    Ok(ret) => {
                                        let events = ctx.into_effects().apply(&mut self.state);
                                        (TxStatus::Ok, events, ret, method_sym, Some(contract_sym))
                                    }
                                    Err(ContractError::OutOfGas) => (
                                        TxStatus::OutOfGas,
                                        Vec::new(),
                                        Vec::new(),
                                        method_sym,
                                        Some(contract_sym),
                                    ),
                                    Err(e) => (
                                        TxStatus::Reverted(e.to_string()),
                                        Vec::new(),
                                        Vec::new(),
                                        method_sym,
                                        Some(contract_sym),
                                    ),
                                }
                            }
                        }
                    }
                }
            };

        // Clamped to the limit: a gas_limit below tx_base would otherwise
        // underflow the refund below (the meter never exceeds its limit,
        // but the tx_base floor can).
        let gas_used = meter.used().max(self.gas_schedule.tx_base).min(gas_limit);
        // Refund unused fee; pay the consumed fee to the proposer.
        let refund = (gas_limit - gas_used) as Amount * self.gas_price;
        self.state.credit(from, refund);
        let proposer_addr = Address::from_public_key(&self.validators[proposer_idx].public());
        self.state
            .credit(proposer_addr, gas_used as Amount * self.gas_price);

        self.gas_ledger.push(GasRecord {
            contract: contract_label,
            method: method_label,
            gas_used,
            ok: status.is_ok(),
            height,
        });

        Receipt {
            tx_id,
            block_height: height,
            status,
            gas_used,
            events: events.into_iter().map(Rc::new).collect(),
            return_data,
        }
    }

    // -------------------------------------------------------------- reads

    /// Chain height (number of blocks ever produced; pruning does not
    /// rewind it).
    pub fn height(&self) -> u64 {
        self.blocks.height()
    }

    /// A block by height (1-based). `None` for height 0, heights above the
    /// tip, and pruned heights — use [`Blockchain::prune_horizon`] to
    /// distinguish the last case.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height)
    }

    /// The prune horizon: highest pruned height (`0` = nothing pruned).
    /// Every block and event at or below it has been evicted.
    pub fn prune_horizon(&self) -> u64 {
        self.blocks.prune_horizon()
    }

    /// Number of blocks currently resident in memory.
    pub fn retained_blocks(&self) -> usize {
        self.blocks.retained()
    }

    /// Blocks streamed to the archive so far.
    pub fn archived_blocks(&self) -> u64 {
        self.blocks.archived()
    }

    /// The most recently sealed checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// Every sealed checkpoint, oldest first.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        self.checkpoints.all()
    }

    /// The retention configuration this chain runs with.
    pub fn storage_config(&self) -> &StorageConfig {
        &self.storage
    }

    /// Verifies every checkpoint whose block is still resident against the
    /// block's sealed state root, and that the latest checkpoint's block is
    /// resident at all (the prune horizon never evicts it). This is the
    /// chaos invariant that a pruned-then-forged history cannot smuggle a
    /// different state past a checkpoint.
    ///
    /// # Errors
    /// A description of the first mismatching checkpoint.
    pub fn verify_checkpoints(&self) -> Result<(), String> {
        for cp in self.checkpoints.all() {
            match self.blocks.get(cp.height) {
                Some(block) => {
                    if block.header.state_root != cp.state_commitment {
                        return Err(format!(
                            "checkpoint at height {} commits {:?} but the sealed block \
                             carries state root {:?}",
                            cp.height, cp.state_commitment, block.header.state_root
                        ));
                    }
                }
                None => {
                    if Some(cp.height) == self.checkpoints.last().map(|c| c.height) {
                        return Err(format!(
                            "latest checkpoint block at height {} was pruned",
                            cp.height
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Mutable block access for tamper-detection tests.
    #[cfg(test)]
    fn block_mut(&mut self, height: u64) -> Option<&mut Block> {
        self.blocks.get_mut(height)
    }

    /// The receipt for a transaction, once included.
    pub fn receipt(&self, id: &TxId) -> Option<&Receipt> {
        self.receipts.get(id)
    }

    /// Events from blocks strictly above `height`, with their heights.
    ///
    /// The event log is appended block-by-block, so it is height-sorted;
    /// a binary search finds the cursor position and the scan starts there
    /// instead of filtering the whole log — oracle polls (pull-in,
    /// push-out) hit this on every round, and an idle poll is O(log n)
    /// instead of O(n).
    pub fn events_since(&self, height: u64) -> impl Iterator<Item = &(u64, Rc<Event>)> {
        self.events_slice_since(height).iter()
    }

    /// The height-sorted tail of the event log strictly above `height`
    /// (the zero-copy form behind [`Blockchain::events_since`] and the
    /// `Ledger` impl). Events are `Rc`-shared: consumers that keep one
    /// clone the pointer, not the payload.
    pub fn events_slice_since(&self, height: u64) -> &[(u64, Rc<Event>)] {
        let start = self.event_log.partition_point(|(h, _)| *h <= height);
        &self.event_log[start..]
    }

    /// Like [`Blockchain::events_slice_since`], but a cursor below the
    /// prune horizon is a typed [`PrunedRange`] error instead of a
    /// silently-incomplete slice: events in `(height, horizon]` are gone,
    /// so the caller must resync from the last checkpoint's
    /// `event_cursor_floor` rather than miss them. A cursor exactly at the
    /// horizon is fine — everything it has yet to read is still resident.
    ///
    /// # Errors
    /// [`PrunedRange`] when `height < prune_horizon`.
    pub fn try_events_slice_since(&self, height: u64) -> Result<&[(u64, Rc<Event>)], PrunedRange> {
        let horizon = self.blocks.prune_horizon();
        if height < horizon {
            return Err(PrunedRange {
                requested: height,
                horizon,
            });
        }
        Ok(self.events_slice_since(height))
    }

    /// Executes a read-only contract call against current state
    /// (free, not part of consensus).
    ///
    /// # Errors
    /// Propagates the contract's error.
    pub fn call_view(
        &self,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let code = self
            .contracts
            .get(contract)
            .ok_or_else(|| ContractError::Reverted(format!("no contract {contract}")))?;
        let mut meter = GasMeter::unmetered();
        let now = self.current_time.max(
            self.blocks
                .last()
                .map(|b| b.header.timestamp)
                .unwrap_or(SimTime::ZERO),
        );
        // Read-only: the context's write overlay is simply dropped, so the
        // canonical state is never copied or touched.
        let mut ctx = CallCtx::new(
            Address::from_seed(b"duc/view"),
            self.height(),
            now,
            contract.clone(),
            &self.state,
            &mut meter,
        );
        code.call(&mut ctx, method, args)
    }

    /// Validates the resident chain structure (signatures, roots, links).
    /// After pruning, validation starts from the store's `base_parent` —
    /// the hash of the last pruned block — so the link across the pruned
    /// boundary is still checked.
    ///
    /// # Errors
    /// The first [`BlockValidationError`] found.
    pub fn validate_chain(&self) -> Result<(), BlockValidationError> {
        let mut parent = self.blocks.base_parent();
        for (_, block) in self.blocks.iter() {
            block.validate()?;
            if block.header.parent != parent {
                return Err(BlockValidationError::BrokenParentLink(block.header.height));
            }
            parent = block.hash();
        }
        Ok(())
    }

    // ------------------------------------------------------- fault control

    /// Marks validator `idx` crashed (misses its slots) or recovered.
    pub fn set_validator_down(&mut self, idx: usize, down: bool) {
        if down {
            self.down_validators.insert(idx);
        } else {
            self.down_validators.remove(&idx);
        }
    }

    /// Number of validators.
    pub fn validator_count(&self) -> usize {
        self.validators.len()
    }

    /// The fee-collection addresses of every validator, in index order —
    /// the single source of truth for gas-conservation audits (gas paid
    /// out always lands on one of these).
    pub fn validator_addresses(&self) -> Vec<Address> {
        self.validators
            .iter()
            .map(|k| Address::from_public_key(&k.public()))
            .collect()
    }

    /// Slots skipped because their proposer was down.
    pub fn slots_missed(&self) -> u64 {
        self.slots_missed
    }

    // ----------------------------------------------------------- metrics

    /// The gas ledger (per-call records) for the affordability reports.
    pub fn gas_ledger(&self) -> &[GasRecord] {
        &self.gas_ledger
    }

    /// Resolves a gas-ledger label symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this chain's gas ledger.
    pub fn gas_label(&self, sym: Sym) -> &str {
        self.labels.resolve(sym)
    }

    /// Aggregates the gas ledger by `(contract, method)`:
    /// `(calls, total gas, mean gas)`.
    ///
    /// Aggregation runs entirely on interned label ids (`u32` compares, no
    /// allocation per record); strings materialize once per distinct label
    /// at the report boundary.
    pub fn gas_by_method(&self) -> BTreeMap<(String, String), (u64, u64, u64)> {
        let mut agg: HashMap<(Option<Sym>, Sym), (u64, u64)> = HashMap::new();
        for rec in &self.gas_ledger {
            let entry = agg.entry((rec.contract, rec.method)).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += rec.gas_used;
        }
        agg.into_iter()
            .map(|((contract, method), (calls, total))| {
                let key = (
                    contract
                        .map(|c| self.labels.resolve(c).to_string())
                        .unwrap_or_else(|| "native".to_string()),
                    self.labels.resolve(method).to_string(),
                );
                (key, (calls, total, total.checked_div(calls).unwrap_or(0)))
            })
            .collect()
    }

    /// Storage growth metrics: `(slots, bytes)` (experiment E12).
    pub fn state_size(&self) -> (usize, usize) {
        (
            self.state.storage_slot_count(),
            self.state.storage_byte_size(),
        )
    }

    /// Residency counters of the paged world state (observability only;
    /// exported as `/metrics` gauges and E19 columns).
    pub fn paging_stats(&self) -> PagingStats {
        self.state.paging_stats()
    }

    /// Verifies paged-state integrity: every evicted page must read back
    /// under its digest-verified handle and the decoded whole must
    /// reproduce the commitment accumulator (chaos invariant).
    ///
    /// # Errors
    /// A description of the first violation found.
    pub fn verify_pages(&self) -> Result<(), String> {
        self.state.verify_pages()
    }

    /// The current world-state commitment (what the next sealed block's
    /// `state_root` would carry).
    pub fn state_commitment(&self) -> Digest {
        self.state.commitment()
    }

    /// The gas price.
    pub fn gas_price(&self) -> Amount {
        self.gas_price
    }

    /// The block interval.
    pub fn block_interval(&self) -> SimDuration {
        self.block_interval
    }
}

/// The serial executor's early-return receipt for a sender that cannot
/// cover the maximum fee (also the overflow case: an overflowing fee is
/// unpayable by definition).
fn fee_failure_receipt(tx_id: TxId, height: u64) -> Receipt {
    Receipt {
        tx_id,
        block_height: height,
        status: TxStatus::Reverted("cannot pay gas".into()),
        gas_used: 0,
        events: Vec::new(),
        return_data: Vec::new(),
    }
}

/// What one transaction's gas-ledger row is labelled with. Labels are
/// interned during the canonical emission pass, preserving serial's
/// interner insertion order.
enum ExecLabel {
    /// Intrinsic gas exhausted before dispatch.
    Intrinsic,
    /// A native transfer.
    Transfer,
    /// A contract call (including "no such contract").
    Call {
        /// Target contract.
        contract: ContractId,
        /// Method name.
        method: String,
    },
}

/// One transaction's pure execution outcome: everything
/// [`Blockchain::execute`] decides, with the state mutations still
/// buffered. One short-lived value per executed transaction, consumed
/// immediately by the commit pass — boxing the `Ran` payload would add
/// an allocation per transaction for no retained-memory win.
#[allow(clippy::large_enum_variant)]
enum PureExec {
    /// The sender cannot cover the maximum fee (or it overflows): no nonce
    /// bump, no gas record, a "cannot pay gas" receipt.
    FeeFail,
    /// Executed; commit applies fee, nonce, effects and refunds.
    Ran {
        status: TxStatus,
        effects: Option<CallEffects>,
        transfer: Option<(Address, Amount)>,
        return_data: Vec<u8>,
        gas_used: u64,
        label: ExecLabel,
    },
}

/// A committed transaction, ready for the canonical emission pass.
struct CommittedTx {
    status: TxStatus,
    gas_used: u64,
    /// `None` for fee failures: serial pushes no gas record for them.
    label: Option<ExecLabel>,
    events: Vec<Event>,
    return_data: Vec<u8>,
}

/// The final gas charge: the meter never exceeds its limit, but the
/// `tx_base` floor can when `gas_limit < tx_base` — clamp so the refund
/// cannot underflow.
fn clamped_gas(meter: &GasMeter, schedule: &GasSchedule, gas_limit: u64) -> u64 {
    meter.used().max(schedule.tx_base).min(gas_limit)
}

/// Executes one transaction against an immutable state snapshot, buffering
/// every would-be mutation. Mirrors [`Blockchain::execute`]
/// decision-for-decision; safe to run concurrently for transactions whose
/// access sets do not conflict, because nothing such a transaction could
/// observe is mutated before its level commits.
fn run_tx_pure(
    state: &WorldState,
    contracts: &HashMap<ContractId, Box<dyn Contract>>,
    schedule: &GasSchedule,
    gas_price: Amount,
    signed: &SignedTransaction,
    height: u64,
    timestamp: SimTime,
) -> PureExec {
    let from = signed.tx.from;
    let gas_limit = signed.tx.gas_limit;
    let Some(max_fee) = (gas_limit as Amount).checked_mul(gas_price) else {
        return PureExec::FeeFail;
    };
    if state.balance(&from) < max_fee {
        return PureExec::FeeFail;
    }
    let mut meter = GasMeter::new(gas_limit, schedule.clone());
    let intrinsic = schedule.tx_base.saturating_add(
        schedule
            .payload_byte
            .saturating_mul(signed.encoded_size() as u64),
    );
    if meter.charge(intrinsic).is_err() {
        return PureExec::Ran {
            status: TxStatus::OutOfGas,
            effects: None,
            transfer: None,
            return_data: Vec::new(),
            gas_used: clamped_gas(&meter, schedule, gas_limit),
            label: ExecLabel::Intrinsic,
        };
    }
    let (status, effects, transfer, return_data, label) = match &signed.tx.kind {
        TxKind::Transfer { to, amount } => {
            // Serial debits the fee reservation before the transfer; the
            // available balance (and the revert message) reflect it.
            let available = state.balance(&from) - max_fee;
            if available < *amount {
                let err = InsufficientFunds {
                    needed: *amount,
                    available,
                };
                (
                    TxStatus::Reverted(err.to_string()),
                    None,
                    None,
                    Vec::new(),
                    ExecLabel::Transfer,
                )
            } else {
                (
                    TxStatus::Ok,
                    None,
                    Some((*to, *amount)),
                    Vec::new(),
                    ExecLabel::Transfer,
                )
            }
        }
        TxKind::Call {
            contract,
            method,
            args,
        } => {
            let label = ExecLabel::Call {
                contract: contract.clone(),
                method: method.clone(),
            };
            match contracts.get(contract) {
                None => (
                    TxStatus::Reverted(format!("no contract {contract}")),
                    None,
                    None,
                    Vec::new(),
                    label,
                ),
                Some(code) => {
                    // The shadow debit makes the caller's effective balance
                    // reflect the fee reservation serial already applied.
                    let mut ctx =
                        CallCtx::new(from, height, timestamp, contract.clone(), state, &mut meter)
                            .with_shadow_debit(max_fee);
                    match code.call(&mut ctx, method, args) {
                        Ok(ret) => (TxStatus::Ok, Some(ctx.into_effects()), None, ret, label),
                        Err(ContractError::OutOfGas) => {
                            (TxStatus::OutOfGas, None, None, Vec::new(), label)
                        }
                        Err(e) => (
                            TxStatus::Reverted(e.to_string()),
                            None,
                            None,
                            Vec::new(),
                            label,
                        ),
                    }
                }
            }
        }
    };
    PureExec::Ran {
        status,
        effects,
        transfer,
        return_data,
        gas_used: clamped_gas(&meter, schedule, gas_limit),
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::AccessKey;
    use duc_codec::{decode_from_slice, encode_to_vec};

    struct Counter;

    impl Contract for Counter {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "incr" => {
                    let (by,): (u64,) = decode_from_slice(args)?;
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    ctx.set(b"count".to_vec(), &(current + by))?;
                    ctx.emit("Incr", encode_to_vec(&(current + by,)))?;
                    Ok(encode_to_vec(&(current + by,)))
                }
                "get" => {
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    Ok(encode_to_vec(&(current,)))
                }
                "boom" => Err(ContractError::Reverted("boom".into())),
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    fn chain_with_counter() -> (Blockchain, KeyPair) {
        let mut chain = Blockchain::builder()
            .validators(3)
            .block_interval(SimDuration::from_secs(2))
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 10_000_000);
        (chain, alice)
    }

    #[test]
    fn transfer_moves_funds_and_charges_fees() {
        let (mut chain, alice) = chain_with_counter();
        let bob = Address::from_seed(b"bob");
        let tx = chain.build_transfer(&alice, bob, 1_000).unwrap();
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.balance(&bob), 1_000);
        let alice_addr = Address::from_public_key(&alice.public());
        assert!(
            chain.balance(&alice_addr) < 10_000_000 - 1_000,
            "fees charged"
        );
    }

    #[test]
    fn contract_call_executes_and_emits() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(7u64,)),
            200_000,
        );
        let id = chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let receipt = chain.receipt(&id).expect("included");
        assert!(receipt.status.is_ok());
        assert_eq!(receipt.events.len(), 1);
        assert!(receipt.gas_used > 21_000);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn revert_rolls_back_state_but_charges_gas() {
        let (mut chain, alice) = chain_with_counter();
        let tx1 = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx1).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let tx2 = chain.build_call(&alice, ContractId::new("counter"), "boom", vec![], 200_000);
        let id2 = chain.submit(tx2).unwrap();
        chain.advance_to(SimTime::from_secs(4));
        let receipt = chain.receipt(&id2).unwrap();
        assert!(matches!(receipt.status, TxStatus::Reverted(_)));
        assert!(receipt.gas_used > 0);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 1, "boom did not mutate state");
    }

    #[test]
    fn out_of_gas_reverts() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            22_000, // enough intrinsic, not enough for storage
        );
        let id = chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert_eq!(chain.receipt(&id).unwrap().status, TxStatus::OutOfGas);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn submit_rejects_bad_transactions() {
        let (mut chain, alice) = chain_with_counter();
        // Tampered signature.
        let mut tx = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        tx.tx.gas_limit += 1;
        assert_eq!(chain.submit(tx), Err(SubmitError::InvalidSignature));
        // Stale nonce.
        let t1 = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        chain.submit(t1.clone()).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert!(matches!(
            chain.submit(t1),
            Err(SubmitError::NonceTooLow { .. })
        ));
        // Unfunded sender.
        let poor = KeyPair::from_seed(b"poor");
        let tx = Transaction {
            from: Address::from_public_key(&poor.public()),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::from_seed(b"x"),
                amount: 1,
            },
            gas_limit: 50_000,
        }
        .sign(&poor);
        assert_eq!(chain.submit(tx), Err(SubmitError::CannotPayGas));
    }

    #[test]
    fn duplicate_nonce_rejected_in_mempool() {
        let (mut chain, alice) = chain_with_counter();
        let t1 = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        // Build a second tx with the same nonce by constructing manually.
        let t2 = Transaction {
            nonce: t1.tx.nonce,
            ..t1.tx.clone()
        }
        .sign(&alice);
        chain.submit(t1).unwrap();
        assert_eq!(chain.submit(t2), Err(SubmitError::DuplicateNonce));
    }

    #[test]
    fn nonce_sequencing_across_blocks() {
        let (mut chain, alice) = chain_with_counter();
        for _ in 0..5 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(1u64,)),
                200_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 5, "all five sequential-nonce txs executed in one block");
    }

    #[test]
    fn blocks_produced_on_schedule() {
        let (mut chain, alice) = chain_with_counter();
        // No pending work → no blocks, but time advances.
        assert_eq!(chain.advance_to(SimTime::from_secs(10)), 0);
        assert_eq!(chain.current_time(), SimTime::from_secs(10));
        assert_eq!(chain.height(), 0);
        // Work arrives: it is included at the next slot boundary (t = 12 s).
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        assert_eq!(
            chain.advance_to(SimTime::from_secs(11)),
            0,
            "slot not due yet"
        );
        assert_eq!(chain.advance_to(SimTime::from_secs(12)), 1);
        assert_eq!(
            chain.block(1).unwrap().header.timestamp,
            SimTime::from_secs(12)
        );
    }

    #[test]
    fn long_idle_periods_are_cheap() {
        let (mut chain, _) = chain_with_counter();
        // A month of idle time must not seal a million empty blocks.
        chain.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        assert_eq!(chain.height(), 0);
        assert_eq!(
            chain.current_time(),
            SimTime::ZERO + SimDuration::from_days(31)
        );
    }

    #[test]
    fn crashed_proposer_misses_slot() {
        let (mut chain, alice) = chain_with_counter();
        // Validators rotate 1,2,0,1,2,0... (slot k → k mod 3).
        chain.set_validator_down(1, true);
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        // Slot 1 (t=2s) belongs to the crashed v1 → missed; slot 2 (t=4s)
        // belongs to v2 → block.
        chain.advance_to(SimTime::from_secs(4));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.slots_missed(), 1);
        assert_eq!(
            chain.block(1).unwrap().header.timestamp,
            SimTime::from_secs(4)
        );
        chain.set_validator_down(1, false);
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(6));
        assert_eq!(chain.height(), 2, "chain is live again");
    }

    #[test]
    fn chain_validates_and_detects_tampering() {
        let (mut chain, alice) = chain_with_counter();
        for i in 0..3 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * (i + 1)));
        }
        assert_eq!(chain.validate_chain(), Ok(()));
        // Tamper with an old block (height-addressed; no raw indexing).
        chain.block_mut(1).unwrap().header.timestamp = SimTime::from_secs(999);
        assert!(chain.validate_chain().is_err());
    }

    #[test]
    fn events_since_filters_by_height() {
        let (mut chain, alice) = chain_with_counter();
        for i in 1..=3u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * i));
        }
        assert_eq!(chain.events_since(0).count(), 3);
        assert_eq!(chain.events_since(2).count(), 1);
        assert_eq!(chain.events_since(3).count(), 0);
    }

    #[test]
    fn gas_ledger_aggregates_by_method() {
        let (mut chain, alice) = chain_with_counter();
        for i in 0..4u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        let agg = chain.gas_by_method();
        let (calls, total, mean) = agg[&("counter".to_string(), "incr".to_string())];
        assert_eq!(calls, 4);
        assert!(total > 0 && mean > 0 && mean <= total);
    }

    #[test]
    fn block_gas_ceiling_defers_transactions() {
        let mut chain = Blockchain::builder()
            .validators(1)
            .max_block_gas(150_000)
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 100_000_000);
        for i in 0..5u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                60_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        // 150k ceiling / 60k limit → 2 per block.
        assert_eq!(chain.block(1).unwrap().transactions.len(), 2);
        assert_eq!(chain.pending_count(), 3);
        chain.advance_to(SimTime::from_secs(6));
        assert_eq!(chain.pending_count(), 0, "drained over later blocks");
    }

    /// Produces `n` one-tx blocks at 2 s cadence on a chain with the given
    /// storage config, returning the chain.
    fn chain_with_blocks(storage: StorageConfig, n: u64) -> Blockchain {
        let mut chain = Blockchain::builder()
            .validators(3)
            .block_interval(SimDuration::from_secs(2))
            .storage(storage)
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 1_000_000_000);
        for i in 1..=n {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * i));
        }
        chain
    }

    #[test]
    fn checkpoints_seal_on_interval_and_prune_behind() {
        let chain = chain_with_blocks(StorageConfig::enabled(4, 2), 10);
        assert_eq!(chain.height(), 10);
        // Checkpoints seal at heights 4 and 8; pruning lags one advance by
        // design, so the last applied horizon (at the advance that sealed
        // block 10, tip 9 then) is min(8 - 1, 9 - 2) = 7.
        let heights: Vec<u64> = chain.checkpoints().iter().map(|cp| cp.height).collect();
        assert_eq!(heights, vec![4, 8]);
        assert_eq!(chain.prune_horizon(), 7);
        assert_eq!(chain.retained_blocks(), 3);
        // Height addressing survives pruning.
        assert!(chain.block(7).is_none());
        assert_eq!(chain.block(8).unwrap().header.height, 8);
        assert_eq!(chain.block(10).unwrap().header.height, 10);
        // The resident suffix still validates across the pruned boundary.
        assert_eq!(chain.validate_chain(), Ok(()));
        chain.verify_checkpoints().expect("checkpoints consistent");
        // The event log starts above the horizon, and stale cursors get a
        // typed error instead of silently missing pruned events.
        assert!(chain.events_since(0).count() < 10);
        assert!(chain
            .events_since(chain.prune_horizon())
            .all(|(h, _)| *h > 7));
        let err = chain.try_events_slice_since(3).unwrap_err();
        assert_eq!(
            err,
            PrunedRange {
                requested: 3,
                horizon: 7
            }
        );
        assert!(chain.try_events_slice_since(7).is_ok());
        // Receipts for resident blocks survive pruning.
        assert!(chain
            .block(8)
            .unwrap()
            .transactions
            .iter()
            .all(|tx| chain.receipt(&tx.id()).is_some()));
    }

    #[test]
    fn disabled_storage_retains_everything() {
        let chain = chain_with_blocks(StorageConfig::disabled(), 10);
        assert_eq!(chain.prune_horizon(), 0);
        assert_eq!(chain.retained_blocks(), 10);
        assert!(chain.checkpoints().is_empty());
        assert_eq!(chain.events_since(0).count(), 10);
    }

    #[test]
    fn pruned_blocks_stream_to_the_archive() {
        let path = std::env::temp_dir().join(format!(
            "duc-chain-archive-{}-{:p}.bin",
            std::process::id(),
            &SEAL_MARKER
        ));
        std::fs::remove_file(&path).ok();
        let chain = chain_with_blocks(StorageConfig::enabled(4, 2).with_archive(&path), 10);
        assert_eq!(chain.archived_blocks(), 7);
        let frames = duc_storage::FileArchive::read_frames(&path).expect("read archive");
        assert_eq!(frames.len(), 7);
        // Frames decode back to the sealed headers, in height order.
        use duc_codec::Decode as _;
        for (i, frame) in frames.iter().enumerate() {
            let mut r = duc_codec::Reader::new(frame);
            let header = crate::block::BlockHeader::decode(&mut r).expect("header");
            assert_eq!(header.height, i as u64 + 1);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Address anchor for unique temp paths (one per test binary load).
    static SEAL_MARKER: u8 = 0;

    #[test]
    fn view_calls_do_not_mutate() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let (s0, _) = chain.state_size();
        let _ = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        assert_eq!(chain.state_size().0, s0);
        assert!(chain
            .call_view(&ContractId::new("missing"), "get", &[])
            .is_err());
    }

    #[test]
    fn overflowing_max_fee_is_rejected_not_wrapped() {
        // A gas price high enough that gas_limit × price exceeds u128: the
        // unchecked multiplication used to wrap and drastically under-charge.
        let mut chain = Blockchain::builder()
            .validators(1)
            .gas_price(Amount::MAX / 2)
            .build();
        let alice = chain.create_funded_account(b"alice", Amount::MAX);
        assert_eq!(
            chain
                .build_transfer(&alice, Address::from_seed(b"bob"), 1)
                .unwrap_err(),
            SubmitError::FeeOverflow
        );
        let tx = Transaction {
            from: Address::from_public_key(&alice.public()),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::from_seed(b"bob"),
                amount: 1,
            },
            gas_limit: u64::MAX,
        }
        .sign(&alice);
        assert_eq!(chain.submit(tx), Err(SubmitError::FeeOverflow));
    }

    #[test]
    fn gas_limit_below_tx_base_cannot_underflow_the_refund() {
        // gas_used is floored at tx_base; without the limit clamp the
        // refund `gas_limit - gas_used` would underflow for a tiny limit.
        let (mut chain, alice) = chain_with_counter();
        let addr = Address::from_public_key(&alice.public());
        let before = chain.balance(&addr);
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            1_000, // far below the 21k intrinsic base
        );
        let id = chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let receipt = chain.receipt(&id).unwrap();
        assert_eq!(receipt.status, TxStatus::OutOfGas);
        assert_eq!(receipt.gas_used, 1_000, "clamped to the limit");
        assert_eq!(
            chain.balance(&addr),
            before - 1_000 * chain.gas_price(),
            "charged exactly the limit, no refund underflow"
        );
    }

    #[test]
    fn superseded_transactions_get_receipts_on_eviction() {
        let (mut chain, alice) = chain_with_counter();
        let addr = Address::from_public_key(&alice.public());
        let t0 = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(t0).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        // Forge the race a gossiping network produces: a tx whose nonce a
        // just-sealed block consumed reaches this node's mempool (the
        // submit path would reject it, so plant it directly).
        let stale = Transaction {
            from: addr,
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::from_seed(b"x"),
                amount: 5,
            },
            gas_limit: 60_000,
        }
        .sign(&alice);
        let stale_id = stale.id();
        chain.mempool.insert((addr, 0), stale);
        let live = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        let live_id = chain.submit(live).unwrap();
        chain.advance_to(SimTime::from_secs(4));
        // The stale entry is evicted with a typed receipt instead of
        // lingering (and starving pollers) forever.
        let receipt = chain.receipt(&stale_id).expect("eviction left a receipt");
        assert_eq!(receipt.status, TxStatus::Superseded);
        assert_eq!(receipt.block_height, 2);
        assert_eq!(receipt.gas_used, 0);
        assert!(chain.receipt(&live_id).unwrap().status.is_ok());
        assert_eq!(chain.pending_count(), 0);
    }

    // ------------------------------------------------- parallel execution

    /// Access derivation for the [`Counter`] test contract: one slot per
    /// deployed instance, so calls against different instances commute.
    fn counter_access_fn() -> AccessFn {
        Box::new(|p: &AccessParams<'_>| {
            let slot = || AccessKey::Slot {
                space: exec::fnv1a(b"ctr"),
                key: exec::fnv1a(p.contract.as_str().as_bytes()),
            };
            match p.method {
                "incr" | "boom" => AccessSet::declared().read(slot()).write(slot()),
                "get" => AccessSet::declared().read(slot()),
                _ => AccessSet::Exclusive,
            }
        })
    }

    /// Runs a mixed workload (disjoint calls, shared-counter conflicts,
    /// reverts, out-of-gas, transfers, a mid-block fee failure) under the
    /// given execution mode and returns the finished chain.
    fn parity_workload(mode: ExecMode, with_access: bool) -> Blockchain {
        let mut chain = Blockchain::builder()
            .validators(3)
            .block_interval(SimDuration::from_secs(2))
            .gas_price(1)
            .max_block_gas(100_000_000)
            .exec_mode(mode)
            .exec_threads(4)
            .build();
        for i in 0..4 {
            chain.deploy(ContractId::new(format!("ctr-{i}")), Box::new(Counter));
        }
        if with_access {
            chain.set_access_fn(counter_access_fn());
        }
        let keys: Vec<KeyPair> = (0..6)
            .map(|i| chain.create_funded_account(format!("sender-{i}").as_bytes(), 50_000_000))
            .collect();
        // A sender whose second tx passes admission against the pre-block
        // balance but cannot pay its fee after the first lands (the
        // fee-failure path must agree between the executors).
        let pauper = chain.create_funded_account(b"pauper", 100_000);
        let t = chain
            .build_transfer(&pauper, Address::from_seed(b"sink"), 70_000)
            .unwrap();
        chain.submit(t).unwrap();
        let t = chain.build_call(&pauper, ContractId::new("ctr-3"), "get", vec![], 50_000);
        chain.submit(t).unwrap();
        for round in 0..3u64 {
            for (i, key) in keys.iter().enumerate() {
                let ctr = ContractId::new(format!("ctr-{}", i % 4));
                let tx = chain.build_call(
                    key,
                    ctr,
                    "incr",
                    encode_to_vec(&(i as u64 + round + 1,)),
                    200_000,
                );
                chain.submit(tx).unwrap();
            }
            // Same-sender pair on a shared counter: must serialize.
            let tx = chain.build_call(
                &keys[0],
                ContractId::new("ctr-0"),
                "incr",
                encode_to_vec(&(1u64,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            // A revert and an out-of-gas, mid-batch.
            let tx = chain.build_call(&keys[1], ContractId::new("ctr-1"), "boom", vec![], 200_000);
            chain.submit(tx).unwrap();
            let tx = chain.build_call(
                &keys[2],
                ContractId::new("ctr-2"),
                "incr",
                encode_to_vec(&(1u64,)),
                22_000,
            );
            chain.submit(tx).unwrap();
            // Transfers derive no access set: always exclusive.
            let tx = chain
                .build_transfer(&keys[3], Address::from_seed(b"sink"), 1_000)
                .unwrap();
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * (round + 1)));
        }
        chain
    }

    /// Full-fingerprint equality: block hashes chain over parent, state
    /// root and tx root, so matching tip hashes mean byte-identical
    /// histories; receipts, events and gas accounting are checked on top.
    fn assert_chains_identical(a: &Blockchain, b: &Blockchain) {
        assert_eq!(a.height(), b.height());
        for h in 1..=a.height() {
            let ba = a.block(h).unwrap();
            let bb = b.block(h).unwrap();
            assert_eq!(ba.hash(), bb.hash(), "block {h} diverged");
            for tx in &ba.transactions {
                assert_eq!(
                    format!("{:?}", a.receipt(&tx.id())),
                    format!("{:?}", b.receipt(&tx.id())),
                    "receipt diverged at height {h}"
                );
            }
        }
        assert_eq!(
            format!("{:?}", a.events_since(0).collect::<Vec<_>>()),
            format!("{:?}", b.events_since(0).collect::<Vec<_>>())
        );
        assert_eq!(a.gas_by_method(), b.gas_by_method());
        assert_eq!(a.pending_count(), b.pending_count());
    }

    #[test]
    fn parallel_execution_matches_serial_byte_for_byte() {
        let serial = parity_workload(ExecMode::Serial, true);
        let parallel = parity_workload(ExecMode::Parallel, true);
        assert_chains_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_without_access_fn_still_matches_serial() {
        // No derivation installed: every tx is exclusive, levels collapse
        // to singletons, and output must still be identical.
        let serial = parity_workload(ExecMode::Serial, false);
        let parallel = parity_workload(ExecMode::Parallel, false);
        assert_chains_identical(&serial, &parallel);
    }
}
