//! The proof-of-authority blockchain.
//!
//! Block production is clocked by the simulation: slot `k` opens at
//! `genesis + k × interval` and belongs to validator `k mod n` (round
//! robin). [`Blockchain::advance_to`] produces every due block; a crashed
//! proposer simply misses its slot, which is exactly the liveness behaviour
//! the robustness experiment (E8) measures.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

use duc_crypto::KeyPair;
use duc_intern::{Interner, Sym};
use duc_sim::{SimDuration, SimTime};
use duc_storage::{BlockStore, Checkpoint, FileArchive, PrunedRange, StateStore, StorageConfig};

use crate::block::{Block, BlockValidationError};
use crate::contract::{CallCtx, Contract, ContractError, Event};
use crate::gas::{GasMeter, GasSchedule};
use crate::state::WorldState;
use crate::tx::{Receipt, SignedTransaction, Transaction, TxKind, TxStatus};
use crate::types::{Address, Amount, ContractId, TxId};

/// Why a transaction was rejected at submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Signature or sender-address check failed.
    InvalidSignature,
    /// The nonce is below the account's current nonce (stale/replay).
    NonceTooLow {
        /// Expected minimum.
        expected: u64,
        /// Provided nonce.
        got: u64,
    },
    /// The sender cannot cover the maximum gas fee.
    CannotPayGas,
    /// The mempool is at capacity.
    MempoolFull,
    /// A transaction with the same sender and nonce is already pending.
    DuplicateNonce,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::InvalidSignature => f.write_str("invalid signature"),
            SubmitError::NonceTooLow { expected, got } => {
                write!(f, "nonce too low: expected >= {expected}, got {got}")
            }
            SubmitError::CannotPayGas => f.write_str("cannot pay gas"),
            SubmitError::MempoolFull => f.write_str("mempool full"),
            SubmitError::DuplicateNonce => f.write_str("duplicate (sender, nonce) pending"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One row of the gas ledger (who spent what on which method) — the raw
/// data behind the affordability table (E7).
///
/// Labels are interned [`Sym`]s into the chain's label table (resolve via
/// [`Blockchain::gas_label`]); a record is three words instead of two
/// heap-owned strings, and aggregation compares `u32`s instead of URLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasRecord {
    /// The called contract (`None` for plain transfers).
    pub contract: Option<Sym>,
    /// The method label (`"transfer"` for transfers).
    pub method: Sym,
    /// Gas consumed.
    pub gas_used: u64,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Block height.
    pub height: u64,
}

/// Configures and creates a [`Blockchain`].
#[derive(Debug)]
pub struct BlockchainBuilder {
    validator_count: usize,
    block_interval: SimDuration,
    gas_schedule: GasSchedule,
    max_block_gas: u64,
    gas_price: Amount,
    mempool_capacity: usize,
    storage: StorageConfig,
}

impl Default for BlockchainBuilder {
    fn default() -> Self {
        BlockchainBuilder {
            validator_count: 4,
            block_interval: SimDuration::from_secs(2),
            gas_schedule: GasSchedule::default(),
            max_block_gas: 30_000_000,
            gas_price: 1,
            mempool_capacity: 10_000,
            storage: StorageConfig::disabled(),
        }
    }
}

impl BlockchainBuilder {
    /// Number of PoA validators (keys derived deterministically).
    pub fn validators(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one validator required");
        self.validator_count = n;
        self
    }

    /// Target block interval.
    pub fn block_interval(mut self, interval: SimDuration) -> Self {
        self.block_interval = interval;
        self
    }

    /// Gas price list.
    pub fn gas_schedule(mut self, schedule: GasSchedule) -> Self {
        self.gas_schedule = schedule;
        self
    }

    /// Per-block gas ceiling.
    pub fn max_block_gas(mut self, gas: u64) -> Self {
        self.max_block_gas = gas;
        self
    }

    /// Native-token price per unit of gas.
    pub fn gas_price(mut self, price: Amount) -> Self {
        self.gas_price = price;
        self
    }

    /// Mempool capacity.
    pub fn mempool_capacity(mut self, cap: usize) -> Self {
        self.mempool_capacity = cap;
        self
    }

    /// Retention configuration (checkpoint interval, window, archive path).
    /// Defaults to [`StorageConfig::disabled`]: infinite retention.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Builds the chain (genesis at t = 0).
    ///
    /// # Panics
    /// If an archive path is configured and the archive file cannot be
    /// opened for appending.
    pub fn build(self) -> Blockchain {
        let validators: Vec<KeyPair> = (0..self.validator_count)
            .map(|i| KeyPair::from_seed(format!("duc/validator-{i}").as_bytes()))
            .collect();
        let archive = self.storage.archive_path.as_ref().map(|path| {
            FileArchive::open(path).unwrap_or_else(|e| panic!("open archive {path:?}: {e}"))
        });
        Blockchain {
            validators,
            down_validators: HashSet::new(),
            block_interval: self.block_interval,
            next_slot: 1,
            current_time: SimTime::ZERO,
            state: WorldState::new(),
            blocks: BlockStore::new(archive),
            storage: self.storage,
            checkpoints: StateStore::new(),
            mempool: BTreeMap::new(),
            receipts: HashMap::new(),
            event_log: Vec::new(),
            contracts: HashMap::new(),
            gas_schedule: self.gas_schedule,
            gas_price: self.gas_price,
            max_block_gas: self.max_block_gas,
            mempool_capacity: self.mempool_capacity,
            gas_ledger: Vec::new(),
            labels: Interner::new(),
            slots_missed: 0,
        }
    }
}

/// The chain node (in this simulation, one logical replica of the PoA
/// network — consensus among honest replicas is deterministic replay).
pub struct Blockchain {
    validators: Vec<KeyPair>,
    down_validators: HashSet<usize>,
    block_interval: SimDuration,
    /// The next production slot (slot k opens at genesis + k × interval).
    next_slot: u64,
    /// The latest instant the chain has observed (view calls evaluate
    /// time-dependent logic against this).
    current_time: SimTime,
    state: WorldState,
    /// Windowed block storage: retained heights are
    /// `prune_horizon + 1 ..= height` once pruning has run.
    blocks: BlockStore<Block>,
    storage: StorageConfig,
    checkpoints: StateStore,
    mempool: BTreeMap<(Address, u64), SignedTransaction>,
    receipts: HashMap<TxId, Receipt>,
    event_log: Vec<(u64, Rc<Event>)>,
    contracts: HashMap<ContractId, Box<dyn Contract>>,
    gas_schedule: GasSchedule,
    gas_price: Amount,
    max_block_gas: u64,
    mempool_capacity: usize,
    gas_ledger: Vec<GasRecord>,
    /// Gas-ledger label table: contract ids and method names interned once
    /// per distinct label instead of cloned per record.
    labels: Interner,
    slots_missed: u64,
}

impl std::fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("pending", &self.mempool.len())
            .field("validators", &self.validators.len())
            .field("contracts", &self.contracts.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Blockchain {
    /// Starts a builder with defaults (4 validators, 2 s blocks).
    pub fn builder() -> BlockchainBuilder {
        BlockchainBuilder::default()
    }

    // ------------------------------------------------------------ accounts

    /// Creates a key pair from `seed` and funds its account.
    pub fn create_funded_account(&mut self, seed: &[u8], amount: Amount) -> KeyPair {
        let key = KeyPair::from_seed(seed);
        self.state
            .credit(Address::from_public_key(&key.public()), amount);
        key
    }

    /// Current balance of an address.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.state.balance(addr)
    }

    /// The next nonce `addr` should use (accounts for pending txs).
    pub fn next_nonce(&self, addr: &Address) -> u64 {
        let pending_max = self
            .mempool
            .range((*addr, 0)..=(*addr, u64::MAX))
            .map(|((_, n), _)| *n + 1)
            .max();
        pending_max.unwrap_or(0).max(self.state.nonce(addr))
    }

    // ----------------------------------------------------------- contracts

    /// Deploys a contract at genesis (before or between blocks).
    pub fn deploy(&mut self, id: ContractId, contract: Box<dyn Contract>) {
        self.contracts.insert(id, contract);
    }

    /// Whether a contract is deployed.
    pub fn has_contract(&self, id: &ContractId) -> bool {
        self.contracts.contains_key(id)
    }

    // -------------------------------------------------------- tx building

    /// Builds a signed transfer using the account's next nonce.
    ///
    /// # Errors
    /// Returns [`SubmitError::CannotPayGas`] when the balance cannot cover
    /// amount + maximum fee.
    pub fn build_transfer(
        &self,
        key: &KeyPair,
        to: Address,
        amount: Amount,
    ) -> Result<SignedTransaction, SubmitError> {
        let from = Address::from_public_key(&key.public());
        // Intrinsic cost covers the base fee plus per-byte payload charges
        // (a signed transfer encodes to ~120 bytes).
        let gas_limit = self.gas_schedule.tx_base + 8_000;
        if self.state.balance(&from) < amount + gas_limit as Amount * self.gas_price {
            return Err(SubmitError::CannotPayGas);
        }
        Ok(Transaction {
            from,
            nonce: self.next_nonce(&from),
            kind: TxKind::Transfer { to, amount },
            gas_limit,
        }
        .sign(key))
    }

    /// Builds a signed contract call using the account's next nonce.
    pub fn build_call(
        &self,
        key: &KeyPair,
        contract: ContractId,
        method: impl Into<String>,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        let from = Address::from_public_key(&key.public());
        Transaction {
            from,
            nonce: self.next_nonce(&from),
            kind: TxKind::Call {
                contract,
                method: method.into(),
                args,
            },
            gas_limit,
        }
        .sign(key)
    }

    // ----------------------------------------------------------- mempool

    /// Submits a signed transaction to the mempool.
    ///
    /// # Errors
    /// See [`SubmitError`] for the rejection conditions.
    pub fn submit(&mut self, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        if !tx.verify() {
            return Err(SubmitError::InvalidSignature);
        }
        let expected = self.state.nonce(&tx.tx.from);
        if tx.tx.nonce < expected {
            return Err(SubmitError::NonceTooLow {
                expected,
                got: tx.tx.nonce,
            });
        }
        if self.state.balance(&tx.tx.from) < tx.tx.gas_limit as Amount * self.gas_price {
            return Err(SubmitError::CannotPayGas);
        }
        if self.mempool.len() >= self.mempool_capacity {
            return Err(SubmitError::MempoolFull);
        }
        let keypair_key = (tx.tx.from, tx.tx.nonce);
        if self.mempool.contains_key(&keypair_key) {
            return Err(SubmitError::DuplicateNonce);
        }
        let id = tx.id();
        self.mempool.insert(keypair_key, tx);
        Ok(id)
    }

    /// Number of pending transactions.
    pub fn pending_count(&self) -> usize {
        self.mempool.len()
    }

    // ------------------------------------------------------ block making

    /// Produces every block whose slot opens at or before `now`.
    /// Returns the number of blocks produced.
    ///
    /// Blocks are produced *on demand*: a slot with an empty mempool is
    /// skipped without sealing an empty block (the behaviour of on-demand
    /// sequencers; it also keeps long idle simulated periods cheap). Slot
    /// accounting still advances, so proposer rotation and crash-fault
    /// liveness behave like a fixed-cadence PoA network whenever there is
    /// work to include.
    pub fn advance_to(&mut self, now: SimTime) -> usize {
        self.prune_due();
        let mut produced = 0;
        loop {
            let slot_time = SimTime::ZERO + self.block_interval.saturating_mul(self.next_slot);
            if slot_time > now {
                break;
            }
            if self.mempool.is_empty() {
                // Fast-forward the slot counter to the last empty slot
                // before `now` (or before more work could exist).
                let slots_until_now = now.as_nanos() / self.block_interval.as_nanos().max(1);
                self.next_slot = self.next_slot.max(slots_until_now).saturating_add(1);
                break;
            }
            let proposer_idx = (self.next_slot as usize) % self.validators.len();
            self.next_slot += 1;
            if self.down_validators.contains(&proposer_idx) {
                self.slots_missed += 1;
                continue;
            }
            self.produce_block(slot_time, proposer_idx);
            produced += 1;
        }
        if now > self.current_time {
            self.current_time = now;
        }
        produced
    }

    /// The latest instant the chain has observed.
    pub fn current_time(&self) -> SimTime {
        self.current_time
    }

    fn produce_block(&mut self, timestamp: SimTime, proposer_idx: usize) {
        let height = self.blocks.height() + 1;
        // Select executable transactions in deterministic order, respecting
        // per-account nonce sequencing and the block gas ceiling.
        let mut included = Vec::new();
        let mut receipts = Vec::new();
        let mut block_gas: u64 = 0;
        let mut ready: Vec<(Address, u64)> = self.mempool.keys().cloned().collect();
        ready.sort();
        for key in ready {
            let expected = self.state.nonce(&key.0);
            if key.1 != expected {
                continue; // future nonce stays pending; stale handled below
            }
            let tx = self.mempool.get(&key).expect("key from mempool").clone();
            if block_gas + tx.tx.gas_limit > self.max_block_gas {
                continue;
            }
            self.mempool.remove(&key);
            // The ceiling reserves each transaction's full gas limit, as
            // real block builders must (gas_used is unknown pre-execution).
            block_gas += tx.tx.gas_limit;
            let receipt = self.execute(tx.clone(), height, timestamp, proposer_idx);
            for ev in &receipt.events {
                // One Rc per event: every downstream consumer (push-out
                // fan-out, pull-in polls, sharded merge) clones the pointer,
                // not the payload.
                self.event_log.push((height, Rc::new(ev.clone())));
            }
            receipts.push(receipt.clone());
            self.receipts.insert(receipt.tx_id, receipt);
            included.push(tx);
        }
        // Evict transactions whose nonce is now stale.
        let stale: Vec<(Address, u64)> = self
            .mempool
            .keys()
            .filter(|(addr, nonce)| *nonce < self.state.nonce(addr))
            .cloned()
            .collect();
        for key in stale {
            self.mempool.remove(&key);
        }
        let parent = self
            .blocks
            .last()
            .map(|b| b.hash())
            .unwrap_or_else(|| self.blocks.base_parent());
        let block = Block::seal(
            height,
            parent,
            self.state.commitment(),
            timestamp,
            included,
            &self.validators[proposer_idx],
        );
        self.blocks.push(block);
        self.maybe_checkpoint(height);
    }

    /// Seals a checkpoint when the configured interval has elapsed since
    /// the last one. Pruning itself is deferred to the *next*
    /// [`Blockchain::advance_to`] call (see [`Blockchain::prune_due`]).
    fn maybe_checkpoint(&mut self, height: u64) {
        if !self.storage.is_enabled() {
            return;
        }
        let last = self.checkpoints.last().map_or(0, |cp| cp.height);
        if height - last < self.storage.checkpoint_interval {
            return;
        }
        self.checkpoints.seal(Checkpoint {
            height,
            state_commitment: self.state.commitment(),
            accumulator: self.state.accumulator(),
            event_cursor_floor: self.storage.horizon_after_checkpoint(height, height),
        });
    }

    /// Applies the pruning implied by the last sealed checkpoint: evicts
    /// blocks, events and receipts at or below
    /// `min(checkpoint_height - 1, tip - window)`, so the checkpoint's own
    /// block and the most recent `window` blocks always stay resident.
    ///
    /// Runs at the *start* of `advance_to` — one call behind checkpoint
    /// sealing — so every event sealed in a burst of blocks is readable by
    /// consumers (the sharded merge, oracle polls between driver steps)
    /// before it is evicted.
    fn prune_due(&mut self) {
        if !self.storage.is_enabled() {
            return;
        }
        let Some(cp) = self.checkpoints.last() else {
            return;
        };
        let horizon = self
            .storage
            .horizon_after_checkpoint(cp.height, self.blocks.height());
        if horizon <= self.blocks.prune_horizon() {
            return;
        }
        let evicted = self
            .blocks
            .prune_below(horizon, Block::hash)
            .unwrap_or_else(|e| panic!("archive pruned blocks: {e}"));
        if evicted == 0 {
            return;
        }
        let horizon = self.blocks.prune_horizon();
        let cut = self.event_log.partition_point(|(h, _)| *h <= horizon);
        self.event_log.drain(..cut);
        self.receipts.retain(|_, r| r.block_height > horizon);
    }

    fn execute(
        &mut self,
        signed: SignedTransaction,
        height: u64,
        timestamp: SimTime,
        proposer_idx: usize,
    ) -> Receipt {
        let tx_id = signed.id();
        let from = signed.tx.from;
        let gas_limit = signed.tx.gas_limit;
        let max_fee = gas_limit as Amount * self.gas_price;
        // Reserve the maximum fee upfront (refund the unused part later).
        if self.state.debit(&from, max_fee).is_err() {
            return Receipt {
                tx_id,
                block_height: height,
                status: TxStatus::Reverted("cannot pay gas".into()),
                gas_used: 0,
                events: Vec::new(),
                return_data: Vec::new(),
            };
        }
        self.state.bump_nonce(&from);

        let mut meter = GasMeter::new(gas_limit, self.gas_schedule.clone());
        let intrinsic = self
            .gas_schedule
            .tx_base
            .saturating_add(self.gas_schedule.payload_byte * signed.encoded_size() as u64);
        let intrinsic_result = meter.charge(intrinsic);

        let (status, events, return_data, method_label, contract_label) =
            if intrinsic_result.is_err() {
                (
                    TxStatus::OutOfGas,
                    Vec::new(),
                    Vec::new(),
                    self.labels.intern("intrinsic"),
                    None,
                )
            } else {
                match signed.tx.kind.clone() {
                    TxKind::Transfer { to, amount } => {
                        let status = match self.state.debit(&from, amount) {
                            Ok(()) => {
                                self.state.credit(to, amount);
                                TxStatus::Ok
                            }
                            Err(e) => TxStatus::Reverted(e.to_string()),
                        };
                        (
                            status,
                            Vec::new(),
                            Vec::new(),
                            self.labels.intern("transfer"),
                            None,
                        )
                    }
                    TxKind::Call {
                        contract,
                        method,
                        args,
                    } => {
                        let method_sym = self.labels.intern(&method);
                        let contract_sym = self.labels.intern(contract.as_str());
                        match self.contracts.get(&contract) {
                            None => (
                                TxStatus::Reverted(format!("no contract {contract}")),
                                Vec::new(),
                                Vec::new(),
                                method_sym,
                                Some(contract_sym),
                            ),
                            Some(code) => {
                                // Execute against the canonical state through
                                // a write overlay; apply the buffered effects
                                // only on success. A revert drops them — no
                                // full-state scratch copy per call.
                                let mut ctx = CallCtx::new(
                                    from,
                                    height,
                                    timestamp,
                                    contract.clone(),
                                    &self.state,
                                    &mut meter,
                                );
                                match code.call(&mut ctx, &method, &args) {
                                    Ok(ret) => {
                                        let events = ctx.into_effects().apply(&mut self.state);
                                        (TxStatus::Ok, events, ret, method_sym, Some(contract_sym))
                                    }
                                    Err(ContractError::OutOfGas) => (
                                        TxStatus::OutOfGas,
                                        Vec::new(),
                                        Vec::new(),
                                        method_sym,
                                        Some(contract_sym),
                                    ),
                                    Err(e) => (
                                        TxStatus::Reverted(e.to_string()),
                                        Vec::new(),
                                        Vec::new(),
                                        method_sym,
                                        Some(contract_sym),
                                    ),
                                }
                            }
                        }
                    }
                }
            };

        let gas_used = meter.used().max(self.gas_schedule.tx_base);
        // Refund unused fee; pay the consumed fee to the proposer.
        let refund = (gas_limit - gas_used) as Amount * self.gas_price;
        self.state.credit(from, refund);
        let proposer_addr = Address::from_public_key(&self.validators[proposer_idx].public());
        self.state
            .credit(proposer_addr, gas_used as Amount * self.gas_price);

        self.gas_ledger.push(GasRecord {
            contract: contract_label,
            method: method_label,
            gas_used,
            ok: status.is_ok(),
            height,
        });

        Receipt {
            tx_id,
            block_height: height,
            status,
            gas_used,
            events,
            return_data,
        }
    }

    // -------------------------------------------------------------- reads

    /// Chain height (number of blocks ever produced; pruning does not
    /// rewind it).
    pub fn height(&self) -> u64 {
        self.blocks.height()
    }

    /// A block by height (1-based). `None` for height 0, heights above the
    /// tip, and pruned heights — use [`Blockchain::prune_horizon`] to
    /// distinguish the last case.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height)
    }

    /// The prune horizon: highest pruned height (`0` = nothing pruned).
    /// Every block and event at or below it has been evicted.
    pub fn prune_horizon(&self) -> u64 {
        self.blocks.prune_horizon()
    }

    /// Number of blocks currently resident in memory.
    pub fn retained_blocks(&self) -> usize {
        self.blocks.retained()
    }

    /// Blocks streamed to the archive so far.
    pub fn archived_blocks(&self) -> u64 {
        self.blocks.archived()
    }

    /// The most recently sealed checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// Every sealed checkpoint, oldest first.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        self.checkpoints.all()
    }

    /// The retention configuration this chain runs with.
    pub fn storage_config(&self) -> &StorageConfig {
        &self.storage
    }

    /// Verifies every checkpoint whose block is still resident against the
    /// block's sealed state root, and that the latest checkpoint's block is
    /// resident at all (the prune horizon never evicts it). This is the
    /// chaos invariant that a pruned-then-forged history cannot smuggle a
    /// different state past a checkpoint.
    ///
    /// # Errors
    /// A description of the first mismatching checkpoint.
    pub fn verify_checkpoints(&self) -> Result<(), String> {
        for cp in self.checkpoints.all() {
            match self.blocks.get(cp.height) {
                Some(block) => {
                    if block.header.state_root != cp.state_commitment {
                        return Err(format!(
                            "checkpoint at height {} commits {:?} but the sealed block \
                             carries state root {:?}",
                            cp.height, cp.state_commitment, block.header.state_root
                        ));
                    }
                }
                None => {
                    if Some(cp.height) == self.checkpoints.last().map(|c| c.height) {
                        return Err(format!(
                            "latest checkpoint block at height {} was pruned",
                            cp.height
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Mutable block access for tamper-detection tests.
    #[cfg(test)]
    fn block_mut(&mut self, height: u64) -> Option<&mut Block> {
        self.blocks.get_mut(height)
    }

    /// The receipt for a transaction, once included.
    pub fn receipt(&self, id: &TxId) -> Option<&Receipt> {
        self.receipts.get(id)
    }

    /// Events from blocks strictly above `height`, with their heights.
    ///
    /// The event log is appended block-by-block, so it is height-sorted;
    /// a binary search finds the cursor position and the scan starts there
    /// instead of filtering the whole log — oracle polls (pull-in,
    /// push-out) hit this on every round, and an idle poll is O(log n)
    /// instead of O(n).
    pub fn events_since(&self, height: u64) -> impl Iterator<Item = &(u64, Rc<Event>)> {
        self.events_slice_since(height).iter()
    }

    /// The height-sorted tail of the event log strictly above `height`
    /// (the zero-copy form behind [`Blockchain::events_since`] and the
    /// `Ledger` impl). Events are `Rc`-shared: consumers that keep one
    /// clone the pointer, not the payload.
    pub fn events_slice_since(&self, height: u64) -> &[(u64, Rc<Event>)] {
        let start = self.event_log.partition_point(|(h, _)| *h <= height);
        &self.event_log[start..]
    }

    /// Like [`Blockchain::events_slice_since`], but a cursor below the
    /// prune horizon is a typed [`PrunedRange`] error instead of a
    /// silently-incomplete slice: events in `(height, horizon]` are gone,
    /// so the caller must resync from the last checkpoint's
    /// `event_cursor_floor` rather than miss them. A cursor exactly at the
    /// horizon is fine — everything it has yet to read is still resident.
    ///
    /// # Errors
    /// [`PrunedRange`] when `height < prune_horizon`.
    pub fn try_events_slice_since(&self, height: u64) -> Result<&[(u64, Rc<Event>)], PrunedRange> {
        let horizon = self.blocks.prune_horizon();
        if height < horizon {
            return Err(PrunedRange {
                requested: height,
                horizon,
            });
        }
        Ok(self.events_slice_since(height))
    }

    /// Executes a read-only contract call against current state
    /// (free, not part of consensus).
    ///
    /// # Errors
    /// Propagates the contract's error.
    pub fn call_view(
        &self,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let code = self
            .contracts
            .get(contract)
            .ok_or_else(|| ContractError::Reverted(format!("no contract {contract}")))?;
        let mut meter = GasMeter::unmetered();
        let now = self.current_time.max(
            self.blocks
                .last()
                .map(|b| b.header.timestamp)
                .unwrap_or(SimTime::ZERO),
        );
        // Read-only: the context's write overlay is simply dropped, so the
        // canonical state is never copied or touched.
        let mut ctx = CallCtx::new(
            Address::from_seed(b"duc/view"),
            self.height(),
            now,
            contract.clone(),
            &self.state,
            &mut meter,
        );
        code.call(&mut ctx, method, args)
    }

    /// Validates the resident chain structure (signatures, roots, links).
    /// After pruning, validation starts from the store's `base_parent` —
    /// the hash of the last pruned block — so the link across the pruned
    /// boundary is still checked.
    ///
    /// # Errors
    /// The first [`BlockValidationError`] found.
    pub fn validate_chain(&self) -> Result<(), BlockValidationError> {
        let mut parent = self.blocks.base_parent();
        for (_, block) in self.blocks.iter() {
            block.validate()?;
            if block.header.parent != parent {
                return Err(BlockValidationError::BrokenParentLink(block.header.height));
            }
            parent = block.hash();
        }
        Ok(())
    }

    // ------------------------------------------------------- fault control

    /// Marks validator `idx` crashed (misses its slots) or recovered.
    pub fn set_validator_down(&mut self, idx: usize, down: bool) {
        if down {
            self.down_validators.insert(idx);
        } else {
            self.down_validators.remove(&idx);
        }
    }

    /// Number of validators.
    pub fn validator_count(&self) -> usize {
        self.validators.len()
    }

    /// The fee-collection addresses of every validator, in index order —
    /// the single source of truth for gas-conservation audits (gas paid
    /// out always lands on one of these).
    pub fn validator_addresses(&self) -> Vec<Address> {
        self.validators
            .iter()
            .map(|k| Address::from_public_key(&k.public()))
            .collect()
    }

    /// Slots skipped because their proposer was down.
    pub fn slots_missed(&self) -> u64 {
        self.slots_missed
    }

    // ----------------------------------------------------------- metrics

    /// The gas ledger (per-call records) for the affordability reports.
    pub fn gas_ledger(&self) -> &[GasRecord] {
        &self.gas_ledger
    }

    /// Resolves a gas-ledger label symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this chain's gas ledger.
    pub fn gas_label(&self, sym: Sym) -> &str {
        self.labels.resolve(sym)
    }

    /// Aggregates the gas ledger by `(contract, method)`:
    /// `(calls, total gas, mean gas)`.
    ///
    /// Aggregation runs entirely on interned label ids (`u32` compares, no
    /// allocation per record); strings materialize once per distinct label
    /// at the report boundary.
    pub fn gas_by_method(&self) -> BTreeMap<(String, String), (u64, u64, u64)> {
        let mut agg: HashMap<(Option<Sym>, Sym), (u64, u64)> = HashMap::new();
        for rec in &self.gas_ledger {
            let entry = agg.entry((rec.contract, rec.method)).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += rec.gas_used;
        }
        agg.into_iter()
            .map(|((contract, method), (calls, total))| {
                let key = (
                    contract
                        .map(|c| self.labels.resolve(c).to_string())
                        .unwrap_or_else(|| "native".to_string()),
                    self.labels.resolve(method).to_string(),
                );
                (key, (calls, total, total.checked_div(calls).unwrap_or(0)))
            })
            .collect()
    }

    /// Storage growth metrics: `(slots, bytes)` (experiment E12).
    pub fn state_size(&self) -> (usize, usize) {
        (
            self.state.storage_slot_count(),
            self.state.storage_byte_size(),
        )
    }

    /// The gas price.
    pub fn gas_price(&self) -> Amount {
        self.gas_price
    }

    /// The block interval.
    pub fn block_interval(&self) -> SimDuration {
        self.block_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};

    struct Counter;

    impl Contract for Counter {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "incr" => {
                    let (by,): (u64,) = decode_from_slice(args)?;
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    ctx.set(b"count".to_vec(), &(current + by))?;
                    ctx.emit("Incr", encode_to_vec(&(current + by,)))?;
                    Ok(encode_to_vec(&(current + by,)))
                }
                "get" => {
                    let current: u64 = ctx.get(b"count")?.unwrap_or(0);
                    Ok(encode_to_vec(&(current,)))
                }
                "boom" => Err(ContractError::Reverted("boom".into())),
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    fn chain_with_counter() -> (Blockchain, KeyPair) {
        let mut chain = Blockchain::builder()
            .validators(3)
            .block_interval(SimDuration::from_secs(2))
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 10_000_000);
        (chain, alice)
    }

    #[test]
    fn transfer_moves_funds_and_charges_fees() {
        let (mut chain, alice) = chain_with_counter();
        let bob = Address::from_seed(b"bob");
        let tx = chain.build_transfer(&alice, bob, 1_000).unwrap();
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.balance(&bob), 1_000);
        let alice_addr = Address::from_public_key(&alice.public());
        assert!(
            chain.balance(&alice_addr) < 10_000_000 - 1_000,
            "fees charged"
        );
    }

    #[test]
    fn contract_call_executes_and_emits() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(7u64,)),
            200_000,
        );
        let id = chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let receipt = chain.receipt(&id).expect("included");
        assert!(receipt.status.is_ok());
        assert_eq!(receipt.events.len(), 1);
        assert!(receipt.gas_used > 21_000);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn revert_rolls_back_state_but_charges_gas() {
        let (mut chain, alice) = chain_with_counter();
        let tx1 = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx1).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let tx2 = chain.build_call(&alice, ContractId::new("counter"), "boom", vec![], 200_000);
        let id2 = chain.submit(tx2).unwrap();
        chain.advance_to(SimTime::from_secs(4));
        let receipt = chain.receipt(&id2).unwrap();
        assert!(matches!(receipt.status, TxStatus::Reverted(_)));
        assert!(receipt.gas_used > 0);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 1, "boom did not mutate state");
    }

    #[test]
    fn out_of_gas_reverts() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            22_000, // enough intrinsic, not enough for storage
        );
        let id = chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert_eq!(chain.receipt(&id).unwrap().status, TxStatus::OutOfGas);
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 0);
    }

    #[test]
    fn submit_rejects_bad_transactions() {
        let (mut chain, alice) = chain_with_counter();
        // Tampered signature.
        let mut tx = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        tx.tx.gas_limit += 1;
        assert_eq!(chain.submit(tx), Err(SubmitError::InvalidSignature));
        // Stale nonce.
        let t1 = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        chain.submit(t1.clone()).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        assert!(matches!(
            chain.submit(t1),
            Err(SubmitError::NonceTooLow { .. })
        ));
        // Unfunded sender.
        let poor = KeyPair::from_seed(b"poor");
        let tx = Transaction {
            from: Address::from_public_key(&poor.public()),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::from_seed(b"x"),
                amount: 1,
            },
            gas_limit: 50_000,
        }
        .sign(&poor);
        assert_eq!(chain.submit(tx), Err(SubmitError::CannotPayGas));
    }

    #[test]
    fn duplicate_nonce_rejected_in_mempool() {
        let (mut chain, alice) = chain_with_counter();
        let t1 = chain.build_call(&alice, ContractId::new("counter"), "get", vec![], 50_000);
        // Build a second tx with the same nonce by constructing manually.
        let t2 = Transaction {
            nonce: t1.tx.nonce,
            ..t1.tx.clone()
        }
        .sign(&alice);
        chain.submit(t1).unwrap();
        assert_eq!(chain.submit(t2), Err(SubmitError::DuplicateNonce));
    }

    #[test]
    fn nonce_sequencing_across_blocks() {
        let (mut chain, alice) = chain_with_counter();
        for _ in 0..5 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(1u64,)),
                200_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        let out = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 5, "all five sequential-nonce txs executed in one block");
    }

    #[test]
    fn blocks_produced_on_schedule() {
        let (mut chain, alice) = chain_with_counter();
        // No pending work → no blocks, but time advances.
        assert_eq!(chain.advance_to(SimTime::from_secs(10)), 0);
        assert_eq!(chain.current_time(), SimTime::from_secs(10));
        assert_eq!(chain.height(), 0);
        // Work arrives: it is included at the next slot boundary (t = 12 s).
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        assert_eq!(
            chain.advance_to(SimTime::from_secs(11)),
            0,
            "slot not due yet"
        );
        assert_eq!(chain.advance_to(SimTime::from_secs(12)), 1);
        assert_eq!(
            chain.block(1).unwrap().header.timestamp,
            SimTime::from_secs(12)
        );
    }

    #[test]
    fn long_idle_periods_are_cheap() {
        let (mut chain, _) = chain_with_counter();
        // A month of idle time must not seal a million empty blocks.
        chain.advance_to(SimTime::ZERO + SimDuration::from_days(31));
        assert_eq!(chain.height(), 0);
        assert_eq!(
            chain.current_time(),
            SimTime::ZERO + SimDuration::from_days(31)
        );
    }

    #[test]
    fn crashed_proposer_misses_slot() {
        let (mut chain, alice) = chain_with_counter();
        // Validators rotate 1,2,0,1,2,0... (slot k → k mod 3).
        chain.set_validator_down(1, true);
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        // Slot 1 (t=2s) belongs to the crashed v1 → missed; slot 2 (t=4s)
        // belongs to v2 → block.
        chain.advance_to(SimTime::from_secs(4));
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.slots_missed(), 1);
        assert_eq!(
            chain.block(1).unwrap().header.timestamp,
            SimTime::from_secs(4)
        );
        chain.set_validator_down(1, false);
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(6));
        assert_eq!(chain.height(), 2, "chain is live again");
    }

    #[test]
    fn chain_validates_and_detects_tampering() {
        let (mut chain, alice) = chain_with_counter();
        for i in 0..3 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * (i + 1)));
        }
        assert_eq!(chain.validate_chain(), Ok(()));
        // Tamper with an old block (height-addressed; no raw indexing).
        chain.block_mut(1).unwrap().header.timestamp = SimTime::from_secs(999);
        assert!(chain.validate_chain().is_err());
    }

    #[test]
    fn events_since_filters_by_height() {
        let (mut chain, alice) = chain_with_counter();
        for i in 1..=3u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * i));
        }
        assert_eq!(chain.events_since(0).count(), 3);
        assert_eq!(chain.events_since(2).count(), 1);
        assert_eq!(chain.events_since(3).count(), 0);
    }

    #[test]
    fn gas_ledger_aggregates_by_method() {
        let (mut chain, alice) = chain_with_counter();
        for i in 0..4u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        let agg = chain.gas_by_method();
        let (calls, total, mean) = agg[&("counter".to_string(), "incr".to_string())];
        assert_eq!(calls, 4);
        assert!(total > 0 && mean > 0 && mean <= total);
    }

    #[test]
    fn block_gas_ceiling_defers_transactions() {
        let mut chain = Blockchain::builder()
            .validators(1)
            .max_block_gas(150_000)
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 100_000_000);
        for i in 0..5u64 {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                60_000,
            );
            chain.submit(tx).unwrap();
        }
        chain.advance_to(SimTime::from_secs(2));
        // 150k ceiling / 60k limit → 2 per block.
        assert_eq!(chain.block(1).unwrap().transactions.len(), 2);
        assert_eq!(chain.pending_count(), 3);
        chain.advance_to(SimTime::from_secs(6));
        assert_eq!(chain.pending_count(), 0, "drained over later blocks");
    }

    /// Produces `n` one-tx blocks at 2 s cadence on a chain with the given
    /// storage config, returning the chain.
    fn chain_with_blocks(storage: StorageConfig, n: u64) -> Blockchain {
        let mut chain = Blockchain::builder()
            .validators(3)
            .block_interval(SimDuration::from_secs(2))
            .storage(storage)
            .build();
        chain.deploy(ContractId::new("counter"), Box::new(Counter));
        let alice = chain.create_funded_account(b"alice", 1_000_000_000);
        for i in 1..=n {
            let tx = chain.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(i,)),
                200_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * i));
        }
        chain
    }

    #[test]
    fn checkpoints_seal_on_interval_and_prune_behind() {
        let chain = chain_with_blocks(StorageConfig::enabled(4, 2), 10);
        assert_eq!(chain.height(), 10);
        // Checkpoints seal at heights 4 and 8; pruning lags one advance by
        // design, so the last applied horizon (at the advance that sealed
        // block 10, tip 9 then) is min(8 - 1, 9 - 2) = 7.
        let heights: Vec<u64> = chain.checkpoints().iter().map(|cp| cp.height).collect();
        assert_eq!(heights, vec![4, 8]);
        assert_eq!(chain.prune_horizon(), 7);
        assert_eq!(chain.retained_blocks(), 3);
        // Height addressing survives pruning.
        assert!(chain.block(7).is_none());
        assert_eq!(chain.block(8).unwrap().header.height, 8);
        assert_eq!(chain.block(10).unwrap().header.height, 10);
        // The resident suffix still validates across the pruned boundary.
        assert_eq!(chain.validate_chain(), Ok(()));
        chain.verify_checkpoints().expect("checkpoints consistent");
        // The event log starts above the horizon, and stale cursors get a
        // typed error instead of silently missing pruned events.
        assert!(chain.events_since(0).count() < 10);
        assert!(chain
            .events_since(chain.prune_horizon())
            .all(|(h, _)| *h > 7));
        let err = chain.try_events_slice_since(3).unwrap_err();
        assert_eq!(
            err,
            PrunedRange {
                requested: 3,
                horizon: 7
            }
        );
        assert!(chain.try_events_slice_since(7).is_ok());
        // Receipts for resident blocks survive pruning.
        assert!(chain
            .block(8)
            .unwrap()
            .transactions
            .iter()
            .all(|tx| chain.receipt(&tx.id()).is_some()));
    }

    #[test]
    fn disabled_storage_retains_everything() {
        let chain = chain_with_blocks(StorageConfig::disabled(), 10);
        assert_eq!(chain.prune_horizon(), 0);
        assert_eq!(chain.retained_blocks(), 10);
        assert!(chain.checkpoints().is_empty());
        assert_eq!(chain.events_since(0).count(), 10);
    }

    #[test]
    fn pruned_blocks_stream_to_the_archive() {
        let path = std::env::temp_dir().join(format!(
            "duc-chain-archive-{}-{:p}.bin",
            std::process::id(),
            &SEAL_MARKER
        ));
        std::fs::remove_file(&path).ok();
        let chain = chain_with_blocks(StorageConfig::enabled(4, 2).with_archive(&path), 10);
        assert_eq!(chain.archived_blocks(), 7);
        let frames = duc_storage::FileArchive::read_frames(&path).expect("read archive");
        assert_eq!(frames.len(), 7);
        // Frames decode back to the sealed headers, in height order.
        use duc_codec::Decode as _;
        for (i, frame) in frames.iter().enumerate() {
            let mut r = duc_codec::Reader::new(frame);
            let header = crate::block::BlockHeader::decode(&mut r).expect("header");
            assert_eq!(header.height, i as u64 + 1);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Address anchor for unique temp paths (one per test binary load).
    static SEAL_MARKER: u8 = 0;

    #[test]
    fn view_calls_do_not_mutate() {
        let (mut chain, alice) = chain_with_counter();
        let tx = chain.build_call(
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&(1u64,)),
            200_000,
        );
        chain.submit(tx).unwrap();
        chain.advance_to(SimTime::from_secs(2));
        let (s0, _) = chain.state_size();
        let _ = chain
            .call_view(&ContractId::new("counter"), "get", &[])
            .unwrap();
        assert_eq!(chain.state_size().0, s0);
        assert!(chain
            .call_view(&ContractId::new("missing"), "get", &[])
            .is_err());
    }
}
