//! The pluggable ledger abstraction.
//!
//! The rest of the stack — oracles, the DE App client, the process driver —
//! talks to the chain exclusively through the [`Ledger`] trait, which
//! captures exactly the surface those layers use: transaction submission
//! and receipts, the event log, view calls, block production clocked by the
//! simulation, balances, and the validator fault hooks of the robustness
//! experiments. Two backends ship in-tree:
//!
//! * [`SingleChain`] — the existing [`Blockchain`], unchanged (the trait
//!   impl delegates to the inherent methods), so every legacy run is
//!   byte-identical to the pre-trait code.
//! * [`ShardedLedger`] — `N` independent PoA chains with deterministic
//!   owner/contract routing and a merged, height-interleaved event view.
//!   Requests from disjoint owners land on disjoint shards and no longer
//!   serialize through one mempool (experiment E13).
//!
//! ## Routing
//!
//! A [`RouterFn`] extracts a [`RouteKey`] from each contract call (the
//! contracts crate provides one that understands the DE App ABI, see
//! `duc_contracts::routing`). String keys are resolved against an *alias
//! table* — longest-prefix matches map resource IRIs to the owner WebID
//! that anchors them (`register_route_alias`, fed by `World::add_owner`) —
//! and then hashed onto a shard with a deterministic FNV-1a. Everything an
//! owner anchors (pod record, resources, copies, monitoring rounds) lands
//! on one shard; subscriptions and certificates live on the shard of the
//! consumer's WebID. Plain transfers route by sender address.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use duc_crypto::{Digest, KeyPair};
use duc_intern::{Interner, SymMap};
use duc_sim::{SimDuration, SimTime};
use duc_storage::{PrunedRange, StorageConfig};

use crate::block::BlockValidationError;
use crate::chain::{Blockchain, SubmitError};
use crate::contract::{Contract, ContractError, Event};
use crate::exec::{AccessFn, ExecMode};
use crate::state::PagingStats;
use crate::tx::{Receipt, SignedTransaction, TxKind};
use crate::types::{Address, Amount, ContractId, TxId};

/// Where a transaction or view call should land on a multi-chain backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteKey {
    /// Route by a logical key (owner WebID, resource IRI, consumer WebID),
    /// resolved through the alias table and hashed onto a shard.
    Key(String),
    /// Route to a fixed shard (deployment-scoped calls like `init`).
    Shard(usize),
}

/// Extracts the routing key of a contract call from its ABI-encoded
/// arguments. Backends that do not shard never invoke it.
pub type RouterFn = Box<dyn Fn(&ContractId, &str, &[u8]) -> RouteKey>;

/// The chain surface the rest of the architecture consumes.
///
/// Implementations must be deterministic: identical call sequences yield
/// identical states, receipts and event logs (the chaos harness replays
/// runs byte-for-byte on top of this guarantee).
pub trait Ledger {
    // ------------------------------------------------------------- shards

    /// Number of independent chains behind this ledger (1 for
    /// [`SingleChain`]).
    fn shard_count(&self) -> usize;

    /// Registers a routing alias: route keys starting with `prefix`
    /// (resource IRIs under a pod root) resolve to `key`'s shard (the
    /// owner's WebID). No-op on single-chain backends.
    fn register_route_alias(&mut self, prefix: &str, key: &str);

    // ----------------------------------------------------------- accounts

    /// Creates a key pair from `seed` and funds its account on every shard.
    fn create_funded_account(&mut self, seed: &[u8], amount: Amount) -> KeyPair;

    /// Total balance of an address across every shard.
    fn balance(&self, addr: &Address) -> Amount;

    // ---------------------------------------------------------- contracts

    /// Deploys one contract instance per shard (the factory runs once per
    /// shard).
    fn deploy_with(&mut self, id: ContractId, factory: &dyn Fn() -> Box<dyn Contract>);

    /// Whether the contract is deployed.
    fn has_contract(&self, id: &ContractId) -> bool;

    /// Installs an access-set derivation on every shard (the factory runs
    /// once per shard), enabling conflict-scheduled parallel execution for
    /// calls the derivation can declare. Default: no-op — without one,
    /// [`ExecMode::Parallel`] still runs but every call serializes.
    fn install_access_fn(&mut self, _factory: &dyn Fn() -> AccessFn) {}

    /// Switches every shard's intra-block execution mode. Default: no-op
    /// for backends without an executor choice.
    fn set_exec_mode(&mut self, _mode: ExecMode) {}

    // -------------------------------------------------------- transactions

    /// Builds a signed contract call against the routed shard's current
    /// state (nonce from that shard).
    fn build_call(
        &self,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction;

    /// Builds a signed contract call pinned to `shard`.
    fn build_call_on(
        &self,
        shard: usize,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction;

    /// Submits a signed transaction to the routed shard's mempool.
    ///
    /// # Errors
    /// See [`SubmitError`].
    fn submit(&mut self, tx: SignedTransaction) -> Result<TxId, SubmitError>;

    /// Submits a signed transaction to `shard`'s mempool.
    ///
    /// # Errors
    /// See [`SubmitError`].
    fn submit_on(&mut self, shard: usize, tx: SignedTransaction) -> Result<TxId, SubmitError>;

    /// The receipt for a transaction, once included (searched across
    /// shards).
    fn receipt(&self, id: &TxId) -> Option<Receipt>;

    /// Pending transactions across every mempool.
    fn pending_count(&self) -> usize;

    // ------------------------------------------------------------ blocks

    /// Produces every block due at or before `now` on every shard; returns
    /// the number of blocks produced.
    fn advance_to(&mut self, now: SimTime) -> usize;

    /// The latest instant the ledger has observed.
    fn current_time(&self) -> SimTime;

    /// Ledger height: total blocks across every shard (monotone; event
    /// cursors are measured against this).
    fn height(&self) -> u64;

    /// The next instant a block could be sealed after `now` (the
    /// `next_event_at`-style wake-up non-blocking inclusion waits sleep
    /// until).
    fn next_slot_at(&self, now: SimTime) -> SimTime {
        let step = self.block_interval().as_nanos().max(1);
        SimTime::from_nanos((now.as_nanos() / step + 1) * step)
    }

    /// Events from ledger blocks strictly above `height`, height-interleaved
    /// across shards, paired with their (global) block number. Borrowed and
    /// `Rc`-shared — oracle polls hit this every round, and a consumer that
    /// keeps an event clones the pointer, not the payload.
    fn events_since(&self, height: u64) -> &[(u64, Rc<Event>)];

    /// The ledger's prune horizon in the same units as
    /// [`Ledger::events_since`] cursors (global block numbers): every event
    /// at or below it has been evicted. `0` when nothing is pruned — the
    /// default for backends without storage management.
    fn prune_horizon(&self) -> u64 {
        0
    }

    /// Like [`Ledger::events_since`], but a cursor strictly below the
    /// prune horizon is a typed [`PrunedRange`] error instead of a
    /// silently-incomplete slice: events in `(height, horizon]` are gone,
    /// so the caller must resync (the error carries the horizon to resync
    /// to) rather than miss them.
    ///
    /// # Errors
    /// [`PrunedRange`] when `height < prune_horizon`.
    fn try_events_since(&self, height: u64) -> Result<&[(u64, Rc<Event>)], PrunedRange> {
        let horizon = self.prune_horizon();
        if height < horizon {
            return Err(PrunedRange {
                requested: height,
                horizon,
            });
        }
        Ok(self.events_since(height))
    }

    /// Blocks currently resident in memory across every shard.
    fn retained_blocks(&self) -> usize {
        self.height() as usize
    }

    /// Blocks streamed to append-only archives across every shard.
    fn archived_blocks(&self) -> u64 {
        0
    }

    /// Verifies sealed checkpoints against resident block state roots on
    /// every shard (see `Blockchain::verify_checkpoints`). Trivially `Ok`
    /// for backends without storage management.
    ///
    /// # Errors
    /// A description of the first inconsistent checkpoint.
    fn verify_checkpoints(&self) -> Result<(), String> {
        Ok(())
    }

    /// Executes a read-only contract call on the routed shard.
    ///
    /// # Errors
    /// Propagates the contract's error.
    fn call_view(
        &self,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError>;

    /// Executes a read-only contract call pinned to `shard`.
    ///
    /// # Errors
    /// Propagates the contract's error.
    fn call_view_on(
        &self,
        shard: usize,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError>;

    /// Validates every shard's chain structure.
    ///
    /// # Errors
    /// The first [`BlockValidationError`] found.
    fn validate_chains(&self) -> Result<(), BlockValidationError>;

    // ------------------------------------------------------ fault control

    /// Marks validator `idx` crashed (on every shard — committees are
    /// mirrored) or recovered.
    fn set_validator_down(&mut self, idx: usize, down: bool);

    /// Validators per shard.
    fn validator_count(&self) -> usize;

    /// Fee-collection addresses of every validator (identical across
    /// shards; balances sum across shards, so gas-conservation audits hold
    /// shard-count-independently).
    fn validator_addresses(&self) -> Vec<Address>;

    /// Slots missed because their proposer was down, across every shard.
    fn slots_missed(&self) -> u64;

    // ----------------------------------------------------------- metrics

    /// The block interval (identical across shards).
    fn block_interval(&self) -> SimDuration;

    /// The gas price (identical across shards).
    fn gas_price(&self) -> Amount;

    /// Total gas consumed across every shard's gas ledger.
    fn gas_used_total(&self) -> u64;

    /// The gas ledger aggregated by `(contract, method)` across shards:
    /// `(calls, total gas, mean gas)`.
    fn gas_by_method(&self) -> BTreeMap<(String, String), (u64, u64, u64)>;

    /// Storage growth `(slots, bytes)` summed across shards.
    fn state_size(&self) -> (usize, usize);

    /// Paged world-state residency counters summed across shards
    /// (observability only; never part of replay fingerprints).
    fn paging_stats(&self) -> PagingStats {
        PagingStats::default()
    }

    /// Verifies paged-state integrity on every shard: each evicted page
    /// reads back under its digest-verified handle and the decoded whole
    /// reproduces the commitment accumulator (chaos invariant).
    ///
    /// # Errors
    /// A description of the first violation found.
    fn verify_pages(&self) -> Result<(), String> {
        Ok(())
    }

    /// The world-state commitment, folded across shards in shard order.
    /// Byte-identical across cache sizes by construction: eviction moves
    /// bytes, never rows, so the accumulator is untouched by paging.
    fn state_commitment(&self) -> Digest;
}

/// The legacy single-chain backend (the concrete [`Blockchain`] behind the
/// trait; every call delegates to the inherent method, so behaviour — and
/// fingerprints — are byte-identical to pre-trait code).
pub type SingleChain = Blockchain;

impl Ledger for Blockchain {
    fn shard_count(&self) -> usize {
        1
    }

    fn register_route_alias(&mut self, _prefix: &str, _key: &str) {}

    fn create_funded_account(&mut self, seed: &[u8], amount: Amount) -> KeyPair {
        Blockchain::create_funded_account(self, seed, amount)
    }

    fn balance(&self, addr: &Address) -> Amount {
        Blockchain::balance(self, addr)
    }

    fn deploy_with(&mut self, id: ContractId, factory: &dyn Fn() -> Box<dyn Contract>) {
        self.deploy(id, factory());
    }

    fn has_contract(&self, id: &ContractId) -> bool {
        Blockchain::has_contract(self, id)
    }

    fn install_access_fn(&mut self, factory: &dyn Fn() -> AccessFn) {
        self.set_access_fn(factory());
    }

    fn set_exec_mode(&mut self, mode: ExecMode) {
        Blockchain::set_exec_mode(self, mode);
    }

    fn build_call(
        &self,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        Blockchain::build_call(self, key, contract, method, args, gas_limit)
    }

    fn build_call_on(
        &self,
        shard: usize,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        assert_eq!(shard, 0, "single chain has exactly one shard");
        Blockchain::build_call(self, key, contract, method, args, gas_limit)
    }

    fn submit(&mut self, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        Blockchain::submit(self, tx)
    }

    fn submit_on(&mut self, shard: usize, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        assert_eq!(shard, 0, "single chain has exactly one shard");
        Blockchain::submit(self, tx)
    }

    fn receipt(&self, id: &TxId) -> Option<Receipt> {
        Blockchain::receipt(self, id).cloned()
    }

    fn pending_count(&self) -> usize {
        Blockchain::pending_count(self)
    }

    fn advance_to(&mut self, now: SimTime) -> usize {
        Blockchain::advance_to(self, now)
    }

    fn current_time(&self) -> SimTime {
        Blockchain::current_time(self)
    }

    fn height(&self) -> u64 {
        Blockchain::height(self)
    }

    fn events_since(&self, height: u64) -> &[(u64, Rc<Event>)] {
        self.events_slice_since(height)
    }

    fn prune_horizon(&self) -> u64 {
        Blockchain::prune_horizon(self)
    }

    fn retained_blocks(&self) -> usize {
        Blockchain::retained_blocks(self)
    }

    fn archived_blocks(&self) -> u64 {
        Blockchain::archived_blocks(self)
    }

    fn verify_checkpoints(&self) -> Result<(), String> {
        Blockchain::verify_checkpoints(self)
    }

    fn call_view(
        &self,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        Blockchain::call_view(self, contract, method, args)
    }

    fn call_view_on(
        &self,
        shard: usize,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        assert_eq!(shard, 0, "single chain has exactly one shard");
        Blockchain::call_view(self, contract, method, args)
    }

    fn validate_chains(&self) -> Result<(), BlockValidationError> {
        self.validate_chain()
    }

    fn set_validator_down(&mut self, idx: usize, down: bool) {
        Blockchain::set_validator_down(self, idx, down);
    }

    fn validator_count(&self) -> usize {
        Blockchain::validator_count(self)
    }

    fn validator_addresses(&self) -> Vec<Address> {
        Blockchain::validator_addresses(self)
    }

    fn slots_missed(&self) -> u64 {
        Blockchain::slots_missed(self)
    }

    fn block_interval(&self) -> SimDuration {
        Blockchain::block_interval(self)
    }

    fn gas_price(&self) -> Amount {
        Blockchain::gas_price(self)
    }

    fn gas_used_total(&self) -> u64 {
        self.gas_ledger().iter().map(|r| r.gas_used).sum()
    }

    fn gas_by_method(&self) -> BTreeMap<(String, String), (u64, u64, u64)> {
        Blockchain::gas_by_method(self)
    }

    fn state_size(&self) -> (usize, usize) {
        Blockchain::state_size(self)
    }

    fn paging_stats(&self) -> PagingStats {
        Blockchain::paging_stats(self)
    }

    fn verify_pages(&self) -> Result<(), String> {
        Blockchain::verify_pages(self)
    }

    fn state_commitment(&self) -> Digest {
        Blockchain::state_commitment(self)
    }
}

/// Deterministic FNV-1a over `bytes` (the shard-placement hash; no seed, so
/// placement is a pure function of the route key).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `N` independent PoA chains behind one [`Ledger`] face: deterministic
/// owner/contract routing plus a merged, height-interleaved event view.
pub struct ShardedLedger {
    shards: Vec<Blockchain>,
    router: RouterFn,
    /// `(prefix, key)` aliases, longest prefix first.
    aliases: Vec<(String, String)>,
    /// The merged event log: `(global block number, event)`, global block
    /// numbers nondecreasing (see [`ShardedLedger::advance_to`]).
    merged_log: Vec<(u64, Rc<Event>)>,
    /// Blocks sealed across every shard (assigns global block numbers).
    global_blocks: u64,
    /// Provenance of merged blocks still tracked for pruning: entry `i`
    /// describes global block `merged_base + i + 1` as
    /// `(shard, shard height)`. Empty when storage management is off.
    block_shards: VecDeque<(u32, u64)>,
    /// Global block numbers `<= merged_base` are pruned from the merged
    /// log (the merged view's prune horizon).
    merged_base: u64,
    /// Route-key memo: interned key → shard. Every submit walks the alias
    /// table and hashes otherwise; with 10⁵ owners that scan dominates, so
    /// resolved placements are memoized per distinct key. Invalidated when
    /// the alias table changes (aliases alter resolution).
    route_cache: RefCell<(Interner, SymMap<u32>)>,
}

impl std::fmt::Debug for ShardedLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLedger")
            .field("shards", &self.shards.len())
            .field("height", &self.global_blocks)
            .field("aliases", &self.aliases.len())
            .finish()
    }
}

impl ShardedLedger {
    /// Builds `shards` chains, each with `validators` PoA validators and
    /// the given block interval, and a default router that pins every call
    /// to shard 0 (install a real router with
    /// [`ShardedLedger::with_router`]).
    pub fn new(shards: usize, validators: usize, block_interval: SimDuration) -> ShardedLedger {
        assert!(shards > 0, "at least one shard required");
        let shards = (0..shards)
            .map(|_| {
                Blockchain::builder()
                    .validators(validators)
                    .block_interval(block_interval)
                    .build()
            })
            .collect();
        ShardedLedger {
            shards,
            router: Box::new(|_, _, _| RouteKey::Shard(0)),
            aliases: Vec::new(),
            merged_log: Vec::new(),
            global_blocks: 0,
            block_shards: VecDeque::new(),
            merged_base: 0,
            route_cache: RefCell::new((Interner::new(), SymMap::new())),
        }
    }

    /// Installs the routing function (see `duc_contracts::routing` for the
    /// DE App router).
    #[must_use]
    pub fn with_router(mut self, router: RouterFn) -> ShardedLedger {
        self.router = router;
        self
    }

    /// Rebuilds every shard with the given retention configuration. When
    /// an archive path is set, shard `i` archives to `<path>.shard<i>`
    /// (one append-only stream per shard).
    ///
    /// Call straight after [`ShardedLedger::new`], before deploys or
    /// funding: the shards are recreated from genesis.
    ///
    /// # Panics
    /// If any shard has already sealed a block.
    #[must_use]
    pub fn with_storage(mut self, storage: StorageConfig) -> ShardedLedger {
        assert!(
            self.global_blocks == 0 && self.shards.iter().all(|s| s.height() == 0),
            "with_storage must run before any block is sealed"
        );
        let validators = self.shards[0].validator_count();
        let interval = self.shards[0].block_interval();
        let exec_mode = self.shards[0].exec_mode();
        let exec_threads = self.shards[0].exec_threads();
        self.shards = (0..self.shards.len())
            .map(|i| {
                let mut cfg = storage.clone();
                if let Some(path) = &storage.archive_path {
                    cfg.archive_path = Some(std::path::PathBuf::from(format!(
                        "{}.shard{i}",
                        path.display()
                    )));
                }
                Blockchain::builder()
                    .validators(validators)
                    .block_interval(interval)
                    .storage(cfg)
                    .exec_mode(exec_mode)
                    .exec_threads(exec_threads)
                    .build()
            })
            .collect();
        self
    }

    /// Sets every shard's intra-block execution mode (builder form; call
    /// any time — the mode only matters at block production).
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> ShardedLedger {
        for shard in &mut self.shards {
            shard.set_exec_mode(mode);
        }
        self
    }

    /// Resolves a route key to a shard index: longest alias prefix first
    /// (resource IRI → owner WebID), then FNV-1a over the resolved key.
    /// Placements are memoized per distinct key (interned), so repeat
    /// submissions skip the alias scan and the hash.
    pub fn shard_of_key(&self, key: &str) -> usize {
        let mut cache = self.route_cache.borrow_mut();
        let (ids, memo) = &mut *cache;
        let sym = ids.intern(key);
        if let Some(&shard) = memo.get(sym) {
            return shard as usize;
        }
        let resolved = self
            .aliases
            .iter()
            .find(|(prefix, _)| key.starts_with(prefix.as_str()))
            .map_or(key, |(_, target)| target.as_str());
        let shard = (fnv1a(resolved.as_bytes()) % self.shards.len() as u64) as usize;
        memo.insert(sym, shard as u32);
        shard
    }

    /// The shard a contract call routes to.
    pub fn shard_of_call(&self, contract: &ContractId, method: &str, args: &[u8]) -> usize {
        match (self.router)(contract, method, args) {
            RouteKey::Key(key) => self.shard_of_key(&key),
            RouteKey::Shard(s) => s % self.shards.len(),
        }
    }

    fn shard_of_tx(&self, tx: &SignedTransaction) -> usize {
        match &tx.tx.kind {
            TxKind::Call {
                contract,
                method,
                args,
            } => self.shard_of_call(contract, method, args),
            TxKind::Transfer { .. } => {
                (fnv1a(tx.tx.from.0.as_bytes()) % self.shards.len() as u64) as usize
            }
        }
    }

    /// Evicts merged-log events whose source shard block has been pruned.
    /// Walks the provenance queue from the oldest merged block and stops
    /// at the first still-resident one, so the merged horizon only covers
    /// a contiguous pruned prefix — `merged_base` stays a valid cursor
    /// floor in global block numbers.
    fn prune_merged_log(&mut self) {
        let mut horizon = self.merged_base;
        while let Some(&(shard, h)) = self.block_shards.front() {
            if h > self.shards[shard as usize].prune_horizon() {
                break;
            }
            self.block_shards.pop_front();
            horizon += 1;
        }
        if horizon > self.merged_base {
            self.merged_base = horizon;
            let cut = self.merged_log.partition_point(|(g, _)| *g <= horizon);
            self.merged_log.drain(..cut);
        }
    }

    /// Per-shard heights, in shard order (E13 reports these).
    pub fn shard_heights(&self) -> Vec<u64> {
        self.shards.iter().map(Blockchain::height).collect()
    }

    /// Direct access to one shard (tests and diagnostics).
    pub fn shard(&self, idx: usize) -> &Blockchain {
        &self.shards[idx]
    }
}

impl Ledger for ShardedLedger {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn register_route_alias(&mut self, prefix: &str, key: &str) {
        self.aliases.push((prefix.to_string(), key.to_string()));
        // Longest prefix first, ties broken lexicographically: resolution
        // must not depend on registration order.
        self.aliases
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        // A new alias can change where an already-seen key resolves.
        self.route_cache.borrow_mut().1.clear();
    }

    fn create_funded_account(&mut self, seed: &[u8], amount: Amount) -> KeyPair {
        // The key is a pure function of the seed, so every shard derives
        // the same pair; return any of them.
        let mut key = None;
        for shard in &mut self.shards {
            key = Some(shard.create_funded_account(seed, amount));
        }
        key.expect("at least one shard")
    }

    fn balance(&self, addr: &Address) -> Amount {
        self.shards.iter().map(|s| s.balance(addr)).sum()
    }

    fn deploy_with(&mut self, id: ContractId, factory: &dyn Fn() -> Box<dyn Contract>) {
        for shard in &mut self.shards {
            shard.deploy(id.clone(), factory());
        }
    }

    fn has_contract(&self, id: &ContractId) -> bool {
        self.shards[0].has_contract(id)
    }

    fn install_access_fn(&mut self, factory: &dyn Fn() -> AccessFn) {
        for shard in &mut self.shards {
            shard.set_access_fn(factory());
        }
    }

    fn set_exec_mode(&mut self, mode: ExecMode) {
        for shard in &mut self.shards {
            shard.set_exec_mode(mode);
        }
    }

    fn build_call(
        &self,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        let shard = self.shard_of_call(&contract, method, &args);
        self.build_call_on(shard, key, contract, method, args, gas_limit)
    }

    fn build_call_on(
        &self,
        shard: usize,
        key: &KeyPair,
        contract: ContractId,
        method: &str,
        args: Vec<u8>,
        gas_limit: u64,
    ) -> SignedTransaction {
        self.shards[shard].build_call(key, contract, method, args, gas_limit)
    }

    fn submit(&mut self, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        let shard = self.shard_of_tx(&tx);
        self.submit_on(shard, tx)
    }

    fn submit_on(&mut self, shard: usize, tx: SignedTransaction) -> Result<TxId, SubmitError> {
        self.shards[shard].submit(tx)
    }

    fn receipt(&self, id: &TxId) -> Option<Receipt> {
        self.shards.iter().find_map(|s| s.receipt(id).cloned())
    }

    fn pending_count(&self) -> usize {
        self.shards.iter().map(Blockchain::pending_count).sum()
    }

    fn advance_to(&mut self, now: SimTime) -> usize {
        // Advance every shard, then interleave the freshly sealed blocks by
        // (timestamp, shard index) into the merged log. Per-shard slot
        // accounting never revisits an instant, so blocks sealed by later
        // calls always carry later timestamps — global block numbers are
        // monotone and a cursor-based reader can never miss an event.
        let mut fresh: Vec<(SimTime, usize, u64)> = Vec::new();
        let mut produced = 0;
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let before = shard.height();
            produced += shard.advance_to(now);
            for h in before + 1..=shard.height() {
                let ts = shard.block(h).expect("sealed above").header.timestamp;
                fresh.push((ts, idx, h));
            }
        }
        fresh.sort_unstable_by_key(|(ts, idx, _)| (*ts, *idx));
        let storage_on = self.shards[0].storage_config().is_enabled();
        for (_, idx, h) in fresh {
            self.global_blocks += 1;
            let global = self.global_blocks;
            if storage_on {
                self.block_shards.push_back((idx as u32, h));
            }
            let shard = &self.shards[idx];
            // The tail is height-sorted, so block h's events are its
            // contiguous prefix. Shard-level pruning is deferred to the
            // start of the *next* `advance_to`, so every event sealed in
            // this call — even in a multi-block burst — is still resident
            // when this merge reads it.
            self.merged_log.extend(
                shard
                    .events_since(h - 1)
                    .take_while(|(hh, _)| *hh == h)
                    .map(|(_, ev)| (global, Rc::clone(ev))),
            );
        }
        if storage_on {
            self.prune_merged_log();
        }
        produced
    }

    fn current_time(&self) -> SimTime {
        self.shards
            .iter()
            .map(Blockchain::current_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn height(&self) -> u64 {
        self.global_blocks
    }

    fn events_since(&self, height: u64) -> &[(u64, Rc<Event>)] {
        let start = self.merged_log.partition_point(|(h, _)| *h <= height);
        &self.merged_log[start..]
    }

    fn prune_horizon(&self) -> u64 {
        self.merged_base
    }

    fn retained_blocks(&self) -> usize {
        self.shards.iter().map(Blockchain::retained_blocks).sum()
    }

    fn archived_blocks(&self) -> u64 {
        self.shards.iter().map(Blockchain::archived_blocks).sum()
    }

    fn verify_checkpoints(&self) -> Result<(), String> {
        for (idx, shard) in self.shards.iter().enumerate() {
            shard
                .verify_checkpoints()
                .map_err(|e| format!("shard {idx}: {e}"))?;
        }
        Ok(())
    }

    fn call_view(
        &self,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let shard = self.shard_of_call(contract, method, args);
        self.call_view_on(shard, contract, method, args)
    }

    fn call_view_on(
        &self,
        shard: usize,
        contract: &ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        self.shards[shard].call_view(contract, method, args)
    }

    fn validate_chains(&self) -> Result<(), BlockValidationError> {
        for shard in &self.shards {
            shard.validate_chain()?;
        }
        Ok(())
    }

    fn set_validator_down(&mut self, idx: usize, down: bool) {
        for shard in &mut self.shards {
            shard.set_validator_down(idx, down);
        }
    }

    fn validator_count(&self) -> usize {
        self.shards[0].validator_count()
    }

    fn validator_addresses(&self) -> Vec<Address> {
        self.shards[0].validator_addresses()
    }

    fn slots_missed(&self) -> u64 {
        self.shards.iter().map(Blockchain::slots_missed).sum()
    }

    fn block_interval(&self) -> SimDuration {
        self.shards[0].block_interval()
    }

    fn gas_price(&self) -> Amount {
        self.shards[0].gas_price()
    }

    fn gas_used_total(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.gas_ledger().iter())
            .map(|r| r.gas_used)
            .sum()
    }

    fn gas_by_method(&self) -> BTreeMap<(String, String), (u64, u64, u64)> {
        let mut out: BTreeMap<(String, String), (u64, u64, u64)> = BTreeMap::new();
        for shard in &self.shards {
            for (key, (calls, total, _)) in shard.gas_by_method() {
                let entry = out.entry(key).or_insert((0, 0, 0));
                entry.0 += calls;
                entry.1 += total;
            }
        }
        for v in out.values_mut() {
            v.2 = v.1.checked_div(v.0).unwrap_or(0);
        }
        out
    }

    fn state_size(&self) -> (usize, usize) {
        self.shards
            .iter()
            .map(Blockchain::state_size)
            .fold((0, 0), |(s, b), (ds, db)| (s + ds, b + db))
    }

    fn paging_stats(&self) -> PagingStats {
        let mut out = PagingStats::default();
        for shard in &self.shards {
            out.merge(&shard.paging_stats());
        }
        out
    }

    fn verify_pages(&self) -> Result<(), String> {
        for (idx, shard) in self.shards.iter().enumerate() {
            shard
                .verify_pages()
                .map_err(|e| format!("shard {idx}: {e}"))?;
        }
        Ok(())
    }

    fn state_commitment(&self) -> Digest {
        let commitments: Vec<[u8; 32]> = self
            .shards
            .iter()
            .map(|s| *s.state_commitment().as_bytes())
            .collect();
        let mut parts: Vec<&[u8]> = vec![b"duc/sharded-state"];
        parts.extend(commitments.iter().map(|c| c.as_slice()));
        duc_crypto::hash_parts(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::CallCtx;
    use duc_codec::{decode_from_slice, encode_to_vec};

    struct Counter;

    impl Contract for Counter {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "incr" => {
                    let (key, by): (String, u64) = decode_from_slice(args)?;
                    let storage_key = format!("count/{key}").into_bytes();
                    let current: u64 = ctx.get(&storage_key)?.unwrap_or(0);
                    ctx.set(storage_key, &(current + by))?;
                    ctx.emit("Incr", encode_to_vec(&(key, current + by)))?;
                    Ok(Vec::new())
                }
                "get" => {
                    let (key,): (String,) = decode_from_slice(args)?;
                    let current: u64 = ctx.get(format!("count/{key}").as_bytes())?.unwrap_or(0);
                    Ok(encode_to_vec(&(current,)))
                }
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    /// Routes `incr`/`get` by their first string argument.
    fn key_router() -> RouterFn {
        Box::new(|_, method, args| match method {
            "incr" => {
                let (key, _): (String, u64) = decode_from_slice(args).expect("incr args");
                RouteKey::Key(key)
            }
            "get" => {
                let (key,): (String,) = decode_from_slice(args).expect("get args");
                RouteKey::Key(key)
            }
            _ => RouteKey::Shard(0),
        })
    }

    fn sharded(n: usize) -> (ShardedLedger, KeyPair) {
        let mut ledger =
            ShardedLedger::new(n, 2, SimDuration::from_secs(2)).with_router(key_router());
        ledger.deploy_with(ContractId::new("counter"), &|| Box::new(Counter));
        let key = ledger.create_funded_account(b"alice", 1_000_000_000);
        (ledger, key)
    }

    #[test]
    fn routing_is_deterministic_and_alias_aware() {
        let (mut ledger, _) = sharded(4);
        let direct = ledger.shard_of_key("https://owner.id/me");
        ledger.register_route_alias("https://owner.pod/", "https://owner.id/me");
        assert_eq!(
            ledger.shard_of_key("https://owner.pod/data/set.bin"),
            direct,
            "resource IRIs resolve to their owner's shard"
        );
        assert_eq!(
            ledger.shard_of_key("https://owner.pod/other"),
            ledger.shard_of_key("https://owner.pod/else"),
            "everything under one pod root shares a shard"
        );
    }

    #[test]
    fn disjoint_keys_spread_and_state_stays_isolated() {
        let (mut ledger, alice) = sharded(4);
        let keys: Vec<String> = (0..16).map(|i| format!("key-{i}")).collect();
        for k in &keys {
            let tx = ledger.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(k.clone(), 1u64)),
                200_000,
            );
            ledger.submit(tx).expect("routed submit");
        }
        ledger.advance_to(SimTime::from_secs(2));
        let busy = ledger.shard_heights().iter().filter(|h| **h > 0).count();
        assert!(
            busy >= 2,
            "16 disjoint keys hit at least two shards: {:?}",
            ledger.shard_heights()
        );
        for k in &keys {
            let out = ledger
                .call_view(
                    &ContractId::new("counter"),
                    "get",
                    &encode_to_vec(&(k.clone(),)),
                )
                .expect("routed view");
            let (v,): (u64,) = decode_from_slice(&out).unwrap();
            assert_eq!(v, 1, "{k} readable on its own shard");
        }
        assert_eq!(ledger.height(), ledger.shard_heights().iter().sum::<u64>());
        ledger.validate_chains().expect("all shards validate");
    }

    #[test]
    fn merged_event_view_is_height_interleaved_and_cursor_safe() {
        let (mut ledger, alice) = sharded(3);
        for round in 0..3u64 {
            for i in 0..6 {
                let tx = ledger.build_call(
                    &alice,
                    ContractId::new("counter"),
                    "incr",
                    encode_to_vec(&(format!("key-{i}"), 1u64)),
                    200_000,
                );
                ledger.submit(tx).expect("submit");
            }
            ledger.advance_to(SimTime::from_secs(2 * (round + 1)));
        }
        let all = ledger.events_since(0);
        assert_eq!(all.len(), 18, "every event visible through the merged view");
        // Global block numbers are nondecreasing and bounded by the height.
        let mut prev = 0;
        for (h, _) in all {
            assert!(*h >= prev, "merged view interleaves by height");
            assert!(*h <= ledger.height());
            prev = *h;
        }
        // Cursor reads partition cleanly: advancing past a block number
        // never re-serves or skips events.
        let cursor = all[7].0;
        let tail = ledger.events_since(cursor);
        assert_eq!(
            tail.len(),
            all.iter().filter(|(h, _)| *h > cursor).count(),
            "cursor semantics match the single-chain contract"
        );
    }

    #[test]
    fn funded_accounts_and_gas_audits_span_shards() {
        let (mut ledger, alice) = sharded(4);
        let addr = Address::from_public_key(&alice.public());
        assert_eq!(ledger.balance(&addr), 4 * 1_000_000_000);
        for i in 0..8 {
            let tx = ledger.build_call(
                &alice,
                ContractId::new("counter"),
                "incr",
                encode_to_vec(&(format!("key-{i}"), 1u64)),
                200_000,
            );
            ledger.submit(tx).expect("submit");
        }
        ledger.advance_to(SimTime::from_secs(2));
        let income: Amount = ledger
            .validator_addresses()
            .iter()
            .map(|a| ledger.balance(a))
            .sum();
        assert_eq!(
            income,
            Amount::from(ledger.gas_used_total()) * ledger.gas_price(),
            "consumed gas equals proposer income across shards"
        );
        let agg = ledger.gas_by_method();
        let (calls, total, mean) = agg[&("counter".to_string(), "incr".to_string())];
        assert_eq!(calls, 8);
        assert!(mean > 0 && mean <= total);
    }

    #[test]
    fn merged_log_prunes_behind_shard_checkpoints() {
        let mut ledger = ShardedLedger::new(3, 2, SimDuration::from_secs(2))
            .with_storage(StorageConfig::enabled(2, 1))
            .with_router(key_router());
        ledger.deploy_with(ContractId::new("counter"), &|| Box::new(Counter));
        let alice = ledger.create_funded_account(b"alice", 1_000_000_000);
        for round in 0..12u64 {
            for i in 0..6 {
                let tx = ledger.build_call(
                    &alice,
                    ContractId::new("counter"),
                    "incr",
                    encode_to_vec(&(format!("key-{i}"), 1u64)),
                    200_000,
                );
                ledger.submit(tx).expect("submit");
            }
            ledger.advance_to(SimTime::from_secs(2 * (round + 1)));
        }
        // Shards checkpointed and pruned, and the merged view exposes a
        // horizon in global block numbers.
        let horizon = Ledger::prune_horizon(&ledger);
        assert!(horizon > 0, "merged view pruned a prefix");
        assert!(Ledger::retained_blocks(&ledger) < ledger.height() as usize);
        Ledger::verify_checkpoints(&ledger).expect("per-shard checkpoints consistent");
        // Cursors below the horizon get a typed error carrying the resync
        // floor; at or above, reads succeed and stay height-interleaved.
        let err = ledger.try_events_since(horizon - 1).unwrap_err();
        assert_eq!(err.horizon, horizon);
        let tail = ledger.try_events_since(horizon).expect("valid cursor");
        assert!(tail.iter().all(|(g, _)| *g > horizon));
        let mut prev = 0;
        for (g, _) in tail {
            assert!(*g >= prev);
            prev = *g;
        }
        ledger
            .validate_chains()
            .expect("resident suffixes validate");
    }

    #[test]
    fn single_chain_trait_impl_matches_inherent_behaviour() {
        let mut chain = Blockchain::builder()
            .validators(2)
            .block_interval(SimDuration::from_secs(2))
            .build();
        Ledger::deploy_with(&mut chain, ContractId::new("counter"), &|| {
            Box::new(Counter)
        });
        let alice = Ledger::create_funded_account(&mut chain, b"alice", 1_000_000);
        let tx = Ledger::build_call(
            &chain,
            &alice,
            ContractId::new("counter"),
            "incr",
            encode_to_vec(&("k".to_string(), 5u64)),
            200_000,
        );
        let id = Ledger::submit(&mut chain, tx).expect("submit");
        Ledger::advance_to(&mut chain, SimTime::from_secs(2));
        assert_eq!(Ledger::shard_count(&chain), 1);
        assert_eq!(Ledger::height(&chain), 1);
        assert!(Ledger::receipt(&chain, &id)
            .expect("included")
            .status
            .is_ok());
        assert_eq!(Ledger::events_since(&chain, 0).len(), 1);
        assert_eq!(
            Ledger::next_slot_at(&chain, SimTime::from_secs(3)),
            SimTime::from_secs(4)
        );
    }
}
