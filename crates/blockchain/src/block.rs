//! Blocks: Merkle-committed transaction batches signed by their proposer.

use duc_codec::{encode_to_vec, Decode, DecodeError, Encode, Reader};
use duc_crypto::{hash_parts, Digest, KeyPair, MerkleTree, PublicKey, Signature};
use duc_sim::SimTime;

use crate::tx::SignedTransaction;

/// The header committing to a block's contents and chain position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height (genesis = 0).
    pub height: u64,
    /// Hash of the parent block ([`Digest::ZERO`] for genesis).
    pub parent: Digest,
    /// Commitment to the post-state ([`crate::state::WorldState::commitment`]).
    pub state_root: Digest,
    /// Merkle root over the encoded transactions.
    pub tx_root: Digest,
    /// Proposal timestamp.
    pub timestamp: SimTime,
    /// The proposing validator.
    pub proposer: PublicKey,
    /// Proposer's signature over the header (less this field).
    pub signature: Signature,
}

impl BlockHeader {
    /// The bytes the proposer signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.height.encode(&mut buf);
        self.parent.encode(&mut buf);
        self.state_root.encode(&mut buf);
        self.tx_root.encode(&mut buf);
        self.timestamp.as_nanos().encode(&mut buf);
        self.proposer.encode(&mut buf);
        buf
    }

    /// The block hash (over the full header, including the signature).
    pub fn hash(&self) -> Digest {
        hash_parts(&[b"duc/block", &encode_to_vec(self)])
    }

    /// Verifies the proposer's signature.
    pub fn verify_signature(&self) -> bool {
        self.proposer
            .verify(&self.signing_bytes(), &self.signature)
            .is_ok()
    }
}

impl Encode for BlockHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.height.encode(buf);
        self.parent.encode(buf);
        self.state_root.encode(buf);
        self.tx_root.encode(buf);
        self.timestamp.as_nanos().encode(buf);
        self.proposer.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            height: u64::decode(r)?,
            parent: Digest::decode(r)?,
            state_root: Digest::decode(r)?,
            tx_root: Digest::decode(r)?,
            timestamp: SimTime::from_nanos(u64::decode(r)?),
            proposer: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A full block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The signed header.
    pub header: BlockHeader,
    /// Included transactions, in execution order.
    pub transactions: Vec<SignedTransaction>,
}

impl Block {
    /// Computes the Merkle root over encoded transactions.
    pub fn compute_tx_root(transactions: &[SignedTransaction]) -> Digest {
        let leaves: Vec<Vec<u8>> = transactions.iter().map(encode_to_vec).collect();
        MerkleTree::from_leaves(&leaves).root()
    }

    /// Builds and signs a block.
    pub fn seal(
        height: u64,
        parent: Digest,
        state_root: Digest,
        timestamp: SimTime,
        transactions: Vec<SignedTransaction>,
        proposer: &KeyPair,
    ) -> Block {
        let tx_root = Block::compute_tx_root(&transactions);
        let mut header = BlockHeader {
            height,
            parent,
            state_root,
            tx_root,
            timestamp,
            proposer: proposer.public(),
            signature: Signature { e: 0, s: 0 },
        };
        header.signature = proposer.sign(&header.signing_bytes());
        Block {
            header,
            transactions,
        }
    }

    /// Structural validity: signature, tx root, and every tx signature.
    pub fn validate(&self) -> Result<(), BlockValidationError> {
        if !self.header.verify_signature() {
            return Err(BlockValidationError::BadProposerSignature);
        }
        if Block::compute_tx_root(&self.transactions) != self.header.tx_root {
            return Err(BlockValidationError::TxRootMismatch);
        }
        for (i, tx) in self.transactions.iter().enumerate() {
            if !tx.verify() {
                return Err(BlockValidationError::BadTransaction(i));
            }
        }
        Ok(())
    }

    /// The block hash.
    pub fn hash(&self) -> Digest {
        self.header.hash()
    }
}

impl duc_storage::ArchiveItem for Block {
    /// The archived frame is the canonical header encoding followed by the
    /// length-prefixed transaction list — the same bytes signatures and
    /// Merkle roots commit to, so an archived block stays verifiable.
    fn encode_frame(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.header.encode(&mut buf);
        self.transactions[..].encode(&mut buf);
        buf
    }
}

/// Why a block failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockValidationError {
    /// The proposer signature does not verify.
    BadProposerSignature,
    /// The header's tx root does not match the transactions.
    TxRootMismatch,
    /// Transaction at the index fails verification.
    BadTransaction(usize),
    /// Parent hash does not match the predecessor.
    BrokenParentLink(u64),
}

impl std::fmt::Display for BlockValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockValidationError::BadProposerSignature => f.write_str("bad proposer signature"),
            BlockValidationError::TxRootMismatch => f.write_str("tx merkle root mismatch"),
            BlockValidationError::BadTransaction(i) => {
                write!(f, "invalid transaction at index {i}")
            }
            BlockValidationError::BrokenParentLink(h) => {
                write!(f, "broken parent link at height {h}")
            }
        }
    }
}

impl std::error::Error for BlockValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{Transaction, TxKind};
    use crate::types::{Address, ContractId};

    fn sample_tx(nonce: u64) -> SignedTransaction {
        let key = KeyPair::from_seed(b"alice");
        Transaction {
            from: Address::from_public_key(&key.public()),
            nonce,
            kind: TxKind::Call {
                contract: ContractId::new("dex"),
                method: "m".into(),
                args: vec![],
            },
            gas_limit: 50_000,
        }
        .sign(&key)
    }

    fn sealed() -> Block {
        let proposer = KeyPair::from_seed(b"validator-0");
        Block::seal(
            1,
            Digest::ZERO,
            duc_crypto::sha256(b"state"),
            SimTime::from_secs(2),
            vec![sample_tx(0), sample_tx(1)],
            &proposer,
        )
    }

    #[test]
    fn sealed_block_validates() {
        assert_eq!(sealed().validate(), Ok(()));
    }

    #[test]
    fn tampered_transactions_detected() {
        let mut b = sealed();
        b.transactions.pop();
        assert_eq!(b.validate(), Err(BlockValidationError::TxRootMismatch));
    }

    #[test]
    fn tampered_header_detected() {
        let mut b = sealed();
        b.header.height = 99;
        assert_eq!(
            b.validate(),
            Err(BlockValidationError::BadProposerSignature)
        );
    }

    #[test]
    fn foreign_signature_detected() {
        let mut b = sealed();
        let mallory = KeyPair::from_seed(b"mallory");
        b.header.signature = mallory.sign(&b.header.signing_bytes());
        assert_eq!(
            b.validate(),
            Err(BlockValidationError::BadProposerSignature)
        );
    }

    #[test]
    fn corrupted_inner_tx_detected() {
        let mut b = sealed();
        b.transactions[0].tx.nonce = 42;
        // Fix the root so the tx-root check passes and the per-tx check fires.
        b.header.tx_root = Block::compute_tx_root(&b.transactions);
        let proposer = KeyPair::from_seed(b"validator-0");
        b.header.signature = proposer.sign(&b.header.signing_bytes());
        assert_eq!(b.validate(), Err(BlockValidationError::BadTransaction(0)));
    }

    #[test]
    fn block_hash_is_content_sensitive() {
        let a = sealed();
        let mut b = sealed();
        assert_eq!(a.hash(), b.hash());
        b.header.height = 2;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn header_codec_roundtrip() {
        let b = sealed();
        let bytes = encode_to_vec(&b.header);
        let back: BlockHeader = duc_codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, b.header);
    }

    #[test]
    fn empty_block_has_stable_tx_root() {
        assert_eq!(Block::compute_tx_root(&[]), Block::compute_tx_root(&[]));
    }
}
