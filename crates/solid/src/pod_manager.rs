//! The pod manager: the web application fronting a pod.
//!
//! Paper §III-A: "The Pod Manager is a web application that allows users to
//! retrieve, modify and control data that are stored in a Solid Pod. Thus,
//! the Pod Manager determines whether access can be granted by checking the
//! access control policies that are stored locally."
//!
//! Beyond plain Solid, this pod manager can also demand a *market payment
//! certificate* on reads by non-owners (paper §IV-4: the request "includes
//! a certificate that proves she has paid the market fee") — verification is
//! delegated to a [`CertificateVerifier`], implemented in production by the
//! DE App client over a pull-out oracle.

use std::collections::HashMap;

use duc_crypto::Digest;
use duc_policy::{AclDocument, AclMode, UsagePolicy};

use crate::pod::Pod;
use crate::protocol::{Body, Method, SolidRequest, SolidResponse, Status};
use crate::resource::{Resource, ResourceKind};

/// Checks market payment certificates.
pub trait CertificateVerifier {
    /// Whether `certificate` is currently valid for `webid`.
    fn verify(&self, certificate: &Digest, webid: &str) -> bool;
}

/// A verifier for pods that do not require payment (default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCertificates;

impl CertificateVerifier for NoCertificates {
    fn verify(&self, _certificate: &Digest, _webid: &str) -> bool {
        true
    }
}

impl<F> CertificateVerifier for F
where
    F: Fn(&Digest, &str) -> bool,
{
    fn verify(&self, certificate: &Digest, webid: &str) -> bool {
        self(certificate, webid)
    }
}

/// The pod manager.
pub struct PodManager {
    pod: Pod,
    owner: String,
    acl: AclDocument,
    policies: HashMap<String, UsagePolicy>,
    require_certificate_for_reads: bool,
    accesses_served: u64,
}

impl std::fmt::Debug for PodManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PodManager")
            .field("root", &self.pod.root())
            .field("owner", &self.owner)
            .field("resources", &self.pod.len())
            .field("policies", &self.policies.len())
            .finish()
    }
}

impl PodManager {
    /// Creates a pod manager for a fresh pod (paper process 1 starts here):
    /// the owner gets full control over everything under the root.
    pub fn new(root: impl Into<String>, owner: impl Into<String>) -> PodManager {
        let root = root.into();
        let owner = owner.into();
        PodManager {
            acl: AclDocument::owner_default(owner.clone(), root.clone()),
            pod: Pod::new(root),
            owner,
            policies: HashMap::new(),
            require_certificate_for_reads: false,
            accesses_served: 0,
        }
    }

    /// The pod owner's WebID.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The underlying pod (read access).
    pub fn pod(&self) -> &Pod {
        &self.pod
    }

    /// Mutable pod access (owner-side provisioning outside the protocol).
    pub fn pod_mut(&mut self) -> &mut Pod {
        &mut self.pod
    }

    /// The ACL document.
    pub fn acl(&self) -> &AclDocument {
        &self.acl
    }

    /// Replaces the ACL (the caller is responsible for having checked
    /// Control rights; protocol-level ACL editing goes through `.acl`
    /// resources in real Solid, which this simulation does not model).
    pub fn set_acl(&mut self, acl: AclDocument) {
        self.acl = acl;
    }

    /// Demands market payment certificates for non-owner reads.
    pub fn set_require_certificate(&mut self, required: bool) {
        self.require_certificate_for_reads = required;
    }

    /// Number of successful GETs served (metrics).
    pub fn accesses_served(&self) -> u64 {
        self.accesses_served
    }

    // ----------------------------------------------------------- policies

    /// Attaches a usage policy to a resource path (owner operation;
    /// the push-in oracle forwards it on-chain in process 2/5).
    pub fn set_policy(&mut self, path: impl Into<String>, policy: UsagePolicy) {
        self.policies.insert(path.into(), policy);
    }

    /// The usage policy for a path, if any.
    pub fn policy_for(&self, path: &str) -> Option<&UsagePolicy> {
        self.policies.get(path)
    }

    /// Amends the policy at `path` if `agent` is the owner; returns the new
    /// policy (version bumped) for on-chain propagation.
    ///
    /// # Errors
    /// `Err(Status::Forbidden)` when `agent` is not the pod owner,
    /// `Err(Status::NotFound)` when no policy exists at `path`.
    pub fn modify_policy(
        &mut self,
        agent: &str,
        path: &str,
        rules: Vec<duc_policy::Rule>,
        duties: Vec<duc_policy::Duty>,
    ) -> Result<UsagePolicy, Status> {
        if agent != self.owner {
            return Err(Status::Forbidden);
        }
        let current = self.policies.get(path).ok_or(Status::NotFound)?;
        let amended = current.amended(rules, duties);
        self.policies.insert(path.to_string(), amended.clone());
        Ok(amended)
    }

    // ----------------------------------------------------------- protocol

    /// Handles one Solid request.
    pub fn handle(&mut self, req: &SolidRequest) -> SolidResponse {
        self.handle_with_verifier(req, &NoCertificates)
    }

    /// Handles one Solid request, verifying payment certificates through
    /// `verifier` when this pod demands them.
    pub fn handle_with_verifier(
        &mut self,
        req: &SolidRequest,
        verifier: &dyn CertificateVerifier,
    ) -> SolidResponse {
        let required_mode = match req.method {
            Method::Get => AclMode::Read,
            Method::Put | Method::Delete => AclMode::Write,
            Method::Post => AclMode::Append,
        };
        let resource_iri = self.pod.iri_of(&req.path);
        let agent = req.agent.as_deref();
        if !self.acl.allows(agent, required_mode, &resource_iri) {
            return if agent.is_none() {
                SolidResponse::error(Status::Unauthorized, "authentication required")
            } else {
                SolidResponse::error(Status::Forbidden, "access denied by ACL")
            };
        }
        // Market-fee gate on non-owner reads.
        if req.method == Method::Get
            && self.require_certificate_for_reads
            && agent != Some(self.owner.as_str())
        {
            let webid = match agent {
                Some(w) => w,
                None => {
                    return SolidResponse::error(Status::Unauthorized, "authentication required")
                }
            };
            match &req.certificate {
                None => {
                    return SolidResponse::error(
                        Status::PaymentRequired,
                        "market certificate required",
                    )
                }
                Some(cert) if !verifier.verify(cert, webid) => {
                    return SolidResponse::error(
                        Status::PaymentRequired,
                        "market certificate invalid or expired",
                    )
                }
                Some(_) => {}
            }
        }
        match req.method {
            Method::Get => match self.pod.get(&req.path) {
                None => SolidResponse::status(Status::NotFound),
                Some(resource) => {
                    self.accesses_served += 1;
                    SolidResponse::ok(resource_body(resource))
                }
            },
            Method::Put => {
                let kind = match req.body.clone().into_resource_kind() {
                    Ok(kind) => kind,
                    Err(e) => return SolidResponse::error(Status::BadRequest, e),
                };
                let existed = self.pod.contains(&req.path);
                self.pod.put(req.path.clone(), kind);
                SolidResponse::status(if existed {
                    Status::NoContent
                } else {
                    Status::Created
                })
            }
            Method::Post => {
                let kind = match req.body.clone().into_resource_kind() {
                    Ok(kind) => kind,
                    Err(e) => return SolidResponse::error(Status::BadRequest, e),
                };
                let member = format!("{}member-{}", req.path, self.pod.len());
                self.pod.put(member.clone(), kind);
                SolidResponse {
                    status: Status::Created,
                    body: Body::Text(member),
                    detail: None,
                }
            }
            Method::Delete => match self.pod.delete(&req.path) {
                Some(_) => SolidResponse::status(Status::NoContent),
                None => SolidResponse::status(Status::NotFound),
            },
        }
    }
}

fn resource_body(resource: &Resource) -> Body {
    match &resource.kind {
        ResourceKind::Rdf(graph) => Body::Turtle(duc_rdf::turtle::serialize(graph)),
        ResourceKind::Binary(bytes) => Body::Binary(bytes.clone()),
        ResourceKind::Text(text) => Body::Text(text.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_policy::{AgentSpec, Authorization};

    const OWNER: &str = "https://alice.id/me";
    const BOB: &str = "https://bob.id/me";

    fn pm() -> PodManager {
        let mut pm = PodManager::new("https://alice.pod/", OWNER);
        let resp = pm.handle(
            &SolidRequest::put(OWNER, "data/notes.txt").with_body(Body::Text("secret".into())),
        );
        assert_eq!(resp.status, Status::Created);
        pm
    }

    #[test]
    fn owner_full_crud() {
        let mut pm = pm();
        assert_eq!(
            pm.handle(&SolidRequest::get(OWNER, "data/notes.txt"))
                .status,
            Status::Ok
        );
        let resp = pm.handle(
            &SolidRequest::put(OWNER, "data/notes.txt").with_body(Body::Text("update".into())),
        );
        assert_eq!(resp.status, Status::NoContent);
        assert_eq!(
            pm.handle(&SolidRequest::delete(OWNER, "data/notes.txt"))
                .status,
            Status::NoContent
        );
        assert_eq!(
            pm.handle(&SolidRequest::get(OWNER, "data/notes.txt"))
                .status,
            Status::NotFound
        );
    }

    #[test]
    fn default_acl_denies_strangers() {
        let mut pm = pm();
        assert_eq!(
            pm.handle(&SolidRequest::get(BOB, "data/notes.txt")).status,
            Status::Forbidden
        );
        assert_eq!(
            pm.handle(&SolidRequest::get_anonymous("data/notes.txt"))
                .status,
            Status::Unauthorized
        );
        assert_eq!(
            pm.handle(&SolidRequest::put(BOB, "data/evil.txt").with_body(Body::Text("x".into())))
                .status,
            Status::Forbidden
        );
    }

    #[test]
    fn granting_read_access_works() {
        let mut pm = pm();
        let mut acl = pm.acl().clone();
        acl.push(Authorization::for_resource(
            "bob-read",
            "https://alice.pod/data/notes.txt",
            vec![AgentSpec::Agent(BOB.into())],
            vec![AclMode::Read],
        ));
        pm.set_acl(acl);
        assert_eq!(
            pm.handle(&SolidRequest::get(BOB, "data/notes.txt")).status,
            Status::Ok
        );
        // Still no write.
        assert_eq!(
            pm.handle(&SolidRequest::put(BOB, "data/notes.txt").with_body(Body::Text("x".into())))
                .status,
            Status::Forbidden
        );
        assert_eq!(pm.accesses_served(), 1);
    }

    #[test]
    fn certificate_gate_on_reads() {
        let mut pm = pm();
        let mut acl = pm.acl().clone();
        acl.push(Authorization::for_resource(
            "readers",
            "https://alice.pod/data/notes.txt",
            vec![AgentSpec::AuthenticatedAgent],
            vec![AclMode::Read],
        ));
        pm.set_acl(acl);
        pm.set_require_certificate(true);

        // No certificate → 402.
        assert_eq!(
            pm.handle(&SolidRequest::get(BOB, "data/notes.txt")).status,
            Status::PaymentRequired
        );
        // Bad certificate per verifier → 402.
        let reject_all = |_: &Digest, _: &str| false;
        let req =
            SolidRequest::get(BOB, "data/notes.txt").with_certificate(duc_crypto::sha256(b"c"));
        assert_eq!(
            pm.handle_with_verifier(&req, &reject_all).status,
            Status::PaymentRequired
        );
        // Valid certificate → 200.
        let accept_bob = |_: &Digest, webid: &str| webid == BOB;
        assert_eq!(
            pm.handle_with_verifier(&req, &accept_bob).status,
            Status::Ok
        );
        // The owner never needs a certificate.
        assert_eq!(
            pm.handle(&SolidRequest::get(OWNER, "data/notes.txt"))
                .status,
            Status::Ok
        );
    }

    #[test]
    fn put_rejects_malformed_turtle() {
        let mut pm = pm();
        let resp = pm.handle(
            &SolidRequest::put(OWNER, "data/bad.ttl").with_body(Body::Turtle("@@@".into())),
        );
        assert_eq!(resp.status, Status::BadRequest);
        assert!(resp.detail.is_some());
    }

    #[test]
    fn post_creates_container_members() {
        let mut pm = pm();
        let resp = pm.handle(&SolidRequest {
            agent: Some(OWNER.into()),
            method: Method::Post,
            path: "inbox/".into(),
            body: Body::Text("msg".into()),
            certificate: None,
        });
        assert_eq!(resp.status, Status::Created);
        match resp.body {
            Body::Text(member) => assert!(member.starts_with("inbox/member-")),
            other => panic!("expected member path, got {other:?}"),
        }
    }

    #[test]
    fn policy_store_and_owner_modification() {
        let mut pm = pm();
        let policy = UsagePolicy::default_for("https://alice.pod/data/notes.txt", OWNER);
        pm.set_policy("data/notes.txt", policy.clone());
        assert_eq!(pm.policy_for("data/notes.txt"), Some(&policy));

        // Non-owner cannot modify.
        assert_eq!(
            pm.modify_policy(BOB, "data/notes.txt", vec![], vec![]),
            Err(Status::Forbidden)
        );
        // Owner modification bumps version.
        let amended = pm
            .modify_policy(OWNER, "data/notes.txt", vec![], vec![])
            .unwrap();
        assert_eq!(amended.version, policy.version + 1);
        assert_eq!(
            pm.policy_for("data/notes.txt").unwrap().version,
            amended.version
        );
        // Unknown path.
        assert_eq!(
            pm.modify_policy(OWNER, "nope", vec![], vec![]),
            Err(Status::NotFound)
        );
    }

    #[test]
    fn rdf_resources_roundtrip_through_protocol() {
        let mut pm = pm();
        let turtle = "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n<https://alice.id/me> foaf:name \"Alice\" .\n";
        let resp = pm.handle(
            &SolidRequest::put(OWNER, "profile/card.ttl").with_body(Body::Turtle(turtle.into())),
        );
        assert_eq!(resp.status, Status::Created);
        let got = pm.handle(&SolidRequest::get(OWNER, "profile/card.ttl"));
        match got.body {
            Body::Turtle(text) => {
                let g = duc_rdf::turtle::parse(&text).unwrap();
                assert_eq!(g.len(), 1);
            }
            other => panic!("expected turtle, got {other:?}"),
        }
    }
}
