//! The pod: a path-addressed resource tree.

use std::collections::BTreeMap;

use crate::resource::{Resource, ResourceKind};

/// A Solid personal online datastore.
///
/// Paths are slash-separated and relative to the pod root; a "container" is
/// simply a path prefix ending in `/` (LDP-style containment without the
/// ceremony).
#[derive(Debug, Clone, Default)]
pub struct Pod {
    root: String,
    resources: BTreeMap<String, Resource>,
}

impl Pod {
    /// Creates an empty pod rooted at `root` (e.g. `https://alice.pod/`).
    pub fn new(root: impl Into<String>) -> Pod {
        Pod {
            root: root.into(),
            resources: BTreeMap::new(),
        }
    }

    /// The pod's root IRI.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The absolute IRI of a path in this pod.
    pub fn iri_of(&self, path: &str) -> String {
        format!("{}{}", self.root, path)
    }

    /// Stores a resource (insert or replace); bumps the version on replace.
    pub fn put(&mut self, path: impl Into<String>, kind: ResourceKind) -> &Resource {
        let path = path.into();
        match self.resources.get_mut(&path) {
            Some(existing) => {
                existing.kind = kind;
                existing.version += 1;
            }
            None => {
                self.resources
                    .insert(path.clone(), Resource::new(path.clone(), kind));
            }
        }
        self.resources.get(&path).expect("just inserted")
    }

    /// Reads a resource.
    pub fn get(&self, path: &str) -> Option<&Resource> {
        self.resources.get(path)
    }

    /// Whether a resource exists.
    pub fn contains(&self, path: &str) -> bool {
        self.resources.contains_key(path)
    }

    /// Deletes a resource; returns it if it existed.
    pub fn delete(&mut self, path: &str) -> Option<Resource> {
        self.resources.remove(path)
    }

    /// Lists resource paths under a container prefix, in order.
    pub fn list(&self, container: &str) -> Vec<&str> {
        self.resources
            .range(container.to_string()..)
            .take_while(|(path, _)| path.starts_with(container))
            .map(|(path, _)| path.as_str())
            .collect()
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the pod holds no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Total stored bytes.
    pub fn total_size(&self) -> usize {
        self.resources.values().map(Resource::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut pod = Pod::new("https://alice.pod/");
        pod.put("data/a.txt", ResourceKind::Text("one".into()));
        assert!(pod.contains("data/a.txt"));
        assert_eq!(pod.get("data/a.txt").unwrap().version, 1);
        pod.put("data/a.txt", ResourceKind::Text("two".into()));
        assert_eq!(
            pod.get("data/a.txt").unwrap().version,
            2,
            "replace bumps version"
        );
        let removed = pod.delete("data/a.txt").expect("existed");
        assert_eq!(removed.version, 2);
        assert!(pod.get("data/a.txt").is_none());
        assert!(pod.delete("data/a.txt").is_none());
    }

    #[test]
    fn iri_of_joins_root() {
        let pod = Pod::new("https://alice.pod/");
        assert_eq!(pod.iri_of("data/x"), "https://alice.pod/data/x");
        assert_eq!(pod.root(), "https://alice.pod/");
    }

    #[test]
    fn container_listing() {
        let mut pod = Pod::new("https://p/");
        pod.put("data/a", ResourceKind::Text("1".into()));
        pod.put("data/b", ResourceKind::Text("2".into()));
        pod.put("data/sub/c", ResourceKind::Text("3".into()));
        pod.put("other/d", ResourceKind::Text("4".into()));
        assert_eq!(pod.list("data/"), vec!["data/a", "data/b", "data/sub/c"]);
        assert_eq!(pod.list("data/sub/"), vec!["data/sub/c"]);
        assert_eq!(
            pod.list(""),
            vec!["data/a", "data/b", "data/sub/c", "other/d"]
        );
        assert!(pod.list("nope/").is_empty());
    }

    #[test]
    fn size_accounting() {
        let mut pod = Pod::new("https://p/");
        assert!(pod.is_empty());
        pod.put("a", ResourceKind::Binary(vec![0; 10]));
        pod.put("b", ResourceKind::Text("xyz".into()));
        assert_eq!(pod.len(), 2);
        assert_eq!(pod.total_size(), 13);
    }
}
