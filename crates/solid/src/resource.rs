//! Resources stored in a pod.

use duc_rdf::{turtle, Graph};

/// The content of a resource.
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceKind {
    /// An RDF document (held as a graph; serialized as Turtle on the wire).
    Rdf(Graph),
    /// Opaque bytes (datasets, media).
    Binary(Vec<u8>),
    /// Plain text.
    Text(String),
}

/// A pod resource: content plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Path relative to the pod root (e.g. `data/medical.ttl`).
    pub path: String,
    /// The content.
    pub kind: ResourceKind,
    /// Version counter, bumped on every write.
    pub version: u64,
}

impl Resource {
    /// Creates a version-1 resource.
    pub fn new(path: impl Into<String>, kind: ResourceKind) -> Resource {
        Resource {
            path: path.into(),
            kind,
            version: 1,
        }
    }

    /// An RDF resource from a graph.
    pub fn rdf(path: impl Into<String>, graph: Graph) -> Resource {
        Resource::new(path, ResourceKind::Rdf(graph))
    }

    /// A binary resource.
    pub fn binary(path: impl Into<String>, bytes: Vec<u8>) -> Resource {
        Resource::new(path, ResourceKind::Binary(bytes))
    }

    /// A text resource.
    pub fn text(path: impl Into<String>, text: impl Into<String>) -> Resource {
        Resource::new(path, ResourceKind::Text(text.into()))
    }

    /// The wire representation (Turtle for RDF).
    pub fn to_bytes(&self) -> Vec<u8> {
        match &self.kind {
            ResourceKind::Rdf(graph) => turtle::serialize(graph).into_bytes(),
            ResourceKind::Binary(bytes) => bytes.clone(),
            ResourceKind::Text(text) => text.clone().into_bytes(),
        }
    }

    /// The content size in bytes (network/bandwidth modelling).
    pub fn size(&self) -> usize {
        match &self.kind {
            ResourceKind::Rdf(graph) => turtle::serialize(graph).len(),
            ResourceKind::Binary(bytes) => bytes.len(),
            ResourceKind::Text(text) => text.len(),
        }
    }

    /// The media type served with the content.
    pub fn content_type(&self) -> &'static str {
        match &self.kind {
            ResourceKind::Rdf(_) => "text/turtle",
            ResourceKind::Binary(_) => "application/octet-stream",
            ResourceKind::Text(_) => "text/plain",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_rdf::{Iri, Term, Triple};

    #[test]
    fn constructors_and_sizes() {
        let text = Resource::text("a.txt", "hello");
        assert_eq!(text.size(), 5);
        assert_eq!(text.content_type(), "text/plain");
        assert_eq!(text.version, 1);

        let bin = Resource::binary("b.bin", vec![0u8; 42]);
        assert_eq!(bin.size(), 42);
        assert_eq!(bin.content_type(), "application/octet-stream");
    }

    #[test]
    fn rdf_resources_serialize_as_turtle() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("urn:s"),
            Iri::new("urn:p").unwrap(),
            Term::literal_str("v"),
        ));
        let r = Resource::rdf("profile.ttl", g.clone());
        assert_eq!(r.content_type(), "text/turtle");
        let text = String::from_utf8(r.to_bytes()).unwrap();
        let reparsed = duc_rdf::turtle::parse(&text).unwrap();
        assert!(reparsed.is_isomorphic_simple(&g));
        assert_eq!(r.size(), text.len());
    }
}
