//! The Solid protocol surface: HTTP-shaped requests and responses.

use duc_crypto::Digest;

use crate::resource::ResourceKind;

/// Request method (the subset of HTTP that Solid CRUD uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Create or replace a resource.
    Put,
    /// Append to a container.
    Post,
    /// Remove a resource.
    Delete,
}

/// Request/response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// No content.
    Empty,
    /// Turtle text (parsed into a graph by the pod manager on PUT).
    Turtle(String),
    /// Opaque bytes.
    Binary(Vec<u8>),
    /// Plain text.
    Text(String),
}

impl Body {
    /// Converts to stored resource content.
    ///
    /// # Errors
    /// Returns the Turtle parse error message for malformed RDF bodies.
    pub fn into_resource_kind(self) -> Result<ResourceKind, String> {
        match self {
            Body::Empty => Ok(ResourceKind::Binary(Vec::new())),
            Body::Turtle(text) => duc_rdf::turtle::parse(&text)
                .map(ResourceKind::Rdf)
                .map_err(|e| e.to_string()),
            Body::Binary(bytes) => Ok(ResourceKind::Binary(bytes)),
            Body::Text(text) => Ok(ResourceKind::Text(text)),
        }
    }

    /// Body size in bytes (network modelling).
    pub fn size(&self) -> usize {
        match self {
            Body::Empty => 0,
            Body::Turtle(t) | Body::Text(t) => t.len(),
            Body::Binary(b) => b.len(),
        }
    }
}

/// A request to a pod manager.
#[derive(Debug, Clone, PartialEq)]
pub struct SolidRequest {
    /// Authenticated WebID (`None` = anonymous).
    pub agent: Option<String>,
    /// Method.
    pub method: Method,
    /// Path relative to the pod root.
    pub path: String,
    /// Body (for PUT/POST).
    pub body: Body,
    /// Market payment certificate, when the pod demands one.
    pub certificate: Option<Digest>,
}

impl SolidRequest {
    /// A GET from an authenticated agent.
    pub fn get(agent: impl Into<String>, path: impl Into<String>) -> SolidRequest {
        SolidRequest {
            agent: Some(agent.into()),
            method: Method::Get,
            path: path.into(),
            body: Body::Empty,
            certificate: None,
        }
    }

    /// A PUT from an authenticated agent.
    pub fn put(agent: impl Into<String>, path: impl Into<String>) -> SolidRequest {
        SolidRequest {
            agent: Some(agent.into()),
            method: Method::Put,
            path: path.into(),
            body: Body::Empty,
            certificate: None,
        }
    }

    /// A DELETE from an authenticated agent.
    pub fn delete(agent: impl Into<String>, path: impl Into<String>) -> SolidRequest {
        SolidRequest {
            agent: Some(agent.into()),
            method: Method::Delete,
            path: path.into(),
            body: Body::Empty,
            certificate: None,
        }
    }

    /// An anonymous GET.
    pub fn get_anonymous(path: impl Into<String>) -> SolidRequest {
        SolidRequest {
            agent: None,
            method: Method::Get,
            path: path.into(),
            body: Body::Empty,
            certificate: None,
        }
    }

    /// Attaches a body.
    pub fn with_body(mut self, body: Body) -> SolidRequest {
        self.body = body;
        self
    }

    /// Attaches a payment certificate.
    pub fn with_certificate(mut self, cert: Digest) -> SolidRequest {
        self.certificate = Some(cert);
        self
    }

    /// Approximate wire size (for the network model).
    pub fn size(&self) -> usize {
        64 + self.path.len() + self.body.size()
    }
}

/// Response status (HTTP-flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200.
    Ok,
    /// 201.
    Created,
    /// 204.
    NoContent,
    /// 400.
    BadRequest,
    /// 401 — authentication required.
    Unauthorized,
    /// 402 — payment certificate missing or invalid.
    PaymentRequired,
    /// 403 — ACL denies.
    Forbidden,
    /// 404.
    NotFound,
}

impl Status {
    /// Whether the status signals success.
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok | Status::Created | Status::NoContent)
    }
}

/// A pod manager's response.
#[derive(Debug, Clone, PartialEq)]
pub struct SolidResponse {
    /// Outcome.
    pub status: Status,
    /// Response body.
    pub body: Body,
    /// Machine-readable detail on failures.
    pub detail: Option<String>,
}

impl SolidResponse {
    /// A success with a body.
    pub fn ok(body: Body) -> SolidResponse {
        SolidResponse {
            status: Status::Ok,
            body,
            detail: None,
        }
    }

    /// A bodyless status.
    pub fn status(status: Status) -> SolidResponse {
        SolidResponse {
            status,
            body: Body::Empty,
            detail: None,
        }
    }

    /// A failure with detail.
    pub fn error(status: Status, detail: impl Into<String>) -> SolidResponse {
        SolidResponse {
            status,
            body: Body::Empty,
            detail: Some(detail.into()),
        }
    }

    /// Approximate wire size (for the network model).
    pub fn size(&self) -> usize {
        32 + self.body.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_fields() {
        let r = SolidRequest::get("urn:alice", "data/x").with_certificate(duc_crypto::sha256(b"c"));
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.agent.as_deref(), Some("urn:alice"));
        assert!(r.certificate.is_some());
        let anon = SolidRequest::get_anonymous("x");
        assert!(anon.agent.is_none());
    }

    #[test]
    fn body_conversion() {
        assert_eq!(
            Body::Text("t".into()).into_resource_kind().unwrap(),
            ResourceKind::Text("t".into())
        );
        assert!(matches!(
            Body::Turtle("<urn:s> <urn:p> <urn:o> .".into()).into_resource_kind(),
            Ok(ResourceKind::Rdf(_))
        ));
        assert!(Body::Turtle("not turtle @@@".into())
            .into_resource_kind()
            .is_err());
        assert_eq!(Body::Empty.size(), 0);
        assert_eq!(Body::Binary(vec![0; 9]).size(), 9);
    }

    #[test]
    fn status_success_classes() {
        assert!(Status::Ok.is_success());
        assert!(Status::Created.is_success());
        assert!(!Status::Forbidden.is_success());
        assert!(!Status::PaymentRequired.is_success());
    }

    #[test]
    fn sizes_are_positive() {
        assert!(SolidRequest::get("a", "p").size() > 0);
        assert!(SolidResponse::ok(Body::Text("x".into())).size() > 32);
    }
}
