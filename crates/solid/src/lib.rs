//! # duc-solid — the Solid substrate
//!
//! Solid personal online datastores (pods) and the pod manager that fronts
//! them (paper §III-A). A pod is a path-addressed tree of RDF and binary
//! resources; the pod manager is the web application that mediates every
//! request: it authenticates the agent (WebID), consults the WAC ACL
//! ([`duc_policy::acl`]), optionally demands a market payment certificate,
//! and serves or mutates resources.
//!
//! The pod manager also keeps the pod-local *usage policy* store — the
//! source documents that the push-in oracle forwards to the DE App.
//!
//! ## Example
//! ```
//! use duc_solid::prelude::*;
//!
//! let mut pm = PodManager::new("https://alice.pod/", "https://alice.id/me");
//! let req = SolidRequest::put("https://alice.id/me", "data/notes.txt")
//!     .with_body(Body::Text("hello".into()));
//! assert_eq!(pm.handle(&req).status, Status::Created);
//! let got = pm.handle(&SolidRequest::get("https://alice.id/me", "data/notes.txt"));
//! assert_eq!(got.status, Status::Ok);
//! ```

pub mod pod;
pub mod pod_manager;
pub mod protocol;
pub mod resource;

pub use pod::Pod;
pub use pod_manager::{CertificateVerifier, NoCertificates, PodManager};
pub use protocol::{Body, Method, SolidRequest, SolidResponse, Status};
pub use resource::{Resource, ResourceKind};

/// Common imports.
pub mod prelude {
    pub use crate::pod::Pod;
    pub use crate::pod_manager::{CertificateVerifier, NoCertificates, PodManager};
    pub use crate::protocol::{Body, Method, SolidRequest, SolidResponse, Status};
    pub use crate::resource::{Resource, ResourceKind};
}
