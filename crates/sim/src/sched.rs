//! Discrete-event scheduler.
//!
//! Periodic activities in the architecture — block production, oracle relay
//! polling, monitoring rounds, obligation sweeps — are expressed as events
//! on a [`Scheduler`]. Events fire in timestamp order; ties break by
//! insertion order so runs are fully deterministic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::clock::{Clock, SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A queued follow-up event: fire time plus callback.
type QueuedEvent = (SimTime, Box<dyn FnOnce(&mut SchedulerCtx<'_>)>);

/// Context handed to every event callback.
///
/// Callbacks may schedule follow-up events (that is how periodic tasks are
/// built) and observe the current instant.
pub struct SchedulerCtx<'a> {
    queue: &'a mut Vec<QueuedEvent>,
    now: SimTime,
}

impl<'a> SchedulerCtx<'a> {
    /// The instant at which the current event fires.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a follow-up event `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut SchedulerCtx<'_>) + 'static,
    ) {
        self.queue.push((self.now + delay, Box::new(f)));
    }
}

struct Entry {
    at: SimTime,
    seq: u64,
    id: EventId,
    callback: Box<dyn FnOnce(&mut SchedulerCtx<'_>)>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event scheduler bound to a [`Clock`].
///
/// # Example
/// ```
/// use duc_sim::{Clock, Scheduler, SimDuration, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let clock = Clock::new();
/// let mut sched = Scheduler::new(clock.clone());
/// let fired = Rc::new(RefCell::new(Vec::new()));
/// let f = fired.clone();
/// sched.schedule_at(SimTime::from_millis(10), move |_| f.borrow_mut().push(10));
/// let f = fired.clone();
/// sched.schedule_at(SimTime::from_millis(5), move |_| f.borrow_mut().push(5));
/// sched.run_until(SimTime::from_millis(20));
/// assert_eq!(*fired.borrow(), vec![5, 10]);
/// assert_eq!(clock.now().as_millis(), 20);
/// ```
pub struct Scheduler {
    clock: Clock,
    heap: BinaryHeap<Reverse<Entry>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    executed: u64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler that drives the given clock.
    pub fn new(clock: Clock) -> Self {
        Scheduler {
            clock,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
        }
    }

    /// The clock this scheduler advances.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// The timestamp of the next live (non-cancelled) event, if any.
    ///
    /// Lazily discards cancelled entries at the head of the queue, so the
    /// returned instant is exactly where [`Scheduler::run_until`] would
    /// fire next. Event-loop drivers use this to hop from event to event
    /// without guessing a horizon.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            let Reverse(entry) = head;
            if self.cancelled.remove(&entry.id) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
    }

    /// Schedules `f` to fire at absolute time `at`.
    ///
    /// Events scheduled in the past fire at the current instant (the clock
    /// never moves backwards).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut SchedulerCtx<'_>) + 'static,
    ) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            at,
            seq: self.next_seq,
            id,
            callback: Box::new(f),
        }));
        self.next_seq += 1;
        id
    }

    /// Schedules `f` to fire `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut SchedulerCtx<'_>) + 'static,
    ) -> EventId {
        self.schedule_at(self.clock.now() + delay, f)
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown event
    /// is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Runs all events with timestamps `<= horizon`, advancing the clock to
    /// each event's time and finally to `horizon`. Returns the number of
    /// events executed.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut count = 0;
        loop {
            let due = matches!(self.heap.peek(), Some(Reverse(e)) if e.at <= horizon);
            if !due {
                break;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.clock.advance_to(entry.at);
            let mut spawned = Vec::new();
            {
                let mut ctx = SchedulerCtx {
                    queue: &mut spawned,
                    now: entry.at.max(self.clock.now()),
                };
                (entry.callback)(&mut ctx);
            }
            for (at, cb) in spawned {
                self.schedule_at(at, move |ctx| cb(ctx));
            }
            self.executed += 1;
            count += 1;
        }
        self.clock.advance_to(horizon);
        count
    }

    /// Runs until no events remain (or `max_events` fired, as a livelock
    /// guard). Returns the number of events executed.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut count = 0;
        while count < max_events {
            let at = match self.heap.peek() {
                Some(Reverse(e)) => e.at,
                None => break,
            };
            count += self.run_until(at);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<u64>>>;

    fn recorder() -> (Log, Log) {
        let r = Rc::new(RefCell::new(Vec::new()));
        (r.clone(), r)
    }

    #[test]
    fn events_fire_in_time_order() {
        let clock = Clock::new();
        let mut s = Scheduler::new(clock);
        let (log, handle) = recorder();
        for &ms in &[30u64, 10, 20] {
            let log = log.clone();
            s.schedule_at(SimTime::from_millis(ms), move |ctx| {
                log.borrow_mut().push(ctx.now().as_millis());
            });
        }
        s.run_until(SimTime::from_millis(100));
        assert_eq!(*handle.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new(Clock::new());
        let (log, handle) = recorder();
        for i in 0..5u64 {
            let log = log.clone();
            s.schedule_at(SimTime::from_millis(10), move |_| log.borrow_mut().push(i));
        }
        s.run_until(SimTime::from_millis(10));
        assert_eq!(*handle.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn horizon_stops_execution() {
        let mut s = Scheduler::new(Clock::new());
        let (log, handle) = recorder();
        let l1 = log.clone();
        s.schedule_at(SimTime::from_millis(10), move |_| l1.borrow_mut().push(1));
        let l2 = log.clone();
        s.schedule_at(SimTime::from_millis(50), move |_| l2.borrow_mut().push(2));
        let ran = s.run_until(SimTime::from_millis(20));
        assert_eq!(ran, 1);
        assert_eq!(*handle.borrow(), vec![1]);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn periodic_events_reschedule_themselves() {
        let mut s = Scheduler::new(Clock::new());
        let (log, handle) = recorder();
        fn tick(log: Rc<RefCell<Vec<u64>>>, ctx: &mut SchedulerCtx<'_>) {
            log.borrow_mut().push(ctx.now().as_millis());
            let next = log.clone();
            ctx.schedule_in(SimDuration::from_millis(10), move |ctx| tick(next, ctx));
        }
        let l = log.clone();
        s.schedule_at(SimTime::from_millis(10), move |ctx| tick(l, ctx));
        s.run_until(SimTime::from_millis(45));
        assert_eq!(*handle.borrow(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut s = Scheduler::new(Clock::new());
        let (log, handle) = recorder();
        let l = log.clone();
        let id = s.schedule_at(SimTime::from_millis(10), move |_| l.borrow_mut().push(1));
        s.cancel(id);
        s.run_until(SimTime::from_millis(20));
        assert!(handle.borrow().is_empty());
        assert_eq!(s.executed(), 0);
    }

    #[test]
    fn run_to_completion_bounds_livelock() {
        let mut s = Scheduler::new(Clock::new());
        fn forever(ctx: &mut SchedulerCtx<'_>) {
            ctx.schedule_in(SimDuration::from_millis(1), forever);
        }
        s.schedule_at(SimTime::from_millis(1), forever);
        let ran = s.run_to_completion(100);
        assert!(ran <= 101, "guard bounds runaway self-scheduling: {ran}");
    }

    #[test]
    fn next_event_at_skips_cancelled_heads() {
        let mut s = Scheduler::new(Clock::new());
        let early = s.schedule_at(SimTime::from_millis(5), |_| {});
        s.schedule_at(SimTime::from_millis(9), |_| {});
        assert_eq!(s.next_event_at(), Some(SimTime::from_millis(5)));
        s.cancel(early);
        assert_eq!(s.next_event_at(), Some(SimTime::from_millis(9)));
        s.run_until(SimTime::from_millis(10));
        assert_eq!(s.next_event_at(), None);
    }

    #[test]
    fn clock_advances_to_horizon_even_without_events() {
        let clock = Clock::new();
        let mut s = Scheduler::new(clock.clone());
        s.run_until(SimTime::from_secs(3));
        assert_eq!(clock.now().as_secs(), 3);
    }
}
