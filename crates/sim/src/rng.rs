//! Seeded pseudo-random number generation.
//!
//! The simulation deliberately avoids the `rand` crate: reproducibility of
//! every experiment requires a single, fully specified generator. [`Rng`]
//! implements **xoshiro256++** (Blackman & Vigna) seeded through SplitMix64,
//! plus the handful of distributions the network and workload models need.

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure — the cryptographic substrate lives in
/// `duc-crypto`. This generator drives workload generation, latency jitter
/// and fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit internal state is expanded from the seed with
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator (for per-actor streams).
    ///
    /// Mixing in a caller-chosen `stream` id keeps child streams disjoint
    /// even when forked from identical parent states.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from_u64(mixed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// An exponentially distributed sample with the given mean.
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard the log argument away from zero.
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// A normally distributed sample (Box–Muller transform).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A uniformly chosen reference into a non-empty slice.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_range(items.len() as u64) as usize]
    }

    /// Samples an index according to non-negative `weights` (Zipf-like
    /// workloads are expressed through this).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= *w;
        }
        weights.len() - 1
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` via weight table.
    ///
    /// Used to model skewed resource popularity in the data-market workloads.
    pub fn gen_zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf requires n > 0");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        self.choose_weighted(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = Rng::seed_from_u64(4);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match rng.gen_range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_sampling_within_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_exponential(10.0)).sum::<f64>() / n as f64;
        assert!(
            (mean - 10.0).abs() < 0.5,
            "sample mean {mean} too far from 10"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Rng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = Rng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffled order changed");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[rng.choose_weighted(&[1.0, 2.0, 6.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
    }

    #[test]
    fn zipf_is_skewed_to_low_ranks() {
        let mut rng = Rng::seed_from_u64(12);
        let mut counts = [0usize; 20];
        for _ in 0..5000 {
            counts[rng.gen_zipf(20, 1.0)] += 1;
        }
        assert!(counts[0] > counts[10] * 3, "rank 0 dominates rank 10");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(13);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let equal = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Rng::seed_from_u64(14);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
