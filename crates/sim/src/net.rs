//! Network latency, bandwidth and partition model.
//!
//! The architecture's components (pod managers, TEE devices, blockchain
//! nodes, oracle relays) are *endpoints*; every message hop between two
//! endpoints is priced by a [`NetworkModel`]: a sampled propagation latency
//! plus a size-dependent transfer time, with optional loss and partitions
//! for the robustness experiments (E8).

use std::collections::{HashMap, HashSet};

use crate::clock::SimDuration;
use crate::metrics::MetricsRegistry;
use crate::rng::Rng;

/// Identifies a network endpoint (one simulated host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A latency distribution for one link direction.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// A fixed delay.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
    /// `base` plus an exponential tail with the given mean.
    Exponential {
        /// Minimum propagation delay.
        base: SimDuration,
        /// Mean of the additional exponential component.
        mean_extra: SimDuration,
    },
    /// Normal with the given mean/stddev, truncated at zero.
    Normal {
        /// Mean delay.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
    },
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => {
                let (lo, hi) = (lo.as_nanos(), hi.as_nanos().max(lo.as_nanos()));
                SimDuration::from_nanos(rng.gen_range_inclusive(lo, hi))
            }
            LatencyModel::Exponential { base, mean_extra } => {
                let extra = rng.gen_exponential(mean_extra.as_nanos() as f64);
                *base + SimDuration::from_nanos(extra as u64)
            }
            LatencyModel::Normal { mean, std_dev } => {
                let v = rng.gen_normal(mean.as_nanos() as f64, std_dev.as_nanos() as f64);
                SimDuration::from_nanos(v.max(0.0) as u64)
            }
        }
    }
}

/// Per-link configuration: latency, loss and bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Propagation latency distribution.
    pub latency: LatencyModel,
    /// Probability that a message on this link is silently dropped.
    pub drop_probability: f64,
    /// Link bandwidth in bytes per second; `None` means size-independent.
    pub bandwidth_bps: Option<u64>,
}

impl Default for LinkConfig {
    /// A LAN-ish default: 2 ms ± 0.5 ms, lossless, 100 MB/s.
    fn default() -> Self {
        LinkConfig {
            latency: LatencyModel::Normal {
                mean: SimDuration::from_millis(2),
                std_dev: SimDuration::from_micros(500),
            },
            drop_probability: 0.0,
            bandwidth_bps: Some(100_000_000),
        }
    }
}

impl LinkConfig {
    /// A WAN-ish profile: 40 ms base + exponential tail, 10 MB/s.
    pub fn wan() -> Self {
        LinkConfig {
            latency: LatencyModel::Exponential {
                base: SimDuration::from_millis(40),
                mean_extra: SimDuration::from_millis(10),
            },
            drop_probability: 0.0,
            bandwidth_bps: Some(10_000_000),
        }
    }

    /// A zero-latency, infinite-bandwidth profile (intra-process calls).
    pub fn local() -> Self {
        LinkConfig {
            latency: LatencyModel::Constant(SimDuration::ZERO),
            drop_probability: 0.0,
            bandwidth_bps: None,
        }
    }
}

/// The outcome of attempting one message hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message arrives after the given delay.
    Delivered(SimDuration),
    /// Message lost (link loss or partition).
    Dropped,
}

impl Delivery {
    /// The delay if delivered.
    pub fn delay(self) -> Option<SimDuration> {
        match self {
            Delivery::Delivered(d) => Some(d),
            Delivery::Dropped => None,
        }
    }
}

/// A network of endpoints with per-pair link overrides, loss and partitions.
///
/// # Example
/// ```
/// use duc_sim::{NetworkModel, LinkConfig, Rng};
///
/// let mut net = NetworkModel::new(LinkConfig::default());
/// let a = net.add_endpoint("alice-device");
/// let b = net.add_endpoint("bob-pod");
/// let mut rng = Rng::seed_from_u64(1);
/// let d = net.transmit(a, b, 1024, &mut rng).delay().expect("lossless default");
/// assert!(d.as_micros() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    default_link: LinkConfig,
    overrides: HashMap<(EndpointId, EndpointId), LinkConfig>,
    partitions: HashSet<(EndpointId, EndpointId)>,
    down: HashSet<EndpointId>,
    /// Additional drop probability per directed pair (fault-plan drop
    /// windows layered over the links' own loss).
    extra_drop: HashMap<(EndpointId, EndpointId), f64>,
    names: Vec<String>,
    /// Total messages offered to the network.
    messages_sent: u64,
    /// Total messages dropped by loss or partition.
    messages_dropped: u64,
    /// Messages dropped because the pair was partitioned.
    dropped_partition: u64,
    /// Messages dropped because an endpoint was down.
    dropped_down: u64,
    /// Messages dropped by probabilistic link loss.
    dropped_loss: u64,
    /// Total payload bytes offered.
    bytes_sent: u64,
    /// Counter values at the last [`NetworkModel::publish_metrics`] call.
    published: [u64; 6],
}

impl NetworkModel {
    /// Creates a network where every link uses `default_link` unless
    /// overridden.
    pub fn new(default_link: LinkConfig) -> Self {
        NetworkModel {
            default_link,
            overrides: HashMap::new(),
            partitions: HashSet::new(),
            down: HashSet::new(),
            extra_drop: HashMap::new(),
            names: Vec::new(),
            messages_sent: 0,
            messages_dropped: 0,
            dropped_partition: 0,
            dropped_down: 0,
            dropped_loss: 0,
            bytes_sent: 0,
            published: [0; 6],
        }
    }

    /// Registers a new endpoint and returns its id.
    pub fn add_endpoint(&mut self, name: impl Into<String>) -> EndpointId {
        let id = EndpointId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The human-readable name of an endpoint.
    pub fn endpoint_name(&self, id: EndpointId) -> &str {
        self.names
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.names.len()
    }

    /// Overrides the link configuration for the *directed* pair `from → to`.
    pub fn set_link(&mut self, from: EndpointId, to: EndpointId, cfg: LinkConfig) {
        self.overrides.insert((from, to), cfg);
    }

    /// Severs connectivity in *both* directions between `a` and `b`.
    pub fn partition(&mut self, a: EndpointId, b: EndpointId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: EndpointId, b: EndpointId) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    /// Marks an endpoint as crashed: every message to or from it is dropped.
    pub fn set_down(&mut self, ep: EndpointId, down: bool) {
        if down {
            self.down.insert(ep);
        } else {
            self.down.remove(&ep);
        }
    }

    /// Whether `ep` is currently marked down.
    pub fn is_down(&self, ep: EndpointId) -> bool {
        self.down.contains(&ep)
    }

    /// Layers an additional drop probability over the pair `a`↔`b` (both
    /// directions), on top of the links' own loss. Fault-plan drop windows
    /// apply through this.
    pub fn set_extra_drop(&mut self, a: EndpointId, b: EndpointId, p: f64) {
        self.extra_drop.insert((a, b), p);
        self.extra_drop.insert((b, a), p);
    }

    /// Removes the extra drop probability on the pair `a`↔`b`.
    pub fn clear_extra_drop(&mut self, a: EndpointId, b: EndpointId) {
        self.extra_drop.remove(&(a, b));
        self.extra_drop.remove(&(b, a));
    }

    /// Prices one message of `size_bytes` from `from` to `to`.
    ///
    /// Accounts the attempt in the network statistics either way.
    pub fn transmit(
        &mut self,
        from: EndpointId,
        to: EndpointId,
        size_bytes: u64,
        rng: &mut Rng,
    ) -> Delivery {
        self.messages_sent += 1;
        self.bytes_sent += size_bytes;
        if self.partitions.contains(&(from, to)) {
            self.messages_dropped += 1;
            self.dropped_partition += 1;
            return Delivery::Dropped;
        }
        if self.down.contains(&from) || self.down.contains(&to) {
            self.messages_dropped += 1;
            self.dropped_down += 1;
            return Delivery::Dropped;
        }
        let cfg = self
            .overrides
            .get(&(from, to))
            .unwrap_or(&self.default_link);
        // Combine link loss with any fault-window loss into one draw so a
        // fault-free run consumes the RNG — and decides each delivery —
        // exactly as before (the combine formula is skipped entirely when
        // no window is active, keeping the threshold bit-identical).
        let p = match self.extra_drop.get(&(from, to)) {
            Some(extra) => 1.0 - (1.0 - cfg.drop_probability) * (1.0 - extra),
            None => cfg.drop_probability,
        };
        if rng.gen_bool(p) {
            self.messages_dropped += 1;
            self.dropped_loss += 1;
            return Delivery::Dropped;
        }
        let mut delay = cfg.latency.sample(rng);
        if let Some(bps) = cfg.bandwidth_bps {
            if bps > 0 {
                let transfer_nanos = (size_bytes as u128 * 1_000_000_000u128 / bps as u128)
                    .min(u64::MAX as u128) as u64;
                delay += SimDuration::from_nanos(transfer_nanos);
            }
        }
        Delivery::Delivered(delay)
    }

    /// `(messages_sent, messages_dropped, bytes_sent)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.messages_sent, self.messages_dropped, self.bytes_sent)
    }

    /// Dropped-message breakdown: `(partition, endpoint down, link loss)`.
    /// The three always sum to the drop total of [`NetworkModel::stats`].
    pub fn drop_breakdown(&self) -> (u64, u64, u64) {
        (self.dropped_partition, self.dropped_down, self.dropped_loss)
    }

    /// Publishes the network counters into a [`MetricsRegistry`] under the
    /// `net.*` names, adding only the delta since the previous publish so
    /// repeated calls never double-count.
    pub fn publish_metrics(&mut self, metrics: &mut MetricsRegistry) {
        let current = [
            self.messages_sent,
            self.messages_dropped,
            self.dropped_partition,
            self.dropped_down,
            self.dropped_loss,
            self.bytes_sent,
        ];
        let names = [
            "net.messages_sent",
            "net.messages_dropped",
            "net.dropped.partition",
            "net.dropped.down",
            "net.dropped.loss",
            "net.bytes_sent",
        ];
        for ((name, now), before) in names.iter().zip(current).zip(self.published) {
            metrics.add(name, now - before);
        }
        self.published = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn constant_latency_is_exact() {
        let m = LatencyModel::Constant(SimDuration::from_millis(7));
        assert_eq!(m.sample(&mut rng()), SimDuration::from_millis(7));
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let m = LatencyModel::Uniform(SimDuration::from_millis(1), SimDuration::from_millis(3));
        let mut r = rng();
        for _ in 0..500 {
            let s = m.sample(&mut r);
            assert!(s >= SimDuration::from_millis(1) && s <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn exponential_latency_exceeds_base() {
        let m = LatencyModel::Exponential {
            base: SimDuration::from_millis(10),
            mean_extra: SimDuration::from_millis(5),
        };
        let mut r = rng();
        for _ in 0..200 {
            assert!(m.sample(&mut r) >= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn bandwidth_adds_transfer_time() {
        let mut net = NetworkModel::new(LinkConfig {
            latency: LatencyModel::Constant(SimDuration::ZERO),
            drop_probability: 0.0,
            bandwidth_bps: Some(1_000_000), // 1 MB/s
        });
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let d = net.transmit(a, b, 500_000, &mut rng()).delay().unwrap();
        assert_eq!(d.as_millis(), 500, "0.5 MB at 1 MB/s takes 500 ms");
    }

    #[test]
    fn partition_drops_both_directions() {
        let mut net = NetworkModel::new(LinkConfig::local());
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        net.partition(a, b);
        let mut r = rng();
        assert_eq!(net.transmit(a, b, 1, &mut r), Delivery::Dropped);
        assert_eq!(net.transmit(b, a, 1, &mut r), Delivery::Dropped);
        net.heal(a, b);
        assert!(net.transmit(a, b, 1, &mut r).delay().is_some());
    }

    #[test]
    fn down_endpoint_is_unreachable() {
        let mut net = NetworkModel::new(LinkConfig::local());
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        net.set_down(b, true);
        assert!(net.is_down(b));
        assert_eq!(net.transmit(a, b, 1, &mut rng()), Delivery::Dropped);
        net.set_down(b, false);
        assert!(net.transmit(a, b, 1, &mut rng()).delay().is_some());
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut net = NetworkModel::new(LinkConfig {
            latency: LatencyModel::Constant(SimDuration::ZERO),
            drop_probability: 0.3,
            bandwidth_bps: None,
        });
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let mut r = rng();
        let dropped = (0..5000)
            .filter(|_| net.transmit(a, b, 1, &mut r) == Delivery::Dropped)
            .count();
        assert!((1300..1700).contains(&dropped), "dropped {dropped} of 5000");
        let (sent, drop_count, _) = net.stats();
        assert_eq!(sent, 5000);
        assert_eq!(drop_count as usize, dropped);
    }

    #[test]
    fn per_link_override_takes_precedence() {
        let mut net = NetworkModel::new(LinkConfig::local());
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        net.set_link(
            a,
            b,
            LinkConfig {
                latency: LatencyModel::Constant(SimDuration::from_millis(99)),
                drop_probability: 0.0,
                bandwidth_bps: None,
            },
        );
        let mut r = rng();
        assert_eq!(
            net.transmit(a, b, 1, &mut r).delay().unwrap(),
            SimDuration::from_millis(99)
        );
        // Reverse direction still uses the default.
        assert_eq!(
            net.transmit(b, a, 1, &mut r).delay().unwrap(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn drop_breakdown_attributes_causes() {
        let mut net = NetworkModel::new(LinkConfig::local());
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let c = net.add_endpoint("c");
        let mut r = rng();
        net.partition(a, b);
        assert_eq!(net.transmit(a, b, 1, &mut r), Delivery::Dropped);
        net.heal(a, b);
        net.set_down(c, true);
        assert_eq!(net.transmit(a, c, 1, &mut r), Delivery::Dropped);
        net.set_down(c, false);
        net.set_extra_drop(a, b, 1.0);
        assert_eq!(
            net.transmit(b, a, 1, &mut r),
            Delivery::Dropped,
            "extra drop is symmetric"
        );
        net.clear_extra_drop(a, b);
        assert!(net.transmit(a, b, 1, &mut r).delay().is_some());
        assert_eq!(net.drop_breakdown(), (1, 1, 1));
        let (_, dropped, _) = net.stats();
        assert_eq!(dropped, 3, "breakdown sums to the total");
    }

    #[test]
    fn publish_metrics_adds_only_deltas() {
        let mut net = NetworkModel::new(LinkConfig::local());
        let a = net.add_endpoint("a");
        let b = net.add_endpoint("b");
        let mut r = rng();
        let mut m = MetricsRegistry::new();
        net.transmit(a, b, 10, &mut r);
        net.publish_metrics(&mut m);
        assert_eq!(m.counter("net.messages_sent"), 1);
        assert_eq!(m.counter("net.bytes_sent"), 10);
        // Publishing again without traffic adds nothing.
        net.publish_metrics(&mut m);
        assert_eq!(m.counter("net.messages_sent"), 1);
        net.partition(a, b);
        net.transmit(a, b, 5, &mut r);
        net.publish_metrics(&mut m);
        assert_eq!(m.counter("net.messages_sent"), 2);
        assert_eq!(m.counter("net.messages_dropped"), 1);
        assert_eq!(m.counter("net.dropped.partition"), 1);
        assert_eq!(m.counter("net.dropped.loss"), 0);
    }

    #[test]
    fn endpoint_names_are_tracked() {
        let mut net = NetworkModel::new(LinkConfig::default());
        let a = net.add_endpoint("alice");
        assert_eq!(net.endpoint_name(a), "alice");
        assert_eq!(net.endpoint_name(EndpointId(99)), "<unknown>");
        assert_eq!(net.endpoint_count(), 1);
    }
}
