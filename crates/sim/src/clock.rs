//! Logical simulation time.
//!
//! [`SimTime`] is an absolute instant (nanoseconds since simulation start)
//! and [`SimDuration`] a span between instants. [`Clock`] is a cheaply
//! clonable shared handle that components hold to observe and advance time.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::rc::Rc;

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a newtype over `u64`, giving the simulation roughly 584 years
/// of range — far beyond any experiment here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * 1_000_000_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 24 * 3_600 * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Integer division of the duration.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[allow(clippy::should_implement_trait)] // u64 divisor, not Div<Self>
    pub fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

/// A shared, cheaply clonable handle on the simulation's logical clock.
///
/// All components of one simulated world hold clones of the same `Clock`;
/// time only moves when the scenario driver (or the [`crate::Scheduler`])
/// advances it. The clock is monotone: attempts to move it backwards are
/// ignored.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Rc<Cell<SimTime>>,
}

impl Clock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.now.set(self.now.get() + d);
    }

    /// Moves the clock to `t` if `t` is not in the past (monotonicity).
    pub fn advance_to(&self, t: SimTime) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::from_hours(2).as_mins_test(), 120);
        assert_eq!(SimDuration::from_micros(1500).as_nanos(), 1_500_000);
    }

    impl SimDuration {
        fn as_mins_test(self) -> u64 {
            self.as_secs() / 60
        }
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimTime::from_secs(5), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX + SimDuration::from_secs(1),
            SimTime::MAX,
            "saturates at the horizon"
        );
        assert_eq!(t.saturating_since(SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn clock_is_shared_and_monotone() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(10));
        assert_eq!(b.now().as_millis(), 10);
        b.advance_to(SimTime::from_millis(5)); // in the past: ignored
        assert_eq!(a.now().as_millis(), 10);
        b.advance_to(SimTime::from_millis(25));
        assert_eq!(a.now().as_millis(), 25);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "t+1.000000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
