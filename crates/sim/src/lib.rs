//! # duc-sim — deterministic simulation kernel
//!
//! Every experiment in this workspace runs on a *deterministic* substrate:
//! a logical clock, a seeded pseudo-random number generator, a discrete-event
//! scheduler, a configurable network latency/fault model and a metrics
//! registry. Nothing in the simulation reads wall-clock time or OS entropy,
//! so a run is a pure function of its seed and parameters.
//!
//! The paper (Basile et al., ICDCS 2023) defers performance, scalability and
//! robustness evaluation to future work; this crate is the measurement bed on
//! which the sibling crates carry that evaluation out.
//!
//! ## Example
//!
//! ```
//! use duc_sim::{Clock, SimDuration, Rng};
//!
//! let clock = Clock::new();
//! clock.advance(SimDuration::from_millis(5));
//! let mut rng = Rng::seed_from_u64(42);
//! let sample = rng.next_u64();
//! assert_eq!(clock.now().as_millis(), 5);
//! // Deterministic: the same seed always yields the same stream.
//! assert_eq!(Rng::seed_from_u64(42).next_u64(), sample);
//! ```

pub mod clock;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod sched;

pub use clock::{Clock, SimDuration, SimTime};
pub use fault::{FaultPlan, FaultSpec};
pub use metrics::{Counter, Histogram, MetricsRegistry, TraceEvent, TraceRecorder};
pub use net::{EndpointId, LatencyModel, LinkConfig, NetworkModel};
pub use rng::Rng;
pub use sched::{EventId, Scheduler};
