//! Measurement primitives: counters, latency histograms and an event trace.
//!
//! Every experiment harness collects its numbers through a
//! [`MetricsRegistry`]; the bench `report` binary turns registries into the
//! tables of EXPERIMENTS.md.

use std::collections::BTreeMap;
use std::fmt;

use crate::clock::{SimDuration, SimTime};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// An exact-percentile histogram of durations.
///
/// Samples are stored raw (the experiments record at most a few hundred
/// thousand points), so quantiles are exact rather than approximated.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Records a raw nanosecond value.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.samples.push(nanos);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw recorded samples in nanoseconds, in insertion order until
    /// the first quantile query (which sorts in place). Exporters (the
    /// runtime metrics hub) mirror these into bucketed histograms.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// The exact `q`-quantile (`0.0 ..= 1.0`), or zero when empty.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let idx = ((self.samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        SimDuration::from_nanos(self.samples[idx])
    }

    /// Median (p50).
    pub fn median(&mut self) -> SimDuration {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> SimDuration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&mut self) -> SimDuration {
        self.quantile(0.0)
    }

    /// Largest sample, or zero when empty.
    pub fn max(&mut self) -> SimDuration {
        self.quantile(1.0)
    }

    /// One-line summary for reports.
    pub fn summary(&mut self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.len(),
            self.mean(),
            self.median(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

/// A named bundle of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the named counter, creating it on first use.
    pub fn incr(&mut self, name: &str) {
        self.counters.entry(name.to_string()).or_default().incr();
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Reads a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map(Counter::value).unwrap_or(0)
    }

    /// Records a duration sample under `name`.
    pub fn record(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Mutable access to a histogram (created on first use).
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Immutable access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.value()))
    }

    /// Iterates histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Merges another registry into this one (summing counters, appending
    /// samples).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(v.value());
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for &s in &h.samples {
                dst.record_nanos(s);
            }
        }
    }
}

/// One structured trace record: *who* did *what*, *when*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// The acting component (e.g. `"pod-manager:alice"`).
    pub actor: String,
    /// Short machine-readable kind (e.g. `"oracle.push_in"`).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {}",
            self.at, self.actor, self.kind, self.detail
        )
    }
}

/// An append-only trace of simulation events, used by tests to assert on
/// process structure (which hops happened, in which order) and by examples
/// to narrate runs.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceRecorder {
    /// Creates an enabled recorder.
    pub fn new() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled recorder (records nothing; for benches).
    pub fn disabled() -> Self {
        TraceRecorder {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event if enabled.
    pub fn record(
        &mut self,
        at: SimTime,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                actor: actor.into(),
                kind: kind.into(),
                detail: detail.into(),
            });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of the given kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Whether an event of `kind` was recorded.
    pub fn contains_kind(&self, kind: &str) -> bool {
        self.events.iter().any(|e| e.kind == kind)
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn histogram_quantiles_are_exact() {
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.len(), 100);
        // Index rounds half away from zero: (99 * 0.5).round() = 50 → 51 ms.
        assert_eq!(h.median().as_millis(), 51);
        assert_eq!(h.p95().as_millis(), 95);
        assert_eq!(h.min().as_millis(), 1);
        assert_eq!(h.max().as_millis(), 100);
        assert_eq!(h.mean().as_millis(), 50); // (1+...+100)/100 = 50.5, trunc
    }

    #[test]
    fn histogram_empty_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        m.incr("tx.submitted");
        m.add("tx.submitted", 2);
        m.record("e2e", SimDuration::from_millis(10));
        m.record("e2e", SimDuration::from_millis(20));
        assert_eq!(m.counter("tx.submitted"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histogram_mut("e2e").median().as_millis(), 20);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.histogram_names().count(), 1);
    }

    #[test]
    fn registry_merge_sums_and_appends() {
        let mut a = MetricsRegistry::new();
        a.add("n", 1);
        a.record("lat", SimDuration::from_millis(5));
        let mut b = MetricsRegistry::new();
        b.add("n", 2);
        b.record("lat", SimDuration::from_millis(15));
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram_mut("lat").len(), 2);
    }

    #[test]
    fn trace_records_in_order_and_filters() {
        let mut t = TraceRecorder::new();
        t.record(SimTime::from_millis(1), "pm:alice", "pod.create", "pod-0");
        t.record(
            SimTime::from_millis(2),
            "oracle",
            "oracle.push_in",
            "register_pod",
        );
        assert_eq!(t.events().len(), 2);
        assert!(t.contains_kind("oracle.push_in"));
        assert_eq!(t.of_kind("pod.create").count(), 1);
        let line = format!("{}", t.events()[0]);
        assert!(line.contains("pm:alice") && line.contains("pod.create"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = TraceRecorder::disabled();
        t.record(SimTime::ZERO, "x", "y", "z");
        assert!(t.events().is_empty());
    }
}
