//! Fault injection plans for the robustness experiments (E8).
//!
//! A [`FaultPlan`] declares, ahead of a run, *which* component fails, *when*,
//! and for *how long*. The scenario driver consults the plan while executing;
//! components themselves stay oblivious, exactly like production software.

use crate::clock::SimTime;
use crate::net::EndpointId;

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// The endpoint crashes at `from` and recovers at `until`
    /// (use [`SimTime::MAX`] for a permanent crash).
    Crash {
        /// Affected endpoint.
        endpoint: EndpointId,
        /// Crash instant (inclusive).
        from: SimTime,
        /// Recovery instant (exclusive).
        until: SimTime,
    },
    /// Bidirectional partition between two endpoints over a window.
    Partition {
        /// One side.
        a: EndpointId,
        /// Other side.
        b: EndpointId,
        /// Partition start (inclusive).
        from: SimTime,
        /// Partition end (exclusive).
        until: SimTime,
    },
}

impl FaultSpec {
    /// Whether this fault is active at instant `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        match self {
            FaultSpec::Crash { from, until, .. } | FaultSpec::Partition { from, until, .. } => {
                t >= *from && t < *until
            }
        }
    }
}

/// A declarative collection of faults for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash window for an endpoint.
    pub fn crash(mut self, endpoint: EndpointId, from: SimTime, until: SimTime) -> Self {
        self.faults.push(FaultSpec::Crash { endpoint, from, until });
        self
    }

    /// Adds a permanent crash starting at `from`.
    pub fn crash_forever(self, endpoint: EndpointId, from: SimTime) -> Self {
        self.crash(endpoint, from, SimTime::MAX)
    }

    /// Adds a partition window between two endpoints.
    pub fn partition(mut self, a: EndpointId, b: EndpointId, from: SimTime, until: SimTime) -> Self {
        self.faults.push(FaultSpec::Partition { a, b, from, until });
        self
    }

    /// Whether `endpoint` is crashed at `t`.
    pub fn is_crashed(&self, endpoint: EndpointId, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            FaultSpec::Crash { endpoint: e, .. } => *e == endpoint && f.active_at(t),
            _ => false,
        })
    }

    /// Whether the pair `(a, b)` is partitioned at `t` (order-insensitive).
    pub fn is_partitioned(&self, a: EndpointId, b: EndpointId, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            FaultSpec::Partition { a: x, b: y, .. } => {
                ((*x == a && *y == b) || (*x == b && *y == a)) && f.active_at(t)
            }
            _ => false,
        })
    }

    /// Whether communication `from → to` is possible at `t` under this plan.
    pub fn allows(&self, from: EndpointId, to: EndpointId, t: SimTime) -> bool {
        !self.is_crashed(from, t) && !self.is_crashed(to, t) && !self.is_partitioned(from, to, t)
    }

    /// All declared faults.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: EndpointId = EndpointId(0);
    const B: EndpointId = EndpointId(1);
    const C: EndpointId = EndpointId(2);

    #[test]
    fn crash_window_bounds_are_half_open() {
        let plan = FaultPlan::none().crash(A, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!plan.is_crashed(A, SimTime::from_secs(9)));
        assert!(plan.is_crashed(A, SimTime::from_secs(10)));
        assert!(plan.is_crashed(A, SimTime::from_secs(19)));
        assert!(!plan.is_crashed(A, SimTime::from_secs(20)));
        assert!(!plan.is_crashed(B, SimTime::from_secs(15)));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let plan = FaultPlan::none().crash_forever(A, SimTime::from_secs(5));
        assert!(plan.is_crashed(A, SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn partition_is_symmetric_and_windowed() {
        let plan =
            FaultPlan::none().partition(A, B, SimTime::from_secs(1), SimTime::from_secs(2));
        let t = SimTime::from_millis(1500);
        assert!(plan.is_partitioned(A, B, t));
        assert!(plan.is_partitioned(B, A, t));
        assert!(!plan.is_partitioned(A, C, t));
        assert!(!plan.is_partitioned(A, B, SimTime::from_secs(3)));
    }

    #[test]
    fn allows_combines_crash_and_partition() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(10), SimTime::from_secs(20))
            .partition(B, C, SimTime::from_secs(0), SimTime::from_secs(5));
        assert!(!plan.allows(A, B, SimTime::from_secs(15)), "A crashed");
        assert!(!plan.allows(B, A, SimTime::from_secs(15)), "target crashed");
        assert!(!plan.allows(B, C, SimTime::from_secs(3)), "partitioned");
        assert!(plan.allows(B, C, SimTime::from_secs(6)), "healed");
        assert!(plan.allows(A, B, SimTime::from_secs(25)), "recovered");
    }

    #[test]
    fn empty_plan_allows_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.allows(A, B, SimTime::ZERO));
    }

    #[test]
    fn multiple_overlapping_faults() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(0), SimTime::from_secs(10))
            .crash(A, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!(plan.is_crashed(A, SimTime::from_secs(12)));
        assert_eq!(plan.faults().len(), 2);
    }
}
