//! Fault injection plans for the robustness experiments (E8).
//!
//! A [`FaultPlan`] declares, ahead of a run, *which* component fails, *when*,
//! and for *how long*. The scenario driver consults the plan while executing;
//! components themselves stay oblivious, exactly like production software.
//!
//! Four fault classes cover the paper's §V-2 threat surface:
//!
//! - [`FaultSpec::Crash`] — an endpoint (pod manager, device, relay,
//!   gateway) is down for a window; every message to or from it is lost.
//! - [`FaultSpec::Partition`] — a bidirectional link cut between two
//!   endpoints.
//! - [`FaultSpec::DropWindow`] — a lossy window on a link pair: messages
//!   drop with a declared probability while the window is active.
//! - [`FaultSpec::ValidatorStall`] — a PoA validator misses its proposal
//!   slots for a window, stretching inclusion latency.
//!
//! Plans are plain data (`Eq`-comparable, no floats), so identically-seeded
//! chaos runs replay byte-identically. [`FaultPlan::random`] generates a
//! seeded random plan for the chaos harness; [`FaultPlan::boundaries`] and
//! [`FaultPlan::next_clear`] let an event-loop driver schedule fault
//! transitions and crash-window recovery wake-ups deterministically.

use std::collections::{BTreeMap, BTreeSet};

use crate::clock::{SimDuration, SimTime};
use crate::net::EndpointId;
use crate::rng::Rng;

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// The endpoint crashes at `from` and recovers at `until`
    /// (use [`SimTime::MAX`] for a permanent crash).
    Crash {
        /// Affected endpoint.
        endpoint: EndpointId,
        /// Crash instant (inclusive).
        from: SimTime,
        /// Recovery instant (exclusive).
        until: SimTime,
    },
    /// Bidirectional partition between two endpoints over a window.
    Partition {
        /// One side.
        a: EndpointId,
        /// Other side.
        b: EndpointId,
        /// Partition start (inclusive).
        from: SimTime,
        /// Partition end (exclusive).
        until: SimTime,
    },
    /// A lossy window on the bidirectional pair `a`↔`b`: messages drop
    /// with probability `per_mille`/1000 while the window is active.
    DropWindow {
        /// One side.
        a: EndpointId,
        /// Other side.
        b: EndpointId,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Drop probability in parts per thousand (kept integral so plans
        /// stay `Eq`-comparable and replayable).
        per_mille: u16,
    },
    /// A PoA validator misses its proposal slots over a window.
    ValidatorStall {
        /// Validator index.
        validator: usize,
        /// Stall start (inclusive).
        from: SimTime,
        /// Stall end (exclusive).
        until: SimTime,
    },
}

impl FaultSpec {
    /// Whether this fault is active at instant `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        let (from, until) = self.window();
        t >= from && t < until
    }

    /// The `[from, until)` window of this fault.
    pub fn window(&self) -> (SimTime, SimTime) {
        match self {
            FaultSpec::Crash { from, until, .. }
            | FaultSpec::Partition { from, until, .. }
            | FaultSpec::DropWindow { from, until, .. }
            | FaultSpec::ValidatorStall { from, until, .. } => (*from, *until),
        }
    }
}

/// Draws two endpoints with *distinct ids* from a possibly-weighted list
/// (a list may name an endpoint more than once to bias selection; a pair
/// fault between an endpoint and itself would block nothing).
fn distinct_pair(rng: &mut Rng, endpoints: &[EndpointId]) -> Option<(EndpointId, EndpointId)> {
    let a = *rng.choose(endpoints);
    let b = *rng.choose(endpoints);
    if b != a {
        return Some((a, b));
    }
    // Deterministic fallback: the first id different from `a`, if any.
    endpoints.iter().copied().find(|e| *e != a).map(|b| (a, b))
}

/// Normalizes an endpoint pair so unordered lookups agree.
fn pair(a: EndpointId, b: EndpointId) -> (EndpointId, EndpointId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A declarative collection of faults for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty (fault-free) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash window for an endpoint.
    pub fn crash(mut self, endpoint: EndpointId, from: SimTime, until: SimTime) -> Self {
        self.faults.push(FaultSpec::Crash {
            endpoint,
            from,
            until,
        });
        self
    }

    /// Adds a permanent crash starting at `from`.
    pub fn crash_forever(self, endpoint: EndpointId, from: SimTime) -> Self {
        self.crash(endpoint, from, SimTime::MAX)
    }

    /// Adds a partition window between two endpoints.
    pub fn partition(
        mut self,
        a: EndpointId,
        b: EndpointId,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.faults.push(FaultSpec::Partition { a, b, from, until });
        self
    }

    /// Adds a lossy window (`per_mille`/1000 drop probability) on the pair
    /// `a`↔`b`.
    pub fn drop_window(
        mut self,
        a: EndpointId,
        b: EndpointId,
        from: SimTime,
        until: SimTime,
        per_mille: u16,
    ) -> Self {
        self.faults.push(FaultSpec::DropWindow {
            a,
            b,
            from,
            until,
            per_mille,
        });
        self
    }

    /// Adds a proposal-stall window for validator `validator`.
    pub fn validator_stall(mut self, validator: usize, from: SimTime, until: SimTime) -> Self {
        self.faults.push(FaultSpec::ValidatorStall {
            validator,
            from,
            until,
        });
        self
    }

    /// Whether `endpoint` is crashed at `t`.
    pub fn is_crashed(&self, endpoint: EndpointId, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            FaultSpec::Crash { endpoint: e, .. } => *e == endpoint && f.active_at(t),
            _ => false,
        })
    }

    /// Whether the pair `(a, b)` is partitioned at `t` (order-insensitive).
    pub fn is_partitioned(&self, a: EndpointId, b: EndpointId, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            FaultSpec::Partition { a: x, b: y, .. } => {
                ((*x == a && *y == b) || (*x == b && *y == a)) && f.active_at(t)
            }
            _ => false,
        })
    }

    /// Whether validator `idx` is stalled at `t`.
    pub fn is_validator_stalled(&self, idx: usize, t: SimTime) -> bool {
        self.faults.iter().any(|f| match f {
            FaultSpec::ValidatorStall { validator, .. } => *validator == idx && f.active_at(t),
            _ => false,
        })
    }

    /// Whether communication `from → to` is possible at `t` under this plan
    /// (drop windows are probabilistic, so they never *block* a link).
    pub fn allows(&self, from: EndpointId, to: EndpointId, t: SimTime) -> bool {
        !self.is_crashed(from, t) && !self.is_crashed(to, t) && !self.is_partitioned(from, to, t)
    }

    /// The earliest instant `>= t` at which `from → to` communication is
    /// possible again, or `None` when a permanent fault blocks the pair
    /// forever.
    ///
    /// Drivers use this to *suspend* a blocked hop across a declared crash
    /// or partition window and resume exactly at recovery, instead of
    /// burning retry budget against a link that cannot deliver.
    pub fn next_clear(&self, from: EndpointId, to: EndpointId, t: SimTime) -> Option<SimTime> {
        let mut at = t;
        // Each iteration jumps past every window blocking `at`; the number
        // of jumps is bounded by the number of declared faults.
        for _ in 0..=self.faults.len() {
            if self.allows(from, to, at) {
                return Some(at);
            }
            let until = self
                .faults
                .iter()
                .filter(|f| f.active_at(at))
                .filter(|f| match f {
                    FaultSpec::Crash { endpoint, .. } => *endpoint == from || *endpoint == to,
                    FaultSpec::Partition { a, b, .. } => pair(*a, *b) == pair(from, to),
                    _ => false,
                })
                .map(|f| f.window().1)
                .max()?;
            if until == SimTime::MAX {
                return None;
            }
            at = until;
        }
        None
    }

    /// The crashed endpoints at `t`.
    pub fn crashed_at(&self, t: SimTime) -> BTreeSet<EndpointId> {
        self.faults
            .iter()
            .filter(|f| f.active_at(t))
            .filter_map(|f| match f {
                FaultSpec::Crash { endpoint, .. } => Some(*endpoint),
                _ => None,
            })
            .collect()
    }

    /// The partitioned pairs at `t` (normalized order).
    pub fn partitions_at(&self, t: SimTime) -> BTreeSet<(EndpointId, EndpointId)> {
        self.faults
            .iter()
            .filter(|f| f.active_at(t))
            .filter_map(|f| match f {
                FaultSpec::Partition { a, b, .. } => Some(pair(*a, *b)),
                _ => None,
            })
            .collect()
    }

    /// The lossy pairs at `t` with their effective drop probability in
    /// parts per thousand (the max across overlapping windows).
    pub fn lossy_at(&self, t: SimTime) -> BTreeMap<(EndpointId, EndpointId), u16> {
        let mut out = BTreeMap::new();
        for f in self.faults.iter().filter(|f| f.active_at(t)) {
            if let FaultSpec::DropWindow {
                a, b, per_mille, ..
            } = f
            {
                let entry = out.entry(pair(*a, *b)).or_insert(0u16);
                *entry = (*entry).max(*per_mille);
            }
        }
        out
    }

    /// The stalled validators at `t`.
    pub fn stalled_at(&self, t: SimTime) -> BTreeSet<usize> {
        self.faults
            .iter()
            .filter(|f| f.active_at(t))
            .filter_map(|f| match f {
                FaultSpec::ValidatorStall { validator, .. } => Some(*validator),
                _ => None,
            })
            .collect()
    }

    /// Every instant at which the plan's fault state changes (window starts
    /// and finite window ends), sorted and deduplicated. An event-loop
    /// driver schedules a transition at each boundary so component fault
    /// state flips at exactly the declared instants.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut out: Vec<SimTime> = self
            .faults
            .iter()
            .flat_map(|f| {
                let (from, until) = f.window();
                [Some(from), (until != SimTime::MAX).then_some(until)]
            })
            .flatten()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All declared faults.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a random-but-seeded plan over the given endpoints and
    /// validator count: up to `max_faults` windows of every class, each
    /// starting within `[start, start + horizon)` and bounded (no permanent
    /// faults, so every blocked hop eventually clears and chaos runs
    /// terminate by recovery).
    ///
    /// The plan is a pure function of the RNG state, so the chaos harness
    /// reproduces any failing case from its seed alone.
    pub fn random(
        rng: &mut Rng,
        endpoints: &[EndpointId],
        validators: usize,
        start: SimTime,
        horizon: SimDuration,
        max_faults: usize,
    ) -> FaultPlan {
        let mut plan = FaultPlan::none();
        if max_faults == 0 || horizon == SimDuration::ZERO {
            return plan;
        }
        let n = rng.gen_range(max_faults as u64 + 1) as usize;
        for _ in 0..n {
            let from = start + SimDuration::from_nanos(rng.gen_range(horizon.as_nanos().max(1)));
            // Windows span 10%–43% of the horizon: long enough to hit
            // in-flight hops, short enough that recovery happens well
            // before the per-hop retry deadline.
            let len = horizon.as_nanos() / 10 + rng.gen_range(horizon.as_nanos() / 3 + 1);
            let until = from + SimDuration::from_nanos(len);
            let kind = rng.gen_range(4);
            plan = match kind {
                0 if !endpoints.is_empty() => plan.crash(*rng.choose(endpoints), from, until),
                1 if endpoints.len() >= 2 => match distinct_pair(rng, endpoints) {
                    Some((a, b)) => plan.partition(a, b, from, until),
                    None => plan,
                },
                2 if endpoints.len() >= 2 => {
                    let per_mille = 100 + rng.gen_range(600) as u16;
                    match distinct_pair(rng, endpoints) {
                        Some((a, b)) => plan.drop_window(a, b, from, until, per_mille),
                        None => plan,
                    }
                }
                3 if validators > 0 => {
                    plan.validator_stall(rng.gen_range(validators as u64) as usize, from, until)
                }
                _ => plan,
            };
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: EndpointId = EndpointId(0);
    const B: EndpointId = EndpointId(1);
    const C: EndpointId = EndpointId(2);

    #[test]
    fn crash_window_bounds_are_half_open() {
        let plan = FaultPlan::none().crash(A, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!plan.is_crashed(A, SimTime::from_secs(9)));
        assert!(plan.is_crashed(A, SimTime::from_secs(10)));
        assert!(plan.is_crashed(A, SimTime::from_secs(19)));
        assert!(!plan.is_crashed(A, SimTime::from_secs(20)));
        assert!(!plan.is_crashed(B, SimTime::from_secs(15)));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let plan = FaultPlan::none().crash_forever(A, SimTime::from_secs(5));
        assert!(plan.is_crashed(A, SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn partition_is_symmetric_and_windowed() {
        let plan = FaultPlan::none().partition(A, B, SimTime::from_secs(1), SimTime::from_secs(2));
        let t = SimTime::from_millis(1500);
        assert!(plan.is_partitioned(A, B, t));
        assert!(plan.is_partitioned(B, A, t));
        assert!(!plan.is_partitioned(A, C, t));
        assert!(!plan.is_partitioned(A, B, SimTime::from_secs(3)));
    }

    #[test]
    fn allows_combines_crash_and_partition() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(10), SimTime::from_secs(20))
            .partition(B, C, SimTime::from_secs(0), SimTime::from_secs(5));
        assert!(!plan.allows(A, B, SimTime::from_secs(15)), "A crashed");
        assert!(!plan.allows(B, A, SimTime::from_secs(15)), "target crashed");
        assert!(!plan.allows(B, C, SimTime::from_secs(3)), "partitioned");
        assert!(plan.allows(B, C, SimTime::from_secs(6)), "healed");
        assert!(plan.allows(A, B, SimTime::from_secs(25)), "recovered");
    }

    #[test]
    fn empty_plan_allows_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.allows(A, B, SimTime::ZERO));
    }

    #[test]
    fn multiple_overlapping_faults() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(0), SimTime::from_secs(10))
            .crash(A, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!(plan.is_crashed(A, SimTime::from_secs(12)));
        assert_eq!(plan.faults().len(), 2);
    }

    #[test]
    fn next_clear_jumps_past_chained_windows() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(10), SimTime::from_secs(20))
            .partition(A, B, SimTime::from_secs(18), SimTime::from_secs(30))
            .crash(B, SimTime::from_secs(29), SimTime::from_secs(35));
        // Clear before any window.
        assert_eq!(
            plan.next_clear(A, B, SimTime::from_secs(5)),
            Some(SimTime::from_secs(5))
        );
        // Inside the chain: crash → partition → peer crash, clear at 35 s.
        assert_eq!(
            plan.next_clear(A, B, SimTime::from_secs(12)),
            Some(SimTime::from_secs(35))
        );
        // An uninvolved pair is never blocked.
        assert_eq!(
            plan.next_clear(A, C, SimTime::from_secs(12)),
            Some(SimTime::from_secs(20))
        );
    }

    #[test]
    fn next_clear_reports_permanent_blocks() {
        let plan = FaultPlan::none().crash_forever(A, SimTime::from_secs(5));
        assert_eq!(plan.next_clear(A, B, SimTime::from_secs(10)), None);
        assert_eq!(
            plan.next_clear(B, C, SimTime::from_secs(10)),
            Some(SimTime::from_secs(10))
        );
    }

    #[test]
    fn drop_windows_and_stalls_are_reported() {
        let plan = FaultPlan::none()
            .drop_window(A, B, SimTime::from_secs(1), SimTime::from_secs(9), 300)
            .drop_window(B, A, SimTime::from_secs(5), SimTime::from_secs(9), 500)
            .validator_stall(2, SimTime::from_secs(3), SimTime::from_secs(7));
        let t = SimTime::from_secs(6);
        assert_eq!(
            plan.lossy_at(t).get(&(A, B)),
            Some(&500),
            "max over overlapping windows"
        );
        assert!(plan.is_validator_stalled(2, t));
        assert!(!plan.is_validator_stalled(0, t));
        assert_eq!(plan.stalled_at(t).len(), 1);
        // Drop windows never *block* the link.
        assert!(plan.allows(A, B, t));
        assert_eq!(plan.next_clear(A, B, t), Some(t));
    }

    #[test]
    fn boundaries_are_sorted_and_deduplicated() {
        let plan = FaultPlan::none()
            .crash(A, SimTime::from_secs(10), SimTime::from_secs(20))
            .partition(A, B, SimTime::from_secs(20), SimTime::from_secs(25))
            .crash_forever(B, SimTime::from_secs(10));
        assert_eq!(
            plan.boundaries(),
            vec![
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(25)
            ],
            "MAX end of the permanent crash is omitted"
        );
    }

    #[test]
    fn random_plans_are_seeded_and_bounded() {
        let eps = [A, B, C];
        let start = SimTime::from_secs(10);
        let horizon = SimDuration::from_secs(60);
        let mut r1 = Rng::seed_from_u64(7);
        let mut r2 = Rng::seed_from_u64(7);
        let p1 = FaultPlan::random(&mut r1, &eps, 5, start, horizon, 6);
        let p2 = FaultPlan::random(&mut r2, &eps, 5, start, horizon, 6);
        assert_eq!(p1, p2, "same seed, same plan");
        for f in p1.faults() {
            let (from, until) = f.window();
            assert!(from >= start && from < start + horizon);
            assert!(until != SimTime::MAX, "no permanent faults in chaos plans");
            assert!(until > from);
        }
        // Different seeds explore different plans (overwhelmingly likely).
        let mut r3 = Rng::seed_from_u64(8);
        let p3 = FaultPlan::random(&mut r3, &eps, 5, start, horizon, 6);
        let mut r4 = Rng::seed_from_u64(9);
        let p4 = FaultPlan::random(&mut r4, &eps, 5, start, horizon, 6);
        assert!(p1 != p3 || p1 != p4, "seeds vary the plan");
    }
}
