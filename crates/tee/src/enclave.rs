//! The enclave: measured identity and key material.

use duc_crypto::hmac::derive_key;
use duc_crypto::{hash_parts, Digest, KeyPair, PublicKey, Signature};

/// A simulated hardware enclave.
///
/// Key material is derived deterministically from the device seed and the
/// code measurement, mirroring real TEEs where sealing keys are bound to
/// the measured code identity: a *different* trusted application on the
/// same device cannot unseal this application's data.
#[derive(Debug, Clone)]
pub struct Enclave {
    device: String,
    measurement: Digest,
    attestation_keys: KeyPair,
    sealing_key: [u8; 32],
}

impl Enclave {
    /// Creates an enclave for `device` running code with the given
    /// `code_identity` (hashed into the measurement).
    pub fn new(device: impl Into<String>, code_identity: &[u8]) -> Enclave {
        let device = device.into();
        let measurement = hash_parts(&[b"duc/enclave-measurement", code_identity]);
        let seed = hash_parts(&[
            b"duc/enclave-seed",
            device.as_bytes(),
            measurement.as_bytes(),
        ]);
        let attestation_keys = KeyPair::from_seed(seed.as_bytes());
        let sealing_key = *derive_key(seed.as_bytes(), b"tee/sealing").as_bytes();
        Enclave {
            device,
            measurement,
            attestation_keys,
            sealing_key,
        }
    }

    /// The device name.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The code measurement.
    pub fn measurement(&self) -> Digest {
        self.measurement
    }

    /// The attestation public key (registered on-chain with each copy).
    pub fn attestation_public_key(&self) -> PublicKey {
        self.attestation_keys.public()
    }

    /// Signs bytes with the attestation key (compliance evidence).
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.attestation_keys.sign(message)
    }

    /// The sealing key (crate-internal: only trusted storage may see it).
    pub(crate) fn sealing_key(&self) -> [u8; 32] {
        self.sealing_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_deterministic() {
        let a = Enclave::new("alice-laptop", b"trusted-app-v1");
        let b = Enclave::new("alice-laptop", b"trusted-app-v1");
        assert_eq!(a.measurement(), b.measurement());
        assert_eq!(a.attestation_public_key(), b.attestation_public_key());
    }

    #[test]
    fn different_code_different_measurement_and_keys() {
        let v1 = Enclave::new("alice-laptop", b"trusted-app-v1");
        let v2 = Enclave::new("alice-laptop", b"trusted-app-v2");
        assert_ne!(v1.measurement(), v2.measurement());
        assert_ne!(v1.attestation_public_key(), v2.attestation_public_key());
        assert_ne!(
            v1.sealing_key(),
            v2.sealing_key(),
            "sealing bound to code identity"
        );
    }

    #[test]
    fn different_devices_different_keys() {
        let a = Enclave::new("alice-laptop", b"app");
        let b = Enclave::new("bob-laptop", b"app");
        assert_eq!(
            a.measurement(),
            b.measurement(),
            "same code, same measurement"
        );
        assert_ne!(a.attestation_public_key(), b.attestation_public_key());
    }

    #[test]
    fn signatures_verify_under_attestation_key() {
        let e = Enclave::new("d", b"app");
        let sig = e.sign(b"evidence");
        assert!(e.attestation_public_key().verify(b"evidence", &sig).is_ok());
        assert!(e
            .attestation_public_key()
            .verify(b"tampered", &sig)
            .is_err());
    }
}
