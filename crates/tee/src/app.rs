//! The trusted application: policy-mediated access to sealed copies.

use duc_crypto::{hash_parts, Digest};
use duc_intern::{Interner, Sym, SymMap};
use duc_policy::compliance::{AccessRecord, CopyState};
use duc_policy::{
    compile, Action, Decision, DenyReason, Duty, PolicyEngine, PolicyProgram, Purpose,
    UsageContext, UsagePolicy,
};
use duc_sim::SimTime;

use crate::enclave::Enclave;
use crate::storage::TrustedDataStorage;

/// An internal trusted-application invariant failure: the copy table and
/// the sealed storage disagree. These are *permanent* faults (a damaged
/// enclave state cannot heal by retrying), so the driver's
/// `is_transient()` classification reports them as not-retryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// A live copy's sealed bytes vanished from trusted storage.
    SealedCopyMissing {
        /// The affected resource.
        resource: String,
    },
    /// A copy listed in the table has no entry when re-read.
    CopyStateMissing {
        /// The affected resource.
        resource: String,
    },
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::SealedCopyMissing { resource } => {
                write!(f, "sealed bytes missing for live copy of {resource}")
            }
            TeeError::CopyStateMissing { resource } => {
                write!(f, "copy state missing for {resource}")
            }
        }
    }
}

impl std::error::Error for TeeError {}

/// Why a local access failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// No copy of the resource is held (never stored, or already deleted).
    NoCopy,
    /// The policy engine denied the use.
    Denied(Vec<DenyReason>),
    /// The trusted application's own state is damaged.
    Tee(TeeError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::NoCopy => f.write_str("no local copy"),
            AccessError::Denied(reasons) => {
                write!(f, "denied:")?;
                for r in reasons {
                    write!(f, " {r};")?;
                }
                Ok(())
            }
            AccessError::Tee(e) => write!(f, "trusted application fault: {e}"),
        }
    }
}

impl std::error::Error for AccessError {}

impl From<TeeError> for AccessError {
    fn from(e: TeeError) -> Self {
        AccessError::Tee(e)
    }
}

/// An obligation the trusted application executed autonomously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnforcementAction {
    /// The copy was deleted (retention/expiry obligation).
    Deleted {
        /// Which resource.
        resource: String,
        /// When.
        at: SimTime,
        /// Why (human-readable, e.g. "retention expired").
        reason: String,
    },
    /// The owner must be notified (the oracle layer delivers it).
    NotifyOwner {
        /// Which resource.
        resource: String,
        /// Deadline for the notification.
        by: SimTime,
    },
}

/// A self-audit produced for monitoring (paper process 6). The oracle layer
/// wraps this in an on-chain evidence submission signed by the enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageReport {
    /// The audited resource.
    pub resource: String,
    /// The reporting device.
    pub device: String,
    /// Policy version the device currently enforces.
    pub policy_version: u64,
    /// The device's compliance verdict.
    pub compliant: bool,
    /// Violation descriptions (empty when compliant).
    pub violations: Vec<String>,
    /// Digest over the full usage log (tamper-evident evidence).
    pub log_digest: Digest,
    /// Total accesses performed.
    pub accesses: u64,
    /// Whether the copy still exists.
    pub copy_alive: bool,
}

/// A memoized decision for one `(action, purpose[, access_count])`
/// request shape, valid until the program's next transition instant.
#[derive(Debug, Clone)]
struct CachedDecision {
    action: Action,
    purpose: Purpose,
    /// The access count the decision was computed for — compared only
    /// when the program is count-sensitive.
    access_count: u64,
    decision: Decision,
    /// First instant at which the decision can differ (`None` = never).
    valid_until: Option<SimTime>,
}

/// What this device last recorded on-chain for a resource (monitoring
/// evidence), so an unchanged copy can *reaffirm* instead of resubmitting
/// the full evidence in later rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedEvidence {
    /// The round the evidence answered.
    pub round: u64,
    /// The usage-log digest it carried.
    pub digest: Digest,
    /// The verdict it carried.
    pub compliant: bool,
}

#[derive(Debug, Clone)]
struct CopyEntry {
    policy: UsagePolicy,
    /// The policy compiled against the engine's taxonomy — recompiled on
    /// every policy update, serving the access hot path.
    program: PolicyProgram,
    /// The decision served to repeated identical requests until the
    /// program's next transition (or an access-count change when the
    /// program is count-sensitive).
    cached: Option<CachedDecision>,
    state: CopyState,
    /// When the currently-enforced policy version was applied locally
    /// (the retention deadline can never precede this instant).
    policy_applied_at: SimTime,
    /// Every policy version ever enforced, with its local application
    /// time — the audit replays each access against the version in force
    /// *at access time* (a policy narrowed later does not retroactively
    /// incriminate past, then-legal uses).
    history: Vec<(SimTime, UsagePolicy)>,
    access_count: u64,
    /// The evidence last recorded on-chain for this copy, if any.
    last_reported: Option<ReportedEvidence>,
}

impl CopyEntry {
    fn policy_in_force_at(&self, at: SimTime) -> &UsagePolicy {
        self.history
            .iter()
            .rev()
            .find(|(applied, _)| *applied <= at)
            .map(|(_, p)| p)
            .unwrap_or(&self.policy)
    }
}

/// The trusted application running inside an enclave.
#[derive(Debug, Clone)]
pub struct TrustedApplication {
    enclave: Enclave,
    storage: TrustedDataStorage,
    engine: PolicyEngine,
    holder_webid: String,
    /// Resource-name table: each copy id is interned once; every lookup
    /// after that compares a `u32` symbol instead of re-hashing an IRI.
    names: Interner,
    /// The flat copy registry, keyed by interned resource symbols.
    copies: SymMap<CopyEntry>,
    /// Accesses served from the per-copy decision cache.
    cache_hits: u64,
    /// Accesses that recompiled or re-evaluated the decision.
    cache_misses: u64,
}

impl TrustedApplication {
    /// Creates a trusted application for `holder_webid` on `enclave`.
    pub fn new(enclave: Enclave, holder_webid: impl Into<String>) -> TrustedApplication {
        TrustedApplication {
            enclave,
            storage: TrustedDataStorage::new(),
            engine: PolicyEngine::default(),
            holder_webid: holder_webid.into(),
            names: Interner::new(),
            copies: SymMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Replaces the policy engine (custom purpose taxonomies). Compiled
    /// programs of existing copies are rebuilt against the new taxonomy.
    pub fn with_engine(mut self, engine: PolicyEngine) -> TrustedApplication {
        self.engine = engine;
        for entry in self.copies.values_mut() {
            entry.program = compile(&entry.policy, self.engine.taxonomy());
            entry.cached = None;
        }
        self
    }

    /// Decisions served from the per-copy cache vs re-evaluated
    /// (observability for the deadline-enforcement experiments).
    pub fn decision_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The enclave identity.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The holder's WebID.
    pub fn holder(&self) -> &str {
        &self.holder_webid
    }

    /// The sealed storage (host-visible surface, for the privacy tests).
    pub fn storage(&self) -> &TrustedDataStorage {
        &self.storage
    }

    /// Stores a freshly retrieved resource copy under its policy
    /// (the tail of paper process 4).
    pub fn store_resource(
        &mut self,
        resource: impl Into<String>,
        bytes: &[u8],
        policy: UsagePolicy,
        now: SimTime,
    ) {
        let resource = resource.into();
        self.storage.seal(&self.enclave, &resource, bytes);
        let program = compile(&policy, self.engine.taxonomy());
        let sym = self.names.intern(&resource);
        self.copies.insert(
            sym,
            CopyEntry {
                state: CopyState::new(resource.clone(), self.holder_webid.clone(), now),
                history: vec![(now, policy.clone())],
                policy,
                program,
                cached: None,
                policy_applied_at: now,
                access_count: 0,
                last_reported: None,
            },
        );
    }

    /// Looks up the entry for an already-interned resource, if any.
    fn entry(&self, resource: &str) -> Option<&CopyEntry> {
        self.copies.get(self.names.get(resource)?)
    }

    /// Whether a live copy of `resource` is held.
    pub fn has_copy(&self, resource: &str) -> bool {
        self.entry(resource)
            .map(|e| e.state.deleted_at.is_none())
            .unwrap_or(false)
    }

    /// The locally enforced policy version for `resource`.
    pub fn policy_version(&self, resource: &str) -> Option<u64> {
        self.entry(resource).map(|e| e.policy.version)
    }

    /// The resources with copies (live or audited-deleted), in the order
    /// they were first stored.
    pub fn resources(&self) -> impl Iterator<Item = &str> {
        self.copies.keys().map(|sym| self.names.resolve(sym))
    }

    fn effective_due(entry: &CopyEntry) -> Option<SimTime> {
        entry
            .program
            .retention_bound()
            .map(|b| (entry.state.acquired_at + b).max(entry.policy_applied_at))
    }

    fn enforce_entry(
        resource: &str,
        entry: &mut CopyEntry,
        storage: &mut TrustedDataStorage,
        now: SimTime,
        actions: &mut Vec<EnforcementAction>,
    ) {
        if entry.state.deleted_at.is_some() {
            return;
        }
        let retention_due = Self::effective_due(entry);
        let expiry_due = entry.policy.expiry_bound();
        let overdue = retention_due.map(|d| now >= d).unwrap_or(false);
        let expired = expiry_due.map(|d| now >= d).unwrap_or(false);
        if overdue || expired {
            storage.erase(resource);
            entry.state.deleted_at = Some(now);
            actions.push(EnforcementAction::Deleted {
                resource: resource.to_string(),
                at: now,
                reason: if overdue {
                    "retention window elapsed".to_string()
                } else {
                    "absolute expiry passed".to_string()
                },
            });
        }
    }

    /// Performs a policy-mediated access to the copy.
    ///
    /// This is the *only* way to obtain resource bytes: the request is
    /// evaluated against the current policy (ongoing authorization), the
    /// access is logged, and obligations are enforced lazily first.
    ///
    /// # Errors
    /// [`AccessError::NoCopy`] when no live copy exists (possibly because
    /// this very call deleted an overdue copy), [`AccessError::Denied`]
    /// with the engine's reasons otherwise.
    pub fn access(
        &mut self,
        resource: &str,
        action: Action,
        purpose: Purpose,
        now: SimTime,
    ) -> Result<Vec<u8>, AccessError> {
        // Lazy obligation sweep on the touched entry first.
        let mut actions = Vec::new();
        let sym = self.names.get(resource).ok_or(AccessError::NoCopy)?;
        if let Some(entry) = self.copies.get_mut(sym) {
            Self::enforce_entry(resource, entry, &mut self.storage, now, &mut actions);
        }
        let entry = self.copies.get_mut(sym).ok_or(AccessError::NoCopy)?;
        if entry.state.deleted_at.is_some() {
            return Err(AccessError::NoCopy);
        }
        let ctx = UsageContext {
            consumer: self.holder_webid.clone(),
            action,
            purpose: purpose.clone(),
            now,
            acquired_at: entry.state.acquired_at,
            access_count: entry.access_count + 1,
        };
        // Serve the request off the cached decision when the request shape
        // matches and no transition instant has passed; otherwise evaluate
        // the compiled program and memoize the result together with the
        // next instant it can change.
        let cached = entry.cached.as_ref().filter(|c| {
            c.action == ctx.action
                && c.purpose == ctx.purpose
                && (!entry.program.count_sensitive() || c.access_count == ctx.access_count)
                && c.valid_until.is_none_or(|until| now < until)
        });
        let decision = match cached {
            Some(hit) => {
                self.cache_hits += 1;
                hit.decision.clone()
            }
            None => {
                self.cache_misses += 1;
                let decision = entry.program.decide(&ctx);
                entry.cached = Some(CachedDecision {
                    action: ctx.action,
                    purpose: ctx.purpose.clone(),
                    access_count: ctx.access_count,
                    decision: decision.clone(),
                    valid_until: entry.program.next_transition(&ctx),
                });
                decision
            }
        };
        match decision {
            Decision::Permit => {
                entry.access_count += 1;
                entry.state.log.push(AccessRecord {
                    at: now,
                    action,
                    purpose,
                    agent: self.holder_webid.clone(),
                });
                let bytes = self
                    .storage
                    .unseal(&self.enclave, resource)
                    .ok_or_else(|| TeeError::SealedCopyMissing {
                        resource: resource.to_string(),
                    })?;
                Ok(bytes)
            }
            Decision::Deny(reasons) => Err(AccessError::Denied(reasons)),
        }
    }

    /// Applies a pushed policy update (paper process 5): replaces the local
    /// policy and executes any consequent obligations immediately.
    ///
    /// Stale or mismatched updates are ignored (returned action list is
    /// empty and the version unchanged).
    pub fn apply_policy_update(
        &mut self,
        resource: &str,
        new_policy: UsagePolicy,
        now: SimTime,
    ) -> Vec<EnforcementAction> {
        let mut actions = Vec::new();
        let Some(entry) = self
            .names
            .get(resource)
            .and_then(|s| self.copies.get_mut(s))
        else {
            return actions;
        };
        if new_policy.resource != entry.policy.resource
            || new_policy.version <= entry.policy.version
        {
            return actions;
        }
        entry.history.push((now, new_policy.clone()));
        entry.program = compile(&new_policy, self.engine.taxonomy());
        entry.cached = None;
        entry.policy = new_policy;
        entry.policy_applied_at = now;
        Self::enforce_entry(resource, entry, &mut self.storage, now, &mut actions);
        // Notification duties surface to the oracle layer.
        for duty in &entry.policy.duties {
            if let Duty::NotifyOwnerWithin(window) = duty {
                actions.push(EnforcementAction::NotifyOwner {
                    resource: resource.to_string(),
                    by: now + *window,
                });
            }
        }
        actions
    }

    /// Sweeps every copy's obligations (the TEE's periodic timer; also what
    /// a polling-based enforcement baseline calls — ablation E11).
    ///
    /// # Errors
    /// [`TeeError::CopyStateMissing`] when the copy table is damaged (an
    /// entry listed by key lookup has vanished on re-read) — a permanent
    /// fault the driver classifies as non-transient.
    pub fn sweep(&mut self, now: SimTime) -> Result<Vec<EnforcementAction>, TeeError> {
        let mut actions = Vec::new();
        // Enforce in resource-name order: the downstream unregister_copy
        // transactions must stay in the exact order the pre-interning
        // (BTreeMap-keyed) registry produced.
        let mut order: Vec<Sym> = self.copies.keys().collect();
        order.sort_by(|a, b| self.names.resolve(*a).cmp(self.names.resolve(*b)));
        for sym in order {
            let resource = self.names.resolve_arc(sym);
            let entry = self
                .copies
                .get_mut(sym)
                .ok_or_else(|| TeeError::CopyStateMissing {
                    resource: resource.to_string(),
                })?;
            Self::enforce_entry(&resource, entry, &mut self.storage, now, &mut actions);
        }
        Ok(actions)
    }

    /// Enforces the obligations of a *single* copy at `now` — what the
    /// driver's obligation scheduler calls at each registered deadline,
    /// instead of sweeping every copy.
    ///
    /// # Errors
    /// [`TeeError::CopyStateMissing`] for an unknown resource.
    pub fn enforce_due(
        &mut self,
        resource: &str,
        now: SimTime,
    ) -> Result<Vec<EnforcementAction>, TeeError> {
        let entry = self
            .names
            .get(resource)
            .and_then(|s| self.copies.get_mut(s))
            .ok_or_else(|| TeeError::CopyStateMissing {
                resource: resource.to_string(),
            })?;
        let mut actions = Vec::new();
        Self::enforce_entry(resource, entry, &mut self.storage, now, &mut actions);
        Ok(actions)
    }

    /// The next retention/expiry deadline of one live copy (`None` when
    /// the copy is gone or unconstrained) — what the obligation scheduler
    /// registers wakeups at.
    pub fn next_deadline_for(&self, resource: &str) -> Option<SimTime> {
        let entry = self.entry(resource)?;
        if entry.state.deleted_at.is_some() {
            return None;
        }
        entry
            .program
            .next_deadline(entry.state.acquired_at, entry.policy_applied_at)
    }

    /// The evidence this device last recorded on-chain for `resource`.
    pub fn last_reported(&self, resource: &str) -> Option<&ReportedEvidence> {
        self.entry(resource)?.last_reported.as_ref()
    }

    /// Remembers the evidence just recorded on-chain for `resource`, so a
    /// later round with an unchanged usage log can reaffirm it instead of
    /// resubmitting.
    pub fn note_reported(&mut self, resource: &str, reported: ReportedEvidence) {
        if let Some(entry) = self
            .names
            .get(resource)
            .and_then(|s| self.copies.get_mut(s))
        {
            entry.last_reported = Some(reported);
        }
    }

    /// Deletes a copy voluntarily.
    pub fn delete(&mut self, resource: &str, now: SimTime) -> bool {
        match self
            .names
            .get(resource)
            .and_then(|s| self.copies.get_mut(s))
        {
            Some(entry) if entry.state.deleted_at.is_none() => {
                self.storage.erase(resource);
                entry.state.deleted_at = Some(now);
                true
            }
            _ => false,
        }
    }

    /// The earliest instant at which some live copy's obligation (retention
    /// or expiry) falls due — the TEE's internal deletion timer.
    pub fn next_obligation_deadline(&self) -> Option<SimTime> {
        self.copies
            .values()
            .filter(|e| e.state.deleted_at.is_none())
            .filter_map(|e| {
                e.program
                    .next_deadline(e.state.acquired_at, e.policy_applied_at)
            })
            .min()
    }

    /// Produces the self-audit for a monitoring round (paper process 6).
    ///
    /// Each logged access is replayed against the policy version in force
    /// *at the time of the access* (narrowing a policy later does not
    /// retroactively incriminate then-legal uses); retention and expiry are
    /// judged against the current policy's *effective* deadline (policy
    /// tightenings only bind from their local application time).
    pub fn report(&self, resource: &str, now: SimTime) -> Option<UsageReport> {
        let entry = self.entry(resource)?;
        let mut violations: Vec<String> = Vec::new();
        for (i, record) in entry.state.log.iter().enumerate() {
            let policy = entry.policy_in_force_at(record.at);
            let ctx = UsageContext {
                consumer: record.agent.clone(),
                action: record.action,
                purpose: record.purpose.clone(),
                now: record.at,
                acquired_at: entry.state.acquired_at,
                access_count: (i + 1) as u64,
            };
            if !self.engine.evaluate(policy, &ctx).is_permit() {
                violations.push(format!(
                    "unauthorized access at {} ({} for {})",
                    record.at, record.action, record.purpose
                ));
            }
        }
        if let Some(due) = Self::effective_due(entry) {
            let violated = match entry.state.deleted_at {
                Some(deleted) => deleted > due,
                None => now > due,
            };
            if violated {
                violations.push(format!(
                    "retention violated: copy was due for deletion at {due}"
                ));
            }
        }
        if let Some(expiry) = entry.policy.expiry_bound() {
            let effective = expiry.max(entry.policy_applied_at);
            let violated = match entry.state.deleted_at {
                Some(deleted) => deleted > effective,
                None => now > effective,
            };
            if violated {
                violations.push(format!("expiry violated: copy outlived {effective}"));
            }
        }
        let mut log_rows: Vec<Vec<u8>> = Vec::with_capacity(entry.state.log.len());
        for record in &entry.state.log {
            let mut row = Vec::new();
            row.extend_from_slice(&record.at.as_nanos().to_le_bytes());
            row.push(record.action as u8);
            row.extend_from_slice(record.purpose.as_str().as_bytes());
            row.push(0);
            row.extend_from_slice(record.agent.as_bytes());
            log_rows.push(row);
        }
        let parts: Vec<&[u8]> = std::iter::once(&b"duc/usage-log"[..])
            .chain(log_rows.iter().map(Vec::as_slice))
            .collect();
        Some(UsageReport {
            resource: resource.to_string(),
            device: self.enclave.device().to_string(),
            policy_version: entry.policy.version,
            compliant: violations.is_empty(),
            violations,
            log_digest: hash_parts(&parts),
            accesses: entry.access_count,
            copy_alive: entry.state.deleted_at.is_none(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_policy::{Constraint, Rule};
    use duc_sim::SimDuration;

    const RES: &str = "https://bob.pod/data/medical.ttl";
    const ALICE: &str = "https://alice.id/me";

    fn medical_policy() -> UsagePolicy {
        UsagePolicy::builder(format!("{RES}#policy"), RES, "https://bob.id/me")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
            )
            .duty(Duty::LogAccesses)
            .build()
    }

    fn retention_policy(days: u64) -> UsagePolicy {
        UsagePolicy::builder(format!("{RES}#policy"), RES, "https://bob.id/me")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(days))),
            )
            .duty(Duty::DeleteWithin(SimDuration::from_days(days)))
            .build()
    }

    fn app() -> TrustedApplication {
        TrustedApplication::new(Enclave::new("alice-laptop", b"trusted-app-v1"), ALICE)
    }

    fn t(days: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(days)
    }

    #[test]
    fn store_and_access_with_right_purpose() {
        let mut app = app();
        app.store_resource(RES, b"patient rows", medical_policy(), t(0));
        let bytes = app
            .access(RES, Action::Read, Purpose::new("medical-research"), t(1))
            .expect("permitted");
        assert_eq!(bytes, b"patient rows");
        assert!(app.has_copy(RES));
    }

    #[test]
    fn wrong_purpose_is_denied_and_unlogged() {
        let mut app = app();
        app.store_resource(RES, b"data", medical_policy(), t(0));
        let err = app
            .access(RES, Action::Read, Purpose::new("marketing"), t(1))
            .unwrap_err();
        match err {
            AccessError::Denied(reasons) => {
                assert!(matches!(reasons[0], DenyReason::PurposeNotAllowed(_)))
            }
            other => panic!("unexpected {other:?}"),
        }
        let report = app.report(RES, t(1)).unwrap();
        assert_eq!(report.accesses, 0, "denied accesses are not counted");
        assert!(report.compliant, "a denied attempt is not a violation");
    }

    #[test]
    fn missing_copy_errors() {
        let mut app = app();
        assert_eq!(
            app.access("urn:none", Action::Read, Purpose::any(), t(0))
                .unwrap_err(),
            AccessError::NoCopy
        );
    }

    #[test]
    fn retention_enforced_lazily_on_access() {
        let mut app = app();
        app.store_resource(RES, b"web logs", retention_policy(7), t(0));
        assert!(app.access(RES, Action::Read, Purpose::any(), t(6)).is_ok());
        // Day 8: the copy is overdue; the access itself triggers deletion.
        let err = app
            .access(RES, Action::Read, Purpose::any(), t(8))
            .unwrap_err();
        assert_eq!(err, AccessError::NoCopy);
        assert!(!app.has_copy(RES));
        assert!(
            app.storage().host_view(RES).is_none(),
            "sealed bytes erased"
        );
    }

    #[test]
    fn sweep_enforces_all_overdue_copies() {
        let mut app = app();
        app.store_resource(RES, b"a", retention_policy(7), t(0));
        app.store_resource("urn:other", b"b", retention_policy(30), t(0));
        let actions = app.sweep(t(10)).expect("sweep");
        assert_eq!(actions.len(), 1, "only the 7-day copy is overdue");
        match &actions[0] {
            EnforcementAction::Deleted {
                resource,
                at,
                reason,
            } => {
                assert_eq!(resource, RES);
                assert_eq!(*at, t(10));
                assert!(reason.contains("retention"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!app.has_copy(RES));
        assert!(app.has_copy("urn:other"));
    }

    #[test]
    fn policy_update_triggers_immediate_enforcement() {
        // The paper's Bob scenario: retention shortened from 30d to 7d while
        // the copy is 10 days old → erase immediately on update receipt.
        let mut app = app();
        app.store_resource(RES, b"browsing data", retention_policy(30), t(0));
        assert!(app.has_copy(RES));
        let tightened = retention_policy(30).amended(
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
            vec![Duty::DeleteWithin(SimDuration::from_days(7))],
        );
        let actions = app.apply_policy_update(RES, tightened, t(10));
        assert!(matches!(actions[0], EnforcementAction::Deleted { .. }));
        assert!(!app.has_copy(RES));
        // The self-report still judges the device compliant: the deadline
        // was only learnable at update time.
        let report = app.report(RES, t(10)).unwrap();
        assert!(report.compliant, "{:?}", report.violations);
        assert!(!report.copy_alive);
    }

    #[test]
    fn stale_or_foreign_updates_ignored() {
        let mut app = app();
        app.store_resource(RES, b"x", retention_policy(7), t(0));
        // Same version → ignored.
        assert!(app
            .apply_policy_update(RES, retention_policy(7), t(1))
            .is_empty());
        assert_eq!(app.policy_version(RES), Some(1));
        // Mismatched resource → ignored.
        let mut other = retention_policy(7).amended(vec![], vec![]);
        other.resource = "urn:other".into();
        assert!(app.apply_policy_update(RES, other, t(1)).is_empty());
    }

    #[test]
    fn notify_duty_surfaces_from_update() {
        let mut app = app();
        app.store_resource(RES, b"x", retention_policy(30), t(0));
        let with_notify = retention_policy(30).amended(
            vec![Rule::permit([Action::Use])],
            vec![Duty::NotifyOwnerWithin(SimDuration::from_hours(1))],
        );
        let actions = app.apply_policy_update(RES, with_notify, t(1));
        assert!(actions.iter().any(|a| matches!(
            a,
            EnforcementAction::NotifyOwner { by, .. } if *by == t(1) + SimDuration::from_hours(1)
        )));
    }

    #[test]
    fn report_reflects_log_and_versions() {
        let mut app = app();
        app.store_resource(RES, b"data", medical_policy(), t(0));
        app.access(RES, Action::Read, Purpose::new("medical"), t(1))
            .unwrap();
        app.access(RES, Action::Read, Purpose::new("medical"), t(2))
            .unwrap();
        let r1 = app.report(RES, t(3)).unwrap();
        assert_eq!(r1.accesses, 2);
        assert_eq!(r1.policy_version, 1);
        assert!(r1.compliant);
        assert_eq!(r1.device, "alice-laptop");
        // The log digest changes as the log grows.
        app.access(RES, Action::Read, Purpose::new("medical"), t(4))
            .unwrap();
        let r2 = app.report(RES, t(5)).unwrap();
        assert_ne!(r1.log_digest, r2.log_digest);
        assert!(app.report("urn:missing", t(5)).is_none());
    }

    #[test]
    fn voluntary_delete() {
        let mut app = app();
        app.store_resource(RES, b"x", medical_policy(), t(0));
        assert!(app.delete(RES, t(1)));
        assert!(!app.delete(RES, t(2)), "double delete is false");
        assert!(!app.has_copy(RES));
        let report = app.report(RES, t(3)).unwrap();
        assert!(report.compliant);
        assert!(!report.copy_alive);
    }

    #[test]
    fn absolute_expiry_enforced() {
        let policy = UsagePolicy::builder(format!("{RES}#p"), RES, "urn:o")
            .permit(Rule::permit([Action::Use]).with_constraint(Constraint::ExpiresAt(t(5))))
            .build();
        let mut app = app();
        app.store_resource(RES, b"x", policy, t(0));
        assert!(app.access(RES, Action::Read, Purpose::any(), t(4)).is_ok());
        let actions = app.sweep(t(5)).expect("sweep");
        assert!(matches!(
            &actions[0],
            EnforcementAction::Deleted { reason, .. } if reason.contains("expiry")
        ));
    }

    #[test]
    fn decision_cache_serves_repeated_accesses() {
        let mut app = app();
        app.store_resource(RES, b"data", medical_policy(), t(0));
        for day in 1..=5 {
            app.access(RES, Action::Read, Purpose::new("medical"), t(day))
                .expect("permitted");
        }
        let (hits, misses) = app.decision_cache_stats();
        assert_eq!(misses, 1, "only the first access evaluates the program");
        assert_eq!(hits, 4, "the rest are cache-served");
    }

    #[test]
    fn decision_cache_invalidates_at_the_transition_instant() {
        let policy = UsagePolicy::builder(format!("{RES}#p"), RES, "urn:o")
            .permit(Rule::permit([Action::Use]).with_constraint(Constraint::ExpiresAt(t(5))))
            .build();
        let mut app = app();
        app.store_resource(RES, b"x", policy, t(0));
        assert!(app.access(RES, Action::Read, Purpose::any(), t(1)).is_ok());
        assert!(app.access(RES, Action::Read, Purpose::any(), t(4)).is_ok());
        let (hits, _) = app.decision_cache_stats();
        assert_eq!(hits, 1, "within the validity window the cache serves");
        // At the expiry instant the cached permit is stale: the program
        // re-evaluates (and the sweep deletes the copy first, so the
        // access reports NoCopy).
        assert_eq!(
            app.access(RES, Action::Read, Purpose::any(), t(5))
                .unwrap_err(),
            AccessError::NoCopy
        );
    }

    #[test]
    fn decision_cache_respects_count_sensitivity_and_updates() {
        let counted = UsagePolicy::builder(format!("{RES}#p"), RES, "urn:o")
            .permit(Rule::permit([Action::Use]).with_constraint(Constraint::MaxAccessCount(2)))
            .build();
        let mut app = app();
        app.store_resource(RES, b"x", counted, t(0));
        assert!(app.access(RES, Action::Read, Purpose::any(), t(1)).is_ok());
        assert!(app.access(RES, Action::Read, Purpose::any(), t(1)).is_ok());
        let (hits, misses) = app.decision_cache_stats();
        assert_eq!(
            (hits, misses),
            (0, 2),
            "count-sensitive programs re-evaluate per access"
        );
        let err = app
            .access(RES, Action::Read, Purpose::any(), t(1))
            .unwrap_err();
        assert!(matches!(err, AccessError::Denied(ref rs)
            if rs == &[DenyReason::AccessCountExhausted { limit: 2 }]));
        // A policy update drops the cached decision outright.
        let mut app = self::app();
        app.store_resource(RES, b"x", medical_policy(), t(0));
        app.access(RES, Action::Read, Purpose::new("medical"), t(1))
            .unwrap();
        app.access(RES, Action::Read, Purpose::new("medical"), t(1))
            .unwrap();
        let (hits_before, _) = app.decision_cache_stats();
        assert_eq!(hits_before, 1);
        let narrowed = medical_policy().amended(
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::Purpose(vec![Purpose::new("academic")]))],
            vec![],
        );
        app.apply_policy_update(RES, narrowed, t(2));
        let err = app
            .access(RES, Action::Read, Purpose::new("medical"), t(3))
            .unwrap_err();
        assert!(
            matches!(err, AccessError::Denied(_)),
            "recompiled program applies"
        );
    }

    #[test]
    fn tee_error_display_and_conversion() {
        let e = TeeError::SealedCopyMissing {
            resource: "urn:r".into(),
        };
        assert!(e.to_string().contains("sealed bytes"));
        let e2 = TeeError::CopyStateMissing {
            resource: "urn:r".into(),
        };
        assert!(e2.to_string().contains("copy state"));
        let access: AccessError = e.into();
        assert!(matches!(access, AccessError::Tee(_)));
        assert!(access.to_string().contains("trusted application fault"));
    }

    #[test]
    fn resources_iteration() {
        let mut app = app();
        app.store_resource("urn:a", b"1", medical_policy(), t(0));
        app.store_resource("urn:b", b"2", medical_policy(), t(0));
        let rs: Vec<&str> = app.resources().collect();
        assert_eq!(rs, vec!["urn:a", "urn:b"]);
        assert_eq!(app.holder(), ALICE);
    }
}
