//! Remote attestation.
//!
//! A [`Quote`] binds an enclave's measurement and attestation public key,
//! countersigned by the [`AttestationAuthority`] — the simulation's stand-in
//! for the hardware vendor's attestation service (e.g. Intel IAS). Remote
//! parties trust the authority's public key and therefore any quoted
//! enclave key.

use duc_crypto::{Digest, KeyPair, PublicKey, Signature};

use crate::enclave::Enclave;

/// An attestation quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The quoted device.
    pub device: String,
    /// The enclave's code measurement.
    pub measurement: Digest,
    /// The enclave's attestation public key.
    pub enclave_key: PublicKey,
    /// Authority countersignature.
    pub signature: Signature,
}

impl Quote {
    /// The bytes the authority signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"duc/quote");
        buf.extend_from_slice(self.device.as_bytes());
        buf.push(0);
        buf.extend_from_slice(self.measurement.as_bytes());
        buf.extend_from_slice(&self.enclave_key.to_bytes());
        buf
    }
}

/// The attestation authority (hardware-vendor root of trust).
#[derive(Debug, Clone)]
pub struct AttestationAuthority {
    keys: KeyPair,
    /// Measurements the authority recognizes as genuine trusted apps.
    trusted_measurements: Vec<Digest>,
}

impl AttestationAuthority {
    /// Creates an authority from a seed.
    pub fn new(seed: &[u8]) -> AttestationAuthority {
        AttestationAuthority {
            keys: KeyPair::from_seed(seed),
            trusted_measurements: Vec::new(),
        }
    }

    /// The authority's public key (baked into verifiers).
    pub fn public_key(&self) -> PublicKey {
        self.keys.public()
    }

    /// Whitelists a code measurement.
    pub fn trust_measurement(&mut self, measurement: Digest) {
        if !self.trusted_measurements.contains(&measurement) {
            self.trusted_measurements.push(measurement);
        }
    }

    /// Issues a quote for an enclave.
    ///
    /// # Errors
    /// Returns `Err(())`-like `None` when the enclave's measurement is not
    /// whitelisted (an unrecognized — possibly malicious — application).
    pub fn issue_quote(&self, enclave: &Enclave) -> Option<Quote> {
        if !self.trusted_measurements.contains(&enclave.measurement()) {
            return None;
        }
        let mut quote = Quote {
            device: enclave.device().to_string(),
            measurement: enclave.measurement(),
            enclave_key: enclave.attestation_public_key(),
            signature: Signature { e: 0, s: 0 },
        };
        quote.signature = self.keys.sign(&quote.signing_bytes());
        Some(quote)
    }

    /// Verifies a quote against this authority's key.
    pub fn verify_quote(authority_key: &PublicKey, quote: &Quote) -> bool {
        authority_key
            .verify(&quote.signing_bytes(), &quote.signature)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AttestationAuthority, Enclave) {
        let enclave = Enclave::new("alice-laptop", b"trusted-app-v1");
        let mut authority = AttestationAuthority::new(b"vendor-root");
        authority.trust_measurement(enclave.measurement());
        (authority, enclave)
    }

    #[test]
    fn quote_issuance_and_verification() {
        let (authority, enclave) = setup();
        let quote = authority.issue_quote(&enclave).expect("whitelisted");
        assert!(AttestationAuthority::verify_quote(
            &authority.public_key(),
            &quote
        ));
        assert_eq!(quote.enclave_key, enclave.attestation_public_key());
    }

    #[test]
    fn unknown_measurement_is_refused() {
        let (authority, _) = setup();
        let rogue = Enclave::new("mallory-box", b"malicious-app");
        assert!(authority.issue_quote(&rogue).is_none());
    }

    #[test]
    fn tampered_quote_fails_verification() {
        let (authority, enclave) = setup();
        let mut quote = authority.issue_quote(&enclave).unwrap();
        quote.device = "other-device".into();
        assert!(!AttestationAuthority::verify_quote(
            &authority.public_key(),
            &quote
        ));
    }

    #[test]
    fn quote_from_wrong_authority_fails() {
        let (_, enclave) = setup();
        let mut fake_authority = AttestationAuthority::new(b"fake-root");
        fake_authority.trust_measurement(enclave.measurement());
        let quote = fake_authority.issue_quote(&enclave).unwrap();
        let real = AttestationAuthority::new(b"vendor-root");
        assert!(!AttestationAuthority::verify_quote(
            &real.public_key(),
            &quote
        ));
    }

    #[test]
    fn duplicate_whitelisting_is_idempotent() {
        let (mut authority, enclave) = setup();
        authority.trust_measurement(enclave.measurement());
        authority.trust_measurement(enclave.measurement());
        assert!(authority.issue_quote(&enclave).is_some());
    }
}
