//! # duc-tee — trusted execution environment (simulated)
//!
//! The consumer-side half of usage control (paper §III-C): a [`Enclave`]
//! with a measured identity and attested keys, [`TrustedDataStorage`] that
//! seals resource copies at rest, and the [`TrustedApplication`] that
//! mediates *every* local access through the policy engine, executes
//! obligations (deletion on retention expiry), keeps the usage log and
//! produces signed compliance evidence.
//!
//! ## Trust model (what the simulation preserves)
//!
//! * **Isolation** — the host can only observe ciphertext
//!   ([`TrustedDataStorage::host_view`]); plaintext exists only inside
//!   enclave method calls.
//! * **Attested identity** — an [`AttestationAuthority`] (the simulated
//!   hardware vendor) signs a [`Quote`] binding the enclave's measurement to
//!   its attestation public key; remote parties (the DE App) accept
//!   evidence only from quoted keys.
//! * **Policy-faithful mediation** — there is no API that returns resource
//!   bytes without a policy evaluation; this is the invariant the paper's
//!   architecture assumes of TEEs.

pub mod app;
pub mod attestation;
pub mod enclave;
pub mod storage;

pub use app::{
    AccessError, EnforcementAction, ReportedEvidence, TeeError, TrustedApplication, UsageReport,
};
pub use attestation::{AttestationAuthority, Quote};
pub use enclave::Enclave;
pub use storage::TrustedDataStorage;
