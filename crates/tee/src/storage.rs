//! Trusted data storage: sealed (encrypted-at-rest) blobs.

use std::collections::BTreeMap;

use duc_crypto::{hash_parts, ChaCha20};

use crate::enclave::Enclave;

/// Sealed storage bound to one enclave's sealing key.
///
/// Each entry is encrypted under ChaCha20 with a per-key nonce derived from
/// the entry name, so the host (or a different enclave) sees only
/// ciphertext.
#[derive(Debug, Clone, Default)]
pub struct TrustedDataStorage {
    sealed: BTreeMap<String, Vec<u8>>,
}

fn nonce_for(name: &str) -> [u8; 12] {
    let d = hash_parts(&[b"duc/seal-nonce", name.as_bytes()]);
    d.as_bytes()[..12].try_into().expect("12 bytes")
}

impl TrustedDataStorage {
    /// Creates empty storage.
    pub fn new() -> TrustedDataStorage {
        TrustedDataStorage::default()
    }

    /// Seals `plaintext` under `name`.
    pub fn seal(&mut self, enclave: &Enclave, name: &str, plaintext: &[u8]) {
        let cipher = ChaCha20::new(enclave.sealing_key(), nonce_for(name));
        self.sealed
            .insert(name.to_string(), cipher.encrypt(plaintext));
    }

    /// Unseals the entry under `name`.
    pub fn unseal(&self, enclave: &Enclave, name: &str) -> Option<Vec<u8>> {
        let ciphertext = self.sealed.get(name)?;
        let cipher = ChaCha20::new(enclave.sealing_key(), nonce_for(name));
        Some(cipher.decrypt(ciphertext))
    }

    /// Securely deletes an entry; returns whether it existed.
    pub fn erase(&mut self, name: &str) -> bool {
        self.sealed.remove(name).is_some()
    }

    /// Whether an entry exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sealed.contains_key(name)
    }

    /// Number of sealed entries.
    pub fn len(&self) -> usize {
        self.sealed.len()
    }

    /// Whether storage is empty.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty()
    }

    /// What the *host* operating system can observe: raw ciphertext.
    pub fn host_view(&self, name: &str) -> Option<&[u8]> {
        self.sealed.get(name).map(Vec::as_slice)
    }

    /// Total sealed bytes.
    pub fn total_bytes(&self) -> usize {
        self.sealed.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enclave() -> Enclave {
        Enclave::new("alice-laptop", b"trusted-app-v1")
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let e = enclave();
        let mut s = TrustedDataStorage::new();
        s.seal(&e, "res/medical", b"patient data");
        assert_eq!(s.unseal(&e, "res/medical").unwrap(), b"patient data");
        assert!(s.contains("res/medical"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn host_sees_only_ciphertext() {
        let e = enclave();
        let mut s = TrustedDataStorage::new();
        let secret = b"very sensitive payload with structure";
        s.seal(&e, "res/x", secret);
        let visible = s.host_view("res/x").expect("entry exists");
        assert_ne!(visible, secret);
        // No plaintext substring survives in the ciphertext.
        assert!(!visible
            .windows(b"sensitive".len())
            .any(|w| w == b"sensitive"));
    }

    #[test]
    fn foreign_enclave_cannot_unseal() {
        let alice = enclave();
        let other_code = Enclave::new("alice-laptop", b"other-app");
        let other_device = Enclave::new("mallory-box", b"trusted-app-v1");
        let mut s = TrustedDataStorage::new();
        s.seal(&alice, "res/x", b"secret");
        assert_ne!(s.unseal(&other_code, "res/x").unwrap(), b"secret");
        assert_ne!(s.unseal(&other_device, "res/x").unwrap(), b"secret");
    }

    #[test]
    fn erase_destroys_data() {
        let e = enclave();
        let mut s = TrustedDataStorage::new();
        s.seal(&e, "res/x", b"secret");
        assert!(s.erase("res/x"));
        assert!(!s.erase("res/x"));
        assert!(s.unseal(&e, "res/x").is_none());
        assert!(s.host_view("res/x").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn distinct_entries_use_distinct_nonces() {
        let e = enclave();
        let mut s = TrustedDataStorage::new();
        s.seal(&e, "a", b"same plaintext");
        s.seal(&e, "b", b"same plaintext");
        assert_ne!(s.host_view("a").unwrap(), s.host_view("b").unwrap());
    }

    #[test]
    fn byte_accounting() {
        let e = enclave();
        let mut s = TrustedDataStorage::new();
        s.seal(&e, "a", &[0u8; 100]);
        s.seal(&e, "b", &[0u8; 50]);
        assert_eq!(s.total_bytes(), 150);
    }
}
