//! # duc-storage — bounded retention for the chain layer
//!
//! Every chain in the stack historically kept every block and every event
//! forever, so memory grew linearly in request count. This crate supplies
//! the storage primitives behind which [`duc_blockchain`]'s `Blockchain`
//! keeps only a bounded in-memory *window* of recent blocks:
//!
//! * [`StorageConfig`] — the retention knobs (checkpoint interval, window
//!   size, optional archive path). The default is *disabled*: infinite
//!   retention, byte-identical to the pre-storage behaviour.
//! * [`Checkpoint`] — a sealed summary of the world state at a height,
//!   derived from the chain's XOR-multiset state accumulator. Checkpoints
//!   are what make pruning safe: everything below the last finalized
//!   checkpoint can be evicted while enforcement state survives.
//! * [`BlockStore`] — a height-addressed windowed store. Retained heights
//!   are `base + 1 ..= base + len`; pruned prefixes optionally stream into
//!   an append-only [`FileArchive`].
//! * [`StateStore`] — the sealed-checkpoint log.
//! * [`PrunedRange`] — the typed error consumers receive when they ask for
//!   history below the prune horizon, so cursor holders resync from the
//!   last checkpoint instead of silently reading empty results.
//!
//! Since the world state itself became the dominant linear term, the crate
//! also supplies the primitives behind `WorldState`'s paged slot store:
//!
//! * [`PagingConfig`] — page capacity, resident-page limit, optional spill
//!   directory (carried on [`StorageConfig::paging`]).
//! * [`PageStore`] — an append-only page log (memory- or file-backed,
//!   reusing the [`FileArchive`] framing idea) with per-page digests
//!   verified on every read, amortized compaction over a logical offset
//!   space, and a [`PageCompacted`] typed error for reads below the
//!   compaction horizon (the [`PrunedRange`] pattern, applied to pages).
//! * [`encode_page`]/[`decode_page`] — the canonical slot-page codec.
//!
//! The crate deliberately depends only on `duc-crypto` and `duc-codec`;
//! `duc-blockchain` implements [`ArchiveItem`] for its `Block` type.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use duc_codec::impl_codec_struct;
use duc_crypto::{hash_parts, Digest};

// ------------------------------------------------------------------ config

/// Retention configuration for a chain's block & state storage.
///
/// `checkpoint_interval == 0` disables checkpointing and pruning entirely
/// (infinite retention — the historical behaviour). When enabled, a
/// [`Checkpoint`] is sealed every `checkpoint_interval` blocks and the
/// store prunes everything below
/// `min(checkpoint_height - 1, tip - window)` — the checkpoint's own block
/// and the last `window` blocks always stay resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Seal a checkpoint every this many blocks; `0` disables storage
    /// management entirely.
    pub checkpoint_interval: u64,
    /// Minimum number of recent blocks kept in memory regardless of
    /// checkpoints (the tip itself is always retained).
    pub window: u64,
    /// When set, pruned blocks are appended to this file as
    /// length-prefixed frames instead of being dropped.
    pub archive_path: Option<PathBuf>,
    /// World-state paging knobs; `None` keeps every slot page resident
    /// (today's behaviour, with identical commitments either way).
    pub paging: Option<PagingConfig>,
}

impl StorageConfig {
    /// Infinite retention; checkpointing and pruning off.
    #[must_use]
    pub fn disabled() -> Self {
        StorageConfig {
            checkpoint_interval: 0,
            window: 0,
            archive_path: None,
            paging: None,
        }
    }

    /// Checkpoint every `interval` blocks, keep at least `window` recent
    /// blocks in memory.
    #[must_use]
    pub fn enabled(interval: u64, window: u64) -> Self {
        StorageConfig {
            checkpoint_interval: interval.max(1),
            window,
            archive_path: None,
            paging: None,
        }
    }

    /// Streams pruned blocks into an append-only archive at `path`.
    #[must_use]
    pub fn with_archive(mut self, path: impl Into<PathBuf>) -> Self {
        self.archive_path = Some(path.into());
        self
    }

    /// Enables world-state paging with the given knobs.
    #[must_use]
    pub fn with_paging(mut self, paging: PagingConfig) -> Self {
        self.paging = Some(paging);
        self
    }

    /// Whether checkpointing/pruning is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.checkpoint_interval > 0
    }

    /// The prune horizon implied by a checkpoint sealed at
    /// `checkpoint_height` when the chain tip is `tip`: the highest height
    /// that may be evicted. The checkpoint's own block and the last
    /// `window` blocks are always retained.
    #[must_use]
    pub fn horizon_after_checkpoint(&self, checkpoint_height: u64, tip: u64) -> u64 {
        checkpoint_height
            .saturating_sub(1)
            .min(tip.saturating_sub(self.window))
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::disabled()
    }
}

// -------------------------------------------------------------- checkpoint

/// A sealed summary of the world state at a block height.
///
/// `state_commitment` is the chain's `WorldState::commitment()` at that
/// height (what block headers pin as `state_root`); `accumulator` is the
/// raw XOR-multiset accumulator it was derived from, so a restored store
/// can resume incremental maintenance without replaying history.
/// `event_cursor_floor` is the lowest event height a cursor may hold after
/// resyncing to this checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Block height the checkpoint was sealed at.
    pub height: u64,
    /// `WorldState::commitment()` at `height`.
    pub state_commitment: Digest,
    /// The raw XOR-multiset accumulator behind the commitment.
    pub accumulator: [u8; 32],
    /// Lowest valid event-cursor height after a resync to this checkpoint.
    pub event_cursor_floor: u64,
}

impl_codec_struct!(Checkpoint {
    height,
    state_commitment,
    accumulator,
    event_cursor_floor
});

// ------------------------------------------------------------ pruned range

/// Typed error for reads below the prune horizon.
///
/// Returned instead of a silently-empty slice so cursor holders (oracles,
/// drivers) know to resync from the last checkpoint's
/// `event_cursor_floor` rather than miss history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunedRange {
    /// The height the caller asked to read from.
    pub requested: u64,
    /// The current prune horizon (highest pruned height).
    pub horizon: u64,
}

impl fmt::Display for PrunedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested history from height {} but everything at or below {} is pruned",
            self.requested, self.horizon
        )
    }
}

impl std::error::Error for PrunedRange {}

// ------------------------------------------------------------------ paging

/// Knobs for the paged world-state slot store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagingConfig {
    /// Maximum slots per page before a median split (≥ 1).
    pub page_capacity: usize,
    /// Maximum resident (decoded) pages; `None` = unbounded residency.
    /// `Some(0)` is legal: every page is spilled after every touch.
    pub resident_limit: Option<usize>,
    /// Directory for spill files; `None` spills into an in-memory log.
    pub spill_dir: Option<PathBuf>,
}

impl PagingConfig {
    /// In-memory paging with the default page capacity.
    #[must_use]
    pub fn in_memory(resident_limit: Option<usize>) -> Self {
        PagingConfig {
            page_capacity: 64,
            resident_limit,
            spill_dir: None,
        }
    }

    /// Spills cold pages into files under `dir`.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Overrides the page capacity (clamped to ≥ 1).
    #[must_use]
    pub fn with_page_capacity(mut self, capacity: usize) -> Self {
        self.page_capacity = capacity.max(1);
        self
    }
}

impl Default for PagingConfig {
    fn default() -> Self {
        PagingConfig::in_memory(None)
    }
}

/// Handle to one spilled page in a [`PageStore`].
///
/// Offsets are *logical*: they survive compaction (which invalidates dead
/// offsets rather than renumbering live ones), so a stale handle fails
/// loudly with [`PageCompacted`] instead of silently reading shifted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    /// Logical byte offset of the page in the store.
    pub offset: u64,
    /// Encoded page length in bytes.
    pub len: u32,
    /// Digest of the encoded page bytes, verified on every read.
    pub digest: Digest,
}

/// Typed error for page reads below the compaction horizon — the
/// [`PrunedRange`] pattern applied to the page log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCompacted {
    /// The logical offset the caller asked to read.
    pub requested: u64,
    /// The current compaction horizon (lowest valid logical offset).
    pub horizon: u64,
}

impl fmt::Display for PageCompacted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested page at logical offset {} but everything below {} is compacted",
            self.requested, self.horizon
        )
    }
}

impl std::error::Error for PageCompacted {}

/// Failure reading a page back from a [`PageStore`].
#[derive(Debug)]
pub enum PageStoreError {
    /// The page was dropped by compaction; the handle is stale.
    Compacted(PageCompacted),
    /// The stored bytes do not hash to the handle's digest.
    Corrupt {
        /// Logical offset of the corrupt page.
        offset: u64,
    },
    /// Underlying file I/O failure.
    Io(io::Error),
}

impl fmt::Display for PageStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageStoreError::Compacted(e) => e.fmt(f),
            PageStoreError::Corrupt { offset } => {
                write!(
                    f,
                    "page at logical offset {offset} fails digest verification"
                )
            }
            PageStoreError::Io(e) => write!(f, "page store I/O error: {e}"),
        }
    }
}

impl std::error::Error for PageStoreError {}

impl From<io::Error> for PageStoreError {
    fn from(e: io::Error) -> Self {
        PageStoreError::Io(e)
    }
}

/// Encodes one slot page: `u32` slot count, then per slot a `u32`
/// length-prefixed key and a `u32` length-prefixed value.
#[must_use]
pub fn encode_page<'a>(slots: impl ExactSizeIterator<Item = (&'a [u8], &'a [u8])>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + slots.len() * 16);
    out.extend_from_slice(
        &u32::try_from(slots.len())
            .expect("page slot count fits u32")
            .to_le_bytes(),
    );
    for (k, v) in slots {
        out.extend_from_slice(&u32::try_from(k.len()).expect("key fits u32").to_le_bytes());
        out.extend_from_slice(k);
        out.extend_from_slice(
            &u32::try_from(v.len())
                .expect("value fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(v);
    }
    out
}

/// Decodes a page produced by [`encode_page`].
///
/// # Errors
/// `InvalidData` on truncated or trailing bytes.
pub fn decode_page(bytes: &[u8]) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
    fn take<'a>(bytes: &'a [u8], at: &mut usize, len: usize) -> io::Result<&'a [u8]> {
        let slice = bytes
            .get(*at..*at + len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated page"))?;
        *at += len;
        Ok(slice)
    }
    fn take_u32(bytes: &[u8], at: &mut usize) -> io::Result<usize> {
        let raw = take(bytes, at, 4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")) as usize)
    }
    let mut at = 0usize;
    let count = take_u32(bytes, &mut at)?;
    let mut slots = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = take_u32(bytes, &mut at)?;
        let key = take(bytes, &mut at, klen)?.to_vec();
        let vlen = take_u32(bytes, &mut at)?;
        let value = take(bytes, &mut at, vlen)?.to_vec();
        slots.push((key, value));
    }
    if at != bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing page bytes",
        ));
    }
    Ok(slots)
}

/// Digest of an encoded page (domain-separated).
#[must_use]
pub fn page_digest(bytes: &[u8]) -> Digest {
    hash_parts(&[b"duc/page", bytes])
}

/// Where a [`PageStore`] keeps its spilled bytes.
enum PageBackend {
    Mem(Vec<u8>),
    File {
        dir: PathBuf,
        path: PathBuf,
        file: File,
        /// Physical file length in bytes.
        len: u64,
    },
}

impl PageBackend {
    fn reset(&mut self) -> io::Result<()> {
        match self {
            PageBackend::Mem(buf) => buf.clear(),
            PageBackend::File { file, len, .. } => {
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                *len = 0;
            }
        }
        Ok(())
    }
}

/// Append-only log of spilled slot pages behind the paged world state.
///
/// Offsets handed out in [`PageRef`]s are logical and monotone; compaction
/// rewrites the live pages into a fresh physical region and advances a
/// `base` horizon below which stale handles fail with [`PageCompacted`].
/// Every read re-verifies the page digest, so a fault-in can never observe
/// bytes that differ from what was spilled.
pub struct PageStore {
    backend: PageBackend,
    /// Compaction horizon: lowest logical offset still readable.
    base: u64,
    /// Next logical offset to be handed out.
    tail: u64,
    /// Logical offset mapped to physical position 0 of the backend.
    phys_base: u64,
    /// Bytes of pages appended and not yet retired.
    live_bytes: u64,
    /// Bytes of pages retired (dead weight reclaimed by compaction).
    dead_bytes: u64,
    /// Total pages ever appended through this handle.
    appended: u64,
    /// Compactions performed.
    compactions: u64,
}

impl fmt::Debug for PageStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageStore")
            .field(
                "backend",
                &match &self.backend {
                    PageBackend::Mem(_) => "mem",
                    PageBackend::File { .. } => "file",
                },
            )
            .field("base", &self.base)
            .field("tail", &self.tail)
            .field("live_bytes", &self.live_bytes)
            .field("dead_bytes", &self.dead_bytes)
            .finish()
    }
}

/// Compaction only pays off once this much dead weight accumulates.
const COMPACT_MIN_DEAD_BYTES: u64 = 1 << 20;

impl PageStore {
    /// An in-memory page log.
    #[must_use]
    pub fn in_memory() -> PageStore {
        PageStore::with_backend(PageBackend::Mem(Vec::new()))
    }

    /// A file-backed page log; the file is created under `dir` with a
    /// process-unique name and removed on drop.
    ///
    /// # Errors
    /// Propagates directory-creation and file-open failures.
    pub fn in_dir(dir: impl Into<PathBuf>) -> io::Result<PageStore> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("duc-pages-{}-{n}.bin", std::process::id()));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(PageStore::with_backend(PageBackend::File {
            dir,
            path,
            file,
            len: 0,
        }))
    }

    /// Opens a store of the same flavour as `self`, starting empty (used
    /// when cloning a paged state: the clone gets its own spill log).
    ///
    /// # Errors
    /// Propagates file creation failures for file-backed stores.
    pub fn fresh_like(&self) -> io::Result<PageStore> {
        match &self.backend {
            PageBackend::Mem(_) => Ok(PageStore::in_memory()),
            PageBackend::File { dir, .. } => PageStore::in_dir(dir.clone()),
        }
    }

    fn with_backend(backend: PageBackend) -> PageStore {
        PageStore {
            backend,
            base: 0,
            tail: 0,
            phys_base: 0,
            live_bytes: 0,
            dead_bytes: 0,
            appended: 0,
            compactions: 0,
        }
    }

    /// Appends one encoded page, returning its verified handle.
    ///
    /// # Errors
    /// Propagates file write failures.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<PageRef> {
        let len = u32::try_from(bytes.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "page exceeds u32 length"))?;
        let offset = self.tail;
        match &mut self.backend {
            PageBackend::Mem(buf) => buf.extend_from_slice(bytes),
            PageBackend::File {
                file, len: flen, ..
            } => {
                file.seek(SeekFrom::Start(*flen))?;
                file.write_all(bytes)?;
                *flen += bytes.len() as u64;
            }
        }
        self.tail += u64::from(len);
        self.live_bytes += u64::from(len);
        self.appended += 1;
        Ok(PageRef {
            offset,
            len,
            digest: page_digest(bytes),
        })
    }

    /// Reads one page back, verifying its digest.
    ///
    /// # Errors
    /// [`PageStoreError::Compacted`] for handles below the compaction
    /// horizon, [`PageStoreError::Corrupt`] on digest mismatch, and
    /// [`PageStoreError::Io`] on underlying read failures.
    pub fn read(&mut self, page: &PageRef) -> Result<Vec<u8>, PageStoreError> {
        if page.offset < self.base {
            return Err(PageStoreError::Compacted(PageCompacted {
                requested: page.offset,
                horizon: self.base,
            }));
        }
        let phys = page.offset - self.phys_base;
        let len = page.len as usize;
        let bytes = match &mut self.backend {
            PageBackend::Mem(buf) => {
                let at = usize::try_from(phys)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "offset overflow"))?;
                buf.get(at..at + len)
                    .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?
                    .to_vec()
            }
            PageBackend::File { file, .. } => {
                let mut out = vec![0u8; len];
                file.seek(SeekFrom::Start(phys))?;
                file.read_exact(&mut out)?;
                out
            }
        };
        if page_digest(&bytes) != page.digest {
            return Err(PageStoreError::Corrupt {
                offset: page.offset,
            });
        }
        Ok(bytes)
    }

    /// Marks a previously appended page as dead weight (its owner replaced
    /// or dropped it); compaction reclaims the bytes later.
    pub fn retire(&mut self, page: &PageRef) {
        self.live_bytes = self.live_bytes.saturating_sub(u64::from(page.len));
        self.dead_bytes += u64::from(page.len);
    }

    /// Whether enough dead weight accumulated that a compaction pass
    /// amortizes (dead bytes exceed both live bytes and a fixed floor).
    #[must_use]
    pub fn should_compact(&self) -> bool {
        self.dead_bytes >= COMPACT_MIN_DEAD_BYTES && self.dead_bytes > self.live_bytes
    }

    /// Rewrites exactly the `live` pages into a fresh physical region and
    /// drops everything else, returning the new handles aligned with the
    /// input order. All pre-compaction handles become stale: reading them
    /// afterwards yields [`PageCompacted`].
    ///
    /// # Errors
    /// Read-side verification and write failures; on error the store is
    /// left unchanged (reads happen before the rewrite).
    pub fn compact(&mut self, live: &[PageRef]) -> Result<Vec<PageRef>, PageStoreError> {
        let mut blobs = Vec::with_capacity(live.len());
        for page in live {
            blobs.push(self.read(page)?);
        }
        let new_base = self.tail;
        self.backend.reset()?;
        self.phys_base = new_base;
        self.base = new_base;
        self.live_bytes = 0;
        self.dead_bytes = 0;
        self.compactions += 1;
        let mut refs = Vec::with_capacity(blobs.len());
        for blob in &blobs {
            refs.push(self.append(blob)?);
        }
        self.appended -= blobs.len() as u64; // rewrites are not fresh spills
        Ok(refs)
    }

    /// Lowest logical offset still readable (compaction horizon).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.base
    }

    /// Bytes of live (unretired) pages in the log.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes of retired pages awaiting compaction.
    #[must_use]
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Pages spilled through this handle (net of compaction rewrites).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Compaction passes performed.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

impl Drop for PageStore {
    fn drop(&mut self) {
        if let PageBackend::File { path, .. } = &self.backend {
            std::fs::remove_file(path).ok();
        }
    }
}

// ----------------------------------------------------------------- archive

/// An item that can be framed into the append-only archive.
pub trait ArchiveItem {
    /// The canonical byte encoding archived for this item.
    fn encode_frame(&self) -> Vec<u8>;
}

/// Append-only file archive of length-prefixed frames.
///
/// Each frame is a `u32` little-endian byte length followed by the frame
/// bytes. The format is deliberately trivial: the archive is cold storage
/// for pruned blocks, read back only by offline tooling and tests.
pub struct FileArchive {
    path: PathBuf,
    writer: BufWriter<File>,
    frames: u64,
}

impl fmt::Debug for FileArchive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileArchive")
            .field("path", &self.path)
            .field("frames", &self.frames)
            .finish()
    }
}

impl FileArchive {
    /// Opens (creating if absent) an archive for appending.
    ///
    /// # Errors
    /// Propagates the underlying file-open failure.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileArchive> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileArchive {
            path,
            writer: BufWriter::new(file),
            frames: 0,
        })
    }

    /// Appends one frame.
    ///
    /// # Errors
    /// Propagates the underlying write failure.
    pub fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames appended through this handle.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The archive's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every frame back from an archive file (offline tooling/tests).
    ///
    /// # Errors
    /// Propagates read failures; a truncated trailing frame is an
    /// `UnexpectedEof` error.
    pub fn read_frames(path: impl AsRef<Path>) -> io::Result<Vec<Vec<u8>>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut frames = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            let Some(header) = bytes.get(at..at + 4) else {
                return Err(io::ErrorKind::UnexpectedEof.into());
            };
            let len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
            at += 4;
            let Some(frame) = bytes.get(at..at + len) else {
                return Err(io::ErrorKind::UnexpectedEof.into());
            };
            frames.push(frame.to_vec());
            at += len;
        }
        Ok(frames)
    }
}

// --------------------------------------------------------------- blockstore

/// A height-addressed block store retaining a window of recent blocks.
///
/// Retained heights are `base + 1 ..= base + len`; `base` is the number of
/// pruned blocks (also the prune horizon: every height `<= base` is gone).
/// `base_parent` carries the hash of the block at height `base` so chain
/// validation can keep checking parent links across the pruned boundary.
#[derive(Debug)]
pub struct BlockStore<T> {
    base: u64,
    base_parent: Digest,
    blocks: VecDeque<T>,
    archive: Option<FileArchive>,
    archived: u64,
}

impl<T> Default for BlockStore<T> {
    fn default() -> Self {
        BlockStore::new(None)
    }
}

impl<T> BlockStore<T> {
    /// An empty store, optionally archiving pruned blocks.
    #[must_use]
    pub fn new(archive: Option<FileArchive>) -> BlockStore<T> {
        BlockStore {
            base: 0,
            base_parent: Digest::ZERO,
            blocks: VecDeque::new(),
            archive,
            archived: 0,
        }
    }

    /// Appends the next block (its height becomes `self.height() + 1`).
    pub fn push(&mut self, block: T) {
        self.blocks.push_back(block);
    }

    /// The chain tip height (`0` for an empty, never-pruned store).
    #[must_use]
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.blocks.len()
    }

    /// The prune horizon: highest pruned height (`0` = nothing pruned).
    #[must_use]
    pub fn prune_horizon(&self) -> u64 {
        self.base
    }

    /// Hash of the block at height `base` (`Digest::ZERO` if unpruned), the
    /// parent the oldest resident block must link to.
    #[must_use]
    pub fn base_parent(&self) -> Digest {
        self.base_parent
    }

    /// The block at `height`, if resident. `None` for height 0, heights
    /// above the tip, *and* pruned heights — callers distinguishing the
    /// last case check [`BlockStore::prune_horizon`] or use
    /// [`BlockStore::try_get`].
    #[must_use]
    pub fn get(&self, height: u64) -> Option<&T> {
        if height <= self.base {
            return None;
        }
        self.blocks.get((height - self.base - 1) as usize)
    }

    /// Mutable access to the block at `height`, if resident (test-side
    /// tampering hooks; production code never rewrites sealed blocks).
    #[must_use]
    pub fn get_mut(&mut self, height: u64) -> Option<&mut T> {
        if height <= self.base {
            return None;
        }
        self.blocks.get_mut((height - self.base - 1) as usize)
    }

    /// Like [`BlockStore::get`], but a pruned height is a typed error
    /// rather than `None`.
    ///
    /// # Errors
    /// [`PrunedRange`] when `1 <= height <= prune_horizon`.
    pub fn try_get(&self, height: u64) -> Result<Option<&T>, PrunedRange> {
        if height >= 1 && height <= self.base {
            return Err(PrunedRange {
                requested: height,
                horizon: self.base,
            });
        }
        Ok(self.get(height))
    }

    /// The most recent resident block.
    #[must_use]
    pub fn last(&self) -> Option<&T> {
        self.blocks.back()
    }

    /// The oldest resident block.
    #[must_use]
    pub fn first(&self) -> Option<&T> {
        self.blocks.front()
    }

    /// Iterates resident blocks oldest-first, paired with their heights.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base;
        self.blocks
            .iter()
            .enumerate()
            .map(move |(i, b)| (base + i as u64 + 1, b))
    }

    /// Total frames streamed to the archive so far.
    #[must_use]
    pub fn archived(&self) -> u64 {
        self.archived
    }
}

impl<T: ArchiveItem> BlockStore<T> {
    /// Evicts every block with height `<= horizon`, archiving each evicted
    /// block if an archive is attached. `hash_of` supplies the digest of
    /// the last evicted block, which becomes the new `base_parent`. The
    /// horizon is clamped so at least the tip stays resident; a horizon at
    /// or below the current base is a no-op. Returns the number evicted.
    ///
    /// # Errors
    /// Propagates archive write failures (no blocks are dropped on error).
    pub fn prune_below(&mut self, horizon: u64, hash_of: impl Fn(&T) -> Digest) -> io::Result<u64> {
        let horizon = horizon.min(self.height().saturating_sub(1));
        if horizon <= self.base {
            return Ok(0);
        }
        let evict = (horizon - self.base) as usize;
        if let Some(archive) = self.archive.as_mut() {
            for block in self.blocks.iter().take(evict) {
                archive.append(&block.encode_frame())?;
            }
            self.archived += evict as u64;
        }
        let mut last_hash = self.base_parent;
        for _ in 0..evict {
            let block = self.blocks.pop_front().expect("evict <= len");
            last_hash = hash_of(&block);
        }
        self.base = horizon;
        self.base_parent = last_hash;
        Ok(evict as u64)
    }
}

// --------------------------------------------------------------- statestore

/// The log of sealed checkpoints, newest last.
#[derive(Debug, Default)]
pub struct StateStore {
    checkpoints: Vec<Checkpoint>,
}

impl StateStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// Seals a checkpoint; heights must be strictly increasing.
    ///
    /// # Panics
    /// If `cp.height` does not exceed the last sealed height.
    pub fn seal(&mut self, cp: Checkpoint) {
        if let Some(last) = self.checkpoints.last() {
            assert!(
                cp.height > last.height,
                "checkpoint heights must be strictly increasing ({} after {})",
                cp.height,
                last.height
            );
        }
        self.checkpoints.push(cp);
    }

    /// The most recently sealed checkpoint.
    #[must_use]
    pub fn last(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// Every sealed checkpoint, oldest first.
    #[must_use]
    pub fn all(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Number of sealed checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether no checkpoint has been sealed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The newest checkpoint sealed at or below `height`.
    #[must_use]
    pub fn at_or_before(&self, height: u64) -> Option<&Checkpoint> {
        let idx = self.checkpoints.partition_point(|cp| cp.height <= height);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug)]
    struct Item(u64);

    impl ArchiveItem for Item {
        fn encode_frame(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
    }

    fn digest_of(item: &Item) -> Digest {
        let mut d = [0u8; 32];
        d[..8].copy_from_slice(&item.0.to_le_bytes());
        Digest(d)
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "duc-storage-test-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn config_default_is_disabled() {
        let cfg = StorageConfig::default();
        assert!(!cfg.is_enabled());
        assert_eq!(cfg, StorageConfig::disabled());
        assert!(StorageConfig::enabled(16, 8).is_enabled());
        // interval 0 through `enabled` is clamped to 1, never silently off.
        assert!(StorageConfig::enabled(0, 8).is_enabled());
    }

    #[test]
    fn horizon_keeps_checkpoint_block_and_window() {
        let cfg = StorageConfig::enabled(10, 4);
        // Window binds: tip 12 with window 4 keeps 9..=12.
        assert_eq!(cfg.horizon_after_checkpoint(10, 12), 8);
        // Checkpoint binds: its own block (height 10) is always retained.
        assert_eq!(cfg.horizon_after_checkpoint(10, 100), 9);
        // Degenerate small chains never underflow.
        assert_eq!(cfg.horizon_after_checkpoint(1, 1), 0);
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let cp = Checkpoint {
            height: 42,
            state_commitment: Digest([7u8; 32]),
            accumulator: [9u8; 32],
            event_cursor_floor: 41,
        };
        let bytes = encode_to_vec(&cp);
        let back: Checkpoint = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, cp);
    }

    #[test]
    fn block_store_addresses_by_height_across_pruning() {
        let mut store: BlockStore<Item> = BlockStore::default();
        for i in 1..=10 {
            store.push(Item(i));
        }
        assert_eq!(store.height(), 10);
        assert_eq!(store.get(1).map(|b| b.0), Some(1));
        assert_eq!(store.get(10).map(|b| b.0), Some(10));
        assert!(store.get(0).is_none());
        assert!(store.get(11).is_none());

        let evicted = store.prune_below(6, digest_of).expect("prune");
        assert_eq!(evicted, 6);
        assert_eq!(store.prune_horizon(), 6);
        assert_eq!(store.base_parent(), digest_of(&Item(6)));
        assert_eq!(store.retained(), 4);
        assert_eq!(store.height(), 10);
        assert!(store.get(6).is_none());
        assert_eq!(store.get(7).map(|b| b.0), Some(7));
        assert_eq!(store.last().map(|b| b.0), Some(10));
        assert_eq!(store.first().map(|b| b.0), Some(7));
        assert_eq!(
            store.iter().map(|(h, b)| (h, b.0)).collect::<Vec<_>>(),
            vec![(7, 7), (8, 8), (9, 9), (10, 10)]
        );

        // Pruned heights are a typed error through try_get.
        assert_eq!(
            store.try_get(3).unwrap_err(),
            PrunedRange {
                requested: 3,
                horizon: 6
            }
        );
        assert!(store.try_get(8).expect("resident").is_some());
        assert!(store.try_get(11).expect("above tip is None").is_none());

        // Horizon is monotone; a stale lower horizon is a no-op.
        assert_eq!(store.prune_below(4, digest_of).expect("noop"), 0);
        // The tip is never evicted even by an over-eager horizon.
        assert_eq!(store.prune_below(u64::MAX, digest_of).expect("clamp"), 3);
        assert_eq!(store.retained(), 1);
        assert_eq!(store.last().map(|b| b.0), Some(10));
    }

    #[test]
    fn pruning_streams_frames_to_the_archive() {
        let path = temp_path("archive");
        let archive = FileArchive::open(&path).expect("open");
        let mut store: BlockStore<Item> = BlockStore::new(Some(archive));
        for i in 1..=5 {
            store.push(Item(i));
        }
        store.prune_below(3, digest_of).expect("prune");
        assert_eq!(store.archived(), 3);
        let frames = FileArchive::read_frames(&path).expect("read back");
        assert_eq!(
            frames,
            vec![
                1u64.to_le_bytes().to_vec(),
                2u64.to_le_bytes().to_vec(),
                3u64.to_le_bytes().to_vec()
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_store_seals_monotonically_and_finds_by_height() {
        let mut store = StateStore::new();
        assert!(store.is_empty());
        for h in [10u64, 20, 30] {
            store.seal(Checkpoint {
                height: h,
                state_commitment: Digest::ZERO,
                accumulator: [0u8; 32],
                event_cursor_floor: h.saturating_sub(1),
            });
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.last().map(|cp| cp.height), Some(30));
        assert_eq!(store.at_or_before(9), None);
        assert_eq!(store.at_or_before(10).map(|cp| cp.height), Some(10));
        assert_eq!(store.at_or_before(29).map(|cp| cp.height), Some(20));
        assert_eq!(store.at_or_before(99).map(|cp| cp.height), Some(30));
    }

    fn sample_page(tag: u8) -> Vec<u8> {
        encode_page(
            vec![
                (&[b'k', tag][..], &[tag; 7][..]),
                (&[b'k', tag, b'2'][..], &[tag ^ 0xFF; 3][..]),
            ]
            .into_iter(),
        )
    }

    #[test]
    fn page_codec_round_trips_and_rejects_garbage() {
        let page = sample_page(1);
        let slots = decode_page(&page).expect("decode");
        assert_eq!(
            slots,
            vec![
                (vec![b'k', 1], vec![1u8; 7]),
                (vec![b'k', 1, b'2'], vec![0xFE; 3]),
            ]
        );
        assert_eq!(
            decode_page(&encode_page(std::iter::empty())).expect("empty"),
            vec![]
        );
        assert!(decode_page(&page[..page.len() - 1]).is_err(), "truncated");
        let mut trailing = page.clone();
        trailing.push(0);
        assert!(decode_page(&trailing).is_err(), "trailing bytes");
    }

    fn exercise_page_store(mut store: PageStore) {
        let a = store.append(&sample_page(1)).expect("append a");
        let b = store.append(&sample_page(2)).expect("append b");
        assert_eq!(a.offset, 0);
        assert_eq!(u64::from(a.len), b.offset);
        assert_eq!(store.read(&a).expect("read a"), sample_page(1));
        assert_eq!(store.read(&b).expect("read b"), sample_page(2));

        // A tampered digest is detected on read.
        let mut bad = a;
        bad.digest = Digest([0xAB; 32]);
        assert!(matches!(
            store.read(&bad),
            Err(PageStoreError::Corrupt { offset: 0 })
        ));

        // Retiring and compacting invalidates stale handles with a typed
        // error while live handles survive under new offsets.
        store.retire(&a);
        assert_eq!(store.dead_bytes(), u64::from(a.len));
        let live = store.compact(&[b]).expect("compact");
        assert_eq!(live.len(), 1);
        assert_eq!(
            store.read(&live[0]).expect("live after compact"),
            sample_page(2)
        );
        let err = store.read(&a).expect_err("stale handle");
        match err {
            PageStoreError::Compacted(pc) => {
                assert_eq!(pc.requested, 0);
                assert_eq!(pc.horizon, store.horizon());
            }
            other => panic!("expected Compacted, got {other:?}"),
        }
        assert_eq!(store.dead_bytes(), 0);
        assert_eq!(store.live_bytes(), u64::from(b.len));
        assert_eq!(store.compactions(), 1);

        // The log keeps appending past a compaction.
        let c = store.append(&sample_page(3)).expect("append c");
        assert_eq!(store.read(&c).expect("read c"), sample_page(3));
    }

    #[test]
    fn mem_page_store_appends_verifies_and_compacts() {
        exercise_page_store(PageStore::in_memory());
    }

    #[test]
    fn file_page_store_appends_verifies_and_compacts() {
        let dir = std::env::temp_dir().join(format!("duc-pagestore-{}", std::process::id()));
        exercise_page_store(PageStore::in_dir(&dir).expect("open"));
        // fresh_like produces an independent store of the same flavour.
        let mut first = PageStore::in_dir(&dir).expect("open");
        let r = first.append(&sample_page(9)).expect("append");
        let mut second = first.fresh_like().expect("fresh");
        assert!(second.read(&r).is_err(), "fresh store starts empty");
        assert_eq!(second.live_bytes(), 0);
    }

    #[test]
    fn compaction_trigger_needs_dead_weight_majority() {
        let mut store = PageStore::in_memory();
        let a = store.append(&vec![1u8; 1 << 20]).expect("append");
        let _b = store.append(&[2u8; 8]).expect("append");
        assert!(!store.should_compact(), "nothing retired yet");
        store.retire(&a);
        assert!(store.should_compact(), "dead majority over the floor");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn state_store_rejects_non_monotone_seal() {
        let mut store = StateStore::new();
        let cp = Checkpoint {
            height: 5,
            state_commitment: Digest::ZERO,
            accumulator: [0u8; 32],
            event_cursor_floor: 0,
        };
        store.seal(cp.clone());
        store.seal(cp);
    }
}
