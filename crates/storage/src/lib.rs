//! # duc-storage — bounded retention for the chain layer
//!
//! Every chain in the stack historically kept every block and every event
//! forever, so memory grew linearly in request count. This crate supplies
//! the storage primitives behind which [`duc_blockchain`]'s `Blockchain`
//! keeps only a bounded in-memory *window* of recent blocks:
//!
//! * [`StorageConfig`] — the retention knobs (checkpoint interval, window
//!   size, optional archive path). The default is *disabled*: infinite
//!   retention, byte-identical to the pre-storage behaviour.
//! * [`Checkpoint`] — a sealed summary of the world state at a height,
//!   derived from the chain's XOR-multiset state accumulator. Checkpoints
//!   are what make pruning safe: everything below the last finalized
//!   checkpoint can be evicted while enforcement state survives.
//! * [`BlockStore`] — a height-addressed windowed store. Retained heights
//!   are `base + 1 ..= base + len`; pruned prefixes optionally stream into
//!   an append-only [`FileArchive`].
//! * [`StateStore`] — the sealed-checkpoint log.
//! * [`PrunedRange`] — the typed error consumers receive when they ask for
//!   history below the prune horizon, so cursor holders resync from the
//!   last checkpoint instead of silently reading empty results.
//!
//! The crate deliberately depends only on `duc-crypto` and `duc-codec`;
//! `duc-blockchain` implements [`ArchiveItem`] for its `Block` type.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

use duc_codec::impl_codec_struct;
use duc_crypto::Digest;

// ------------------------------------------------------------------ config

/// Retention configuration for a chain's block & state storage.
///
/// `checkpoint_interval == 0` disables checkpointing and pruning entirely
/// (infinite retention — the historical behaviour). When enabled, a
/// [`Checkpoint`] is sealed every `checkpoint_interval` blocks and the
/// store prunes everything below
/// `min(checkpoint_height - 1, tip - window)` — the checkpoint's own block
/// and the last `window` blocks always stay resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Seal a checkpoint every this many blocks; `0` disables storage
    /// management entirely.
    pub checkpoint_interval: u64,
    /// Minimum number of recent blocks kept in memory regardless of
    /// checkpoints (the tip itself is always retained).
    pub window: u64,
    /// When set, pruned blocks are appended to this file as
    /// length-prefixed frames instead of being dropped.
    pub archive_path: Option<PathBuf>,
}

impl StorageConfig {
    /// Infinite retention; checkpointing and pruning off.
    #[must_use]
    pub fn disabled() -> Self {
        StorageConfig {
            checkpoint_interval: 0,
            window: 0,
            archive_path: None,
        }
    }

    /// Checkpoint every `interval` blocks, keep at least `window` recent
    /// blocks in memory.
    #[must_use]
    pub fn enabled(interval: u64, window: u64) -> Self {
        StorageConfig {
            checkpoint_interval: interval.max(1),
            window,
            archive_path: None,
        }
    }

    /// Streams pruned blocks into an append-only archive at `path`.
    #[must_use]
    pub fn with_archive(mut self, path: impl Into<PathBuf>) -> Self {
        self.archive_path = Some(path.into());
        self
    }

    /// Whether checkpointing/pruning is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.checkpoint_interval > 0
    }

    /// The prune horizon implied by a checkpoint sealed at
    /// `checkpoint_height` when the chain tip is `tip`: the highest height
    /// that may be evicted. The checkpoint's own block and the last
    /// `window` blocks are always retained.
    #[must_use]
    pub fn horizon_after_checkpoint(&self, checkpoint_height: u64, tip: u64) -> u64 {
        checkpoint_height
            .saturating_sub(1)
            .min(tip.saturating_sub(self.window))
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::disabled()
    }
}

// -------------------------------------------------------------- checkpoint

/// A sealed summary of the world state at a block height.
///
/// `state_commitment` is the chain's `WorldState::commitment()` at that
/// height (what block headers pin as `state_root`); `accumulator` is the
/// raw XOR-multiset accumulator it was derived from, so a restored store
/// can resume incremental maintenance without replaying history.
/// `event_cursor_floor` is the lowest event height a cursor may hold after
/// resyncing to this checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Block height the checkpoint was sealed at.
    pub height: u64,
    /// `WorldState::commitment()` at `height`.
    pub state_commitment: Digest,
    /// The raw XOR-multiset accumulator behind the commitment.
    pub accumulator: [u8; 32],
    /// Lowest valid event-cursor height after a resync to this checkpoint.
    pub event_cursor_floor: u64,
}

impl_codec_struct!(Checkpoint {
    height,
    state_commitment,
    accumulator,
    event_cursor_floor
});

// ------------------------------------------------------------ pruned range

/// Typed error for reads below the prune horizon.
///
/// Returned instead of a silently-empty slice so cursor holders (oracles,
/// drivers) know to resync from the last checkpoint's
/// `event_cursor_floor` rather than miss history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunedRange {
    /// The height the caller asked to read from.
    pub requested: u64,
    /// The current prune horizon (highest pruned height).
    pub horizon: u64,
}

impl fmt::Display for PrunedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested history from height {} but everything at or below {} is pruned",
            self.requested, self.horizon
        )
    }
}

impl std::error::Error for PrunedRange {}

// ----------------------------------------------------------------- archive

/// An item that can be framed into the append-only archive.
pub trait ArchiveItem {
    /// The canonical byte encoding archived for this item.
    fn encode_frame(&self) -> Vec<u8>;
}

/// Append-only file archive of length-prefixed frames.
///
/// Each frame is a `u32` little-endian byte length followed by the frame
/// bytes. The format is deliberately trivial: the archive is cold storage
/// for pruned blocks, read back only by offline tooling and tests.
pub struct FileArchive {
    path: PathBuf,
    writer: BufWriter<File>,
    frames: u64,
}

impl fmt::Debug for FileArchive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileArchive")
            .field("path", &self.path)
            .field("frames", &self.frames)
            .finish()
    }
}

impl FileArchive {
    /// Opens (creating if absent) an archive for appending.
    ///
    /// # Errors
    /// Propagates the underlying file-open failure.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileArchive> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileArchive {
            path,
            writer: BufWriter::new(file),
            frames: 0,
        })
    }

    /// Appends one frame.
    ///
    /// # Errors
    /// Propagates the underlying write failure.
    pub fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(frame)?;
        self.writer.flush()?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames appended through this handle.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The archive's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every frame back from an archive file (offline tooling/tests).
    ///
    /// # Errors
    /// Propagates read failures; a truncated trailing frame is an
    /// `UnexpectedEof` error.
    pub fn read_frames(path: impl AsRef<Path>) -> io::Result<Vec<Vec<u8>>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut frames = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            let Some(header) = bytes.get(at..at + 4) else {
                return Err(io::ErrorKind::UnexpectedEof.into());
            };
            let len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
            at += 4;
            let Some(frame) = bytes.get(at..at + len) else {
                return Err(io::ErrorKind::UnexpectedEof.into());
            };
            frames.push(frame.to_vec());
            at += len;
        }
        Ok(frames)
    }
}

// --------------------------------------------------------------- blockstore

/// A height-addressed block store retaining a window of recent blocks.
///
/// Retained heights are `base + 1 ..= base + len`; `base` is the number of
/// pruned blocks (also the prune horizon: every height `<= base` is gone).
/// `base_parent` carries the hash of the block at height `base` so chain
/// validation can keep checking parent links across the pruned boundary.
#[derive(Debug)]
pub struct BlockStore<T> {
    base: u64,
    base_parent: Digest,
    blocks: VecDeque<T>,
    archive: Option<FileArchive>,
    archived: u64,
}

impl<T> Default for BlockStore<T> {
    fn default() -> Self {
        BlockStore::new(None)
    }
}

impl<T> BlockStore<T> {
    /// An empty store, optionally archiving pruned blocks.
    #[must_use]
    pub fn new(archive: Option<FileArchive>) -> BlockStore<T> {
        BlockStore {
            base: 0,
            base_parent: Digest::ZERO,
            blocks: VecDeque::new(),
            archive,
            archived: 0,
        }
    }

    /// Appends the next block (its height becomes `self.height() + 1`).
    pub fn push(&mut self, block: T) {
        self.blocks.push_back(block);
    }

    /// The chain tip height (`0` for an empty, never-pruned store).
    #[must_use]
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.blocks.len()
    }

    /// The prune horizon: highest pruned height (`0` = nothing pruned).
    #[must_use]
    pub fn prune_horizon(&self) -> u64 {
        self.base
    }

    /// Hash of the block at height `base` (`Digest::ZERO` if unpruned), the
    /// parent the oldest resident block must link to.
    #[must_use]
    pub fn base_parent(&self) -> Digest {
        self.base_parent
    }

    /// The block at `height`, if resident. `None` for height 0, heights
    /// above the tip, *and* pruned heights — callers distinguishing the
    /// last case check [`BlockStore::prune_horizon`] or use
    /// [`BlockStore::try_get`].
    #[must_use]
    pub fn get(&self, height: u64) -> Option<&T> {
        if height <= self.base {
            return None;
        }
        self.blocks.get((height - self.base - 1) as usize)
    }

    /// Mutable access to the block at `height`, if resident (test-side
    /// tampering hooks; production code never rewrites sealed blocks).
    #[must_use]
    pub fn get_mut(&mut self, height: u64) -> Option<&mut T> {
        if height <= self.base {
            return None;
        }
        self.blocks.get_mut((height - self.base - 1) as usize)
    }

    /// Like [`BlockStore::get`], but a pruned height is a typed error
    /// rather than `None`.
    ///
    /// # Errors
    /// [`PrunedRange`] when `1 <= height <= prune_horizon`.
    pub fn try_get(&self, height: u64) -> Result<Option<&T>, PrunedRange> {
        if height >= 1 && height <= self.base {
            return Err(PrunedRange {
                requested: height,
                horizon: self.base,
            });
        }
        Ok(self.get(height))
    }

    /// The most recent resident block.
    #[must_use]
    pub fn last(&self) -> Option<&T> {
        self.blocks.back()
    }

    /// The oldest resident block.
    #[must_use]
    pub fn first(&self) -> Option<&T> {
        self.blocks.front()
    }

    /// Iterates resident blocks oldest-first, paired with their heights.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base;
        self.blocks
            .iter()
            .enumerate()
            .map(move |(i, b)| (base + i as u64 + 1, b))
    }

    /// Total frames streamed to the archive so far.
    #[must_use]
    pub fn archived(&self) -> u64 {
        self.archived
    }
}

impl<T: ArchiveItem> BlockStore<T> {
    /// Evicts every block with height `<= horizon`, archiving each evicted
    /// block if an archive is attached. `hash_of` supplies the digest of
    /// the last evicted block, which becomes the new `base_parent`. The
    /// horizon is clamped so at least the tip stays resident; a horizon at
    /// or below the current base is a no-op. Returns the number evicted.
    ///
    /// # Errors
    /// Propagates archive write failures (no blocks are dropped on error).
    pub fn prune_below(&mut self, horizon: u64, hash_of: impl Fn(&T) -> Digest) -> io::Result<u64> {
        let horizon = horizon.min(self.height().saturating_sub(1));
        if horizon <= self.base {
            return Ok(0);
        }
        let evict = (horizon - self.base) as usize;
        if let Some(archive) = self.archive.as_mut() {
            for block in self.blocks.iter().take(evict) {
                archive.append(&block.encode_frame())?;
            }
            self.archived += evict as u64;
        }
        let mut last_hash = self.base_parent;
        for _ in 0..evict {
            let block = self.blocks.pop_front().expect("evict <= len");
            last_hash = hash_of(&block);
        }
        self.base = horizon;
        self.base_parent = last_hash;
        Ok(evict as u64)
    }
}

// --------------------------------------------------------------- statestore

/// The log of sealed checkpoints, newest last.
#[derive(Debug, Default)]
pub struct StateStore {
    checkpoints: Vec<Checkpoint>,
}

impl StateStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// Seals a checkpoint; heights must be strictly increasing.
    ///
    /// # Panics
    /// If `cp.height` does not exceed the last sealed height.
    pub fn seal(&mut self, cp: Checkpoint) {
        if let Some(last) = self.checkpoints.last() {
            assert!(
                cp.height > last.height,
                "checkpoint heights must be strictly increasing ({} after {})",
                cp.height,
                last.height
            );
        }
        self.checkpoints.push(cp);
    }

    /// The most recently sealed checkpoint.
    #[must_use]
    pub fn last(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// Every sealed checkpoint, oldest first.
    #[must_use]
    pub fn all(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Number of sealed checkpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether no checkpoint has been sealed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The newest checkpoint sealed at or below `height`.
    #[must_use]
    pub fn at_or_before(&self, height: u64) -> Option<&Checkpoint> {
        let idx = self.checkpoints.partition_point(|cp| cp.height <= height);
        idx.checked_sub(1).map(|i| &self.checkpoints[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug)]
    struct Item(u64);

    impl ArchiveItem for Item {
        fn encode_frame(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
    }

    fn digest_of(item: &Item) -> Digest {
        let mut d = [0u8; 32];
        d[..8].copy_from_slice(&item.0.to_le_bytes());
        Digest(d)
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "duc-storage-test-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn config_default_is_disabled() {
        let cfg = StorageConfig::default();
        assert!(!cfg.is_enabled());
        assert_eq!(cfg, StorageConfig::disabled());
        assert!(StorageConfig::enabled(16, 8).is_enabled());
        // interval 0 through `enabled` is clamped to 1, never silently off.
        assert!(StorageConfig::enabled(0, 8).is_enabled());
    }

    #[test]
    fn horizon_keeps_checkpoint_block_and_window() {
        let cfg = StorageConfig::enabled(10, 4);
        // Window binds: tip 12 with window 4 keeps 9..=12.
        assert_eq!(cfg.horizon_after_checkpoint(10, 12), 8);
        // Checkpoint binds: its own block (height 10) is always retained.
        assert_eq!(cfg.horizon_after_checkpoint(10, 100), 9);
        // Degenerate small chains never underflow.
        assert_eq!(cfg.horizon_after_checkpoint(1, 1), 0);
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let cp = Checkpoint {
            height: 42,
            state_commitment: Digest([7u8; 32]),
            accumulator: [9u8; 32],
            event_cursor_floor: 41,
        };
        let bytes = encode_to_vec(&cp);
        let back: Checkpoint = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, cp);
    }

    #[test]
    fn block_store_addresses_by_height_across_pruning() {
        let mut store: BlockStore<Item> = BlockStore::default();
        for i in 1..=10 {
            store.push(Item(i));
        }
        assert_eq!(store.height(), 10);
        assert_eq!(store.get(1).map(|b| b.0), Some(1));
        assert_eq!(store.get(10).map(|b| b.0), Some(10));
        assert!(store.get(0).is_none());
        assert!(store.get(11).is_none());

        let evicted = store.prune_below(6, digest_of).expect("prune");
        assert_eq!(evicted, 6);
        assert_eq!(store.prune_horizon(), 6);
        assert_eq!(store.base_parent(), digest_of(&Item(6)));
        assert_eq!(store.retained(), 4);
        assert_eq!(store.height(), 10);
        assert!(store.get(6).is_none());
        assert_eq!(store.get(7).map(|b| b.0), Some(7));
        assert_eq!(store.last().map(|b| b.0), Some(10));
        assert_eq!(store.first().map(|b| b.0), Some(7));
        assert_eq!(
            store.iter().map(|(h, b)| (h, b.0)).collect::<Vec<_>>(),
            vec![(7, 7), (8, 8), (9, 9), (10, 10)]
        );

        // Pruned heights are a typed error through try_get.
        assert_eq!(
            store.try_get(3).unwrap_err(),
            PrunedRange {
                requested: 3,
                horizon: 6
            }
        );
        assert!(store.try_get(8).expect("resident").is_some());
        assert!(store.try_get(11).expect("above tip is None").is_none());

        // Horizon is monotone; a stale lower horizon is a no-op.
        assert_eq!(store.prune_below(4, digest_of).expect("noop"), 0);
        // The tip is never evicted even by an over-eager horizon.
        assert_eq!(store.prune_below(u64::MAX, digest_of).expect("clamp"), 3);
        assert_eq!(store.retained(), 1);
        assert_eq!(store.last().map(|b| b.0), Some(10));
    }

    #[test]
    fn pruning_streams_frames_to_the_archive() {
        let path = temp_path("archive");
        let archive = FileArchive::open(&path).expect("open");
        let mut store: BlockStore<Item> = BlockStore::new(Some(archive));
        for i in 1..=5 {
            store.push(Item(i));
        }
        store.prune_below(3, digest_of).expect("prune");
        assert_eq!(store.archived(), 3);
        let frames = FileArchive::read_frames(&path).expect("read back");
        assert_eq!(
            frames,
            vec![
                1u64.to_le_bytes().to_vec(),
                2u64.to_le_bytes().to_vec(),
                3u64.to_le_bytes().to_vec()
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_store_seals_monotonically_and_finds_by_height() {
        let mut store = StateStore::new();
        assert!(store.is_empty());
        for h in [10u64, 20, 30] {
            store.seal(Checkpoint {
                height: h,
                state_commitment: Digest::ZERO,
                accumulator: [0u8; 32],
                event_cursor_floor: h.saturating_sub(1),
            });
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.last().map(|cp| cp.height), Some(30));
        assert_eq!(store.at_or_before(9), None);
        assert_eq!(store.at_or_before(10).map(|cp| cp.height), Some(10));
        assert_eq!(store.at_or_before(29).map(|cp| cp.height), Some(20));
        assert_eq!(store.at_or_before(99).map(|cp| cp.height), Some(30));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn state_store_rejects_non_monotone_seal() {
        let mut store = StateStore::new();
        let cp = Checkpoint {
            height: 5,
            state_commitment: Digest::ZERO,
            accumulator: [0u8; 32],
            event_cursor_floor: 0,
        };
        store.seal(cp.clone());
        store.seal(cp);
    }
}
