//! # duc-oracle — blockchain oracles
//!
//! Blockchains are closed worlds; oracles connect them to the outside
//! (paper §III-D, and the authors' own oracle-pattern taxonomy [Basile et
//! al., BPM 2021]). Four patterns, by flow direction × data operation:
//!
//! | | **push** (initiator sends) | **pull** (initiator asks) |
//! |---|---|---|
//! | **in** (off-chain → chain) | [`PushInOracle`] — pod manager submits state-changing transactions | [`PullInOracle`] — the chain requests data from devices (monitoring evidence) |
//! | **out** (chain → off-chain) | [`PushOutOracle`] — contract events fanned out to subscribed devices | [`PullOutOracle`] — off-chain components read contract state (resource indexing) |
//!
//! Every hop is priced by the [`duc_sim::NetworkModel`], so oracle traffic
//! shows up in the latency experiments; submission retries and delivery
//! drops feed the robustness experiment (E8).

pub mod patterns;

pub use patterns::{
    await_inclusion, poll_inclusion, HopKind, InclusionStatus, OracleError, OutboundDelivery,
    PullInOracle, PullOutOracle, PushInOracle, PushOutOracle,
};
