//! The four oracle patterns.

use duc_blockchain::{Blockchain, Event, Receipt, SignedTransaction, SubmitError, TxId};
use duc_codec::encode_to_vec;
use duc_sim::{Clock, EndpointId, NetworkModel, Rng, SimDuration, SimTime};

/// Oracle-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The message was lost on the network (after any retries).
    NetworkDropped,
    /// The chain rejected the transaction.
    Rejected(SubmitError),
    /// The transaction was not included before the deadline.
    InclusionTimeout {
        /// The deadline that passed.
        deadline: SimTime,
    },
    /// A view call failed.
    View(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::NetworkDropped => f.write_str("message dropped by network"),
            OracleError::Rejected(e) => write!(f, "transaction rejected: {e}"),
            OracleError::InclusionTimeout { deadline } => {
                write!(f, "transaction not included by {deadline}")
            }
            OracleError::View(e) => write!(f, "view call failed: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Advances the clock slot-by-slot until `id` has a receipt (inclusion) or
/// the timeout elapses. Models "waiting for confirmation".
///
/// # Errors
/// [`OracleError::InclusionTimeout`] when the deadline passes — e.g. when
/// crashed proposers stall the chain (robustness experiment E8).
pub fn await_inclusion(
    chain: &mut Blockchain,
    clock: &Clock,
    id: &TxId,
    timeout: SimDuration,
) -> Result<Receipt, OracleError> {
    let deadline = clock.now() + timeout;
    let interval = chain.block_interval();
    loop {
        chain.advance_to(clock.now());
        if let Some(receipt) = chain.receipt(id) {
            return Ok(receipt.clone());
        }
        if clock.now() >= deadline {
            return Err(OracleError::InclusionTimeout { deadline });
        }
        // Jump to the next slot boundary.
        let now = clock.now().as_nanos();
        let step = interval.as_nanos().max(1);
        let next = (now / step + 1) * step;
        clock.advance_to(SimTime::from_nanos(next.min(deadline.as_nanos())));
    }
}

/// **Push-in**: an off-chain component (pod manager, device) pushes a
/// state-changing transaction to the chain through an oracle relay node.
#[derive(Debug, Clone)]
pub struct PushInOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    /// Submission attempts on network loss (first try + retries).
    pub max_attempts: u32,
    submissions: u64,
    retries: u64,
}

impl PushInOracle {
    /// A push-in oracle at `relay` with 3 attempts.
    pub fn new(relay: EndpointId) -> PushInOracle {
        PushInOracle {
            relay,
            max_attempts: 3,
            submissions: 0,
            retries: 0,
        }
    }

    /// Submits `tx` from `from` through the relay; the clock advances by
    /// the network hops (and retry backoff on loss).
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] after all attempts fail,
    /// [`OracleError::Rejected`] when the chain refuses the transaction.
    pub fn submit(
        &mut self,
        chain: &mut Blockchain,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        tx: SignedTransaction,
    ) -> Result<TxId, OracleError> {
        self.submissions += 1;
        let size = tx.encoded_size() as u64;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.retries += 1;
                // Linear backoff before a retry.
                clock.advance(SimDuration::from_millis(100 * attempt as u64));
            }
            match net.transmit(from, self.relay, size, rng).delay() {
                None => continue,
                Some(hop) => {
                    clock.advance(hop);
                    return chain.submit(tx).map_err(OracleError::Rejected);
                }
            }
        }
        Err(OracleError::NetworkDropped)
    }

    /// Submits and waits for inclusion in one step.
    ///
    /// # Errors
    /// Any error of [`PushInOracle::submit`] or [`await_inclusion`].
    pub fn submit_and_confirm(
        &mut self,
        chain: &mut Blockchain,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        tx: SignedTransaction,
        timeout: SimDuration,
    ) -> Result<Receipt, OracleError> {
        let id = self.submit(chain, net, clock, rng, from, tx)?;
        await_inclusion(chain, clock, &id, timeout)
    }

    /// `(submissions, retries)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.submissions, self.retries)
    }
}

/// One event delivery computed by the push-out oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundDelivery {
    /// The chain event.
    pub event: Event,
    /// Block height it was emitted at.
    pub height: u64,
    /// The subscribed recipient.
    pub recipient: EndpointId,
    /// When it arrives at the recipient.
    pub arrives_at: SimTime,
}

/// **Push-out**: the chain pushes contract events to subscribed off-chain
/// components (policy updates fanning out to every device holding a copy).
#[derive(Debug, Clone)]
pub struct PushOutOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    cursor: u64,
    subscriptions: Vec<(String, EndpointId)>,
    delivered: u64,
    dropped: u64,
}

impl PushOutOracle {
    /// A push-out oracle at `relay` with no subscriptions.
    pub fn new(relay: EndpointId) -> PushOutOracle {
        PushOutOracle {
            relay,
            cursor: 0,
            subscriptions: Vec::new(),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Subscribes `recipient` to events with `topic`.
    pub fn subscribe(&mut self, topic: impl Into<String>, recipient: EndpointId) {
        self.subscriptions.push((topic.into(), recipient));
    }

    /// Removes all subscriptions of `recipient` to `topic`.
    pub fn unsubscribe(&mut self, topic: &str, recipient: EndpointId) {
        self.subscriptions
            .retain(|(t, r)| !(t == topic && *r == recipient));
    }

    /// Drains new chain events and computes their deliveries. Lost
    /// messages are counted and omitted (at-most-once delivery, like a
    /// plain webhook relay — the monitoring process tolerates this by
    /// re-polling).
    pub fn drain(
        &mut self,
        chain: &Blockchain,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
    ) -> Vec<OutboundDelivery> {
        let mut deliveries = Vec::new();
        let mut max_height = self.cursor;
        for (height, event) in chain.events_since(self.cursor) {
            max_height = max_height.max(*height);
            for (topic, recipient) in &self.subscriptions {
                if topic != &event.topic {
                    continue;
                }
                let size = event.data.len() as u64 + 64;
                match net.transmit(self.relay, *recipient, size, rng).delay() {
                    None => self.dropped += 1,
                    Some(hop) => {
                        self.delivered += 1;
                        deliveries.push(OutboundDelivery {
                            event: event.clone(),
                            height: *height,
                            recipient: *recipient,
                            arrives_at: clock.now() + hop,
                        });
                    }
                }
            }
        }
        self.cursor = max_height;
        deliveries
    }

    /// `(delivered, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }

    /// The height up to which events have been drained.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// **Pull-out**: an off-chain component reads contract state through the
/// oracle (resource indexing, certificate checks). Read-only, no
/// transaction.
#[derive(Debug, Clone)]
pub struct PullOutOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    reads: u64,
}

impl PullOutOracle {
    /// A pull-out oracle at `relay`.
    pub fn new(relay: EndpointId) -> PullOutOracle {
        PullOutOracle { relay, reads: 0 }
    }

    /// Executes a view call from `from`, charging a request and a response
    /// network hop.
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] on either hop,
    /// [`OracleError::View`] when the contract rejects the call.
    pub fn read(
        &mut self,
        chain: &Blockchain,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        contract: &duc_blockchain::ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, OracleError> {
        self.reads += 1;
        let request_size = (args.len() + method.len() + 64) as u64;
        let hop = net
            .transmit(from, self.relay, request_size, rng)
            .delay()
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop);
        let out = chain
            .call_view(contract, method, args)
            .map_err(|e| OracleError::View(e.to_string()))?;
        let hop_back = net
            .transmit(self.relay, from, out.len() as u64 + 32, rng)
            .delay()
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop_back);
        Ok(out)
    }

    /// Number of reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// **Pull-in**: the chain *requests* data from off-chain components — the
/// DE App opens a monitoring round and this oracle's off-chain half watches
/// for the request events, collects answers from devices, and pushes them
/// back via a [`PushInOracle`].
#[derive(Debug, Clone)]
pub struct PullInOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    cursor: u64,
    topic: String,
}

impl PullInOracle {
    /// A pull-in oracle watching for `topic` request events.
    pub fn new(relay: EndpointId, topic: impl Into<String>) -> PullInOracle {
        PullInOracle {
            relay,
            cursor: 0,
            topic: topic.into(),
        }
    }

    /// New request events since the last poll (the off-chain half's work
    /// queue). The poll itself costs one request/response pair against the
    /// chain gateway, modelled on `gateway_ep`.
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] when the poll round-trip is lost.
    pub fn poll_requests(
        &mut self,
        chain: &Blockchain,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        gateway_ep: EndpointId,
    ) -> Result<Vec<(u64, Event)>, OracleError> {
        let hop = net
            .transmit(self.relay, gateway_ep, 64, rng)
            .delay()
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop);
        let events: Vec<(u64, Event)> = chain
            .events_since(self.cursor)
            .filter(|(_, e)| e.topic == self.topic)
            .cloned()
            .collect();
        let response_size: u64 = events
            .iter()
            .map(|(_, e)| e.data.len() as u64 + 64)
            .sum::<u64>()
            .max(32);
        let hop_back = net
            .transmit(gateway_ep, self.relay, response_size, rng)
            .delay()
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop_back);
        if let Some(max_height) = chain.events_since(self.cursor).map(|(h, _)| *h).max() {
            self.cursor = max_height;
        }
        Ok(events)
    }

    /// The watched topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }
}

/// Encodes typed view-call arguments (convenience re-export for callers).
pub fn encode_args<T: duc_codec::Encode>(args: &T) -> Vec<u8> {
    encode_to_vec(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_blockchain::{CallCtx, Contract, ContractError, ContractId};
    use duc_codec::decode_from_slice;
    use duc_sim::{LatencyModel, LinkConfig};

    struct Echo;

    impl Contract for Echo {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "store" => {
                    let (v,): (u64,) = decode_from_slice(args)?;
                    ctx.set(b"v".to_vec(), &v)?;
                    ctx.emit("Stored", encode_to_vec(&(v,)))?;
                    Ok(Vec::new())
                }
                "load" => {
                    let v: u64 = ctx.get(b"v")?.unwrap_or(0);
                    Ok(encode_to_vec(&(v,)))
                }
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    struct Setup {
        chain: Blockchain,
        net: NetworkModel,
        clock: Clock,
        rng: Rng,
        device: EndpointId,
        relay: EndpointId,
        gateway: EndpointId,
        key: duc_crypto::KeyPair,
    }

    fn setup(link: LinkConfig) -> Setup {
        let mut chain = Blockchain::builder()
            .validators(2)
            .block_interval(SimDuration::from_secs(2))
            .build();
        chain.deploy(ContractId::new("echo"), Box::new(Echo));
        let key = chain.create_funded_account(b"device-owner", 1_000_000_000);
        let mut net = NetworkModel::new(link);
        let device = net.add_endpoint("device");
        let relay = net.add_endpoint("oracle-relay");
        let gateway = net.add_endpoint("chain-gateway");
        Setup {
            chain,
            net,
            clock: Clock::new(),
            rng: Rng::seed_from_u64(7),
            device,
            relay,
            gateway,
            key,
        }
    }

    fn fixed_link(ms: u64) -> LinkConfig {
        LinkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(ms)),
            drop_probability: 0.0,
            bandwidth_bps: None,
        }
    }

    #[test]
    fn push_in_submits_and_confirms() {
        let mut s = setup(fixed_link(10));
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(42u64,)),
            1_000_000,
        );
        let receipt = oracle
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(30),
            )
            .expect("included");
        assert!(receipt.status.is_ok());
        // Network hop (10 ms) then inclusion at the 2 s slot boundary.
        assert_eq!(s.clock.now(), SimTime::from_secs(2));
        assert_eq!(oracle.stats(), (1, 0));
    }

    #[test]
    fn push_in_retries_on_lossy_network() {
        let mut s = setup(LinkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(5)),
            drop_probability: 0.6,
            bandwidth_bps: None,
        });
        let mut oracle = PushInOracle::new(s.relay);
        oracle.max_attempts = 20;
        let mut successes = 0;
        for i in 0..10u64 {
            let tx = s.chain.build_call(
                &s.key,
                ContractId::new("echo"),
                "store",
                encode_to_vec(&(i,)),
                1_000_000,
            );
            if oracle
                .submit(&mut s.chain, &mut s.net, &s.clock, &mut s.rng, s.device, tx)
                .is_ok()
            {
                successes += 1;
            }
        }
        assert_eq!(successes, 10, "20 attempts beat 60% loss");
        let (_, retries) = oracle.stats();
        assert!(retries > 0, "retries occurred");
    }

    #[test]
    fn push_in_gives_up_when_partitioned() {
        let mut s = setup(fixed_link(5));
        s.net.partition(s.device, s.relay);
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(1u64,)),
            1_000_000,
        );
        assert_eq!(
            oracle.submit(&mut s.chain, &mut s.net, &s.clock, &mut s.rng, s.device, tx),
            Err(OracleError::NetworkDropped)
        );
    }

    #[test]
    fn inclusion_times_out_when_all_validators_down() {
        let mut s = setup(fixed_link(5));
        s.chain.set_validator_down(0, true);
        s.chain.set_validator_down(1, true);
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(1u64,)),
            1_000_000,
        );
        let err = oracle
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap_err();
        assert!(matches!(err, OracleError::InclusionTimeout { .. }));
    }

    #[test]
    fn push_out_fans_out_to_subscribers() {
        let mut s = setup(fixed_link(10));
        let d2 = s.net.add_endpoint("device-2");
        let mut push_out = PushOutOracle::new(s.relay);
        push_out.subscribe("Stored", s.device);
        push_out.subscribe("Stored", d2);
        push_out.subscribe("OtherTopic", s.device);

        let mut push_in = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(9u64,)),
            1_000_000,
        );
        push_in
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap();

        let deliveries = push_out.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng);
        assert_eq!(deliveries.len(), 2, "one per matching subscriber");
        for d in &deliveries {
            assert_eq!(d.event.topic, "Stored");
            assert_eq!(d.arrives_at, s.clock.now() + SimDuration::from_millis(10));
        }
        // A second drain yields nothing (cursor advanced).
        assert!(push_out.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng).is_empty());
        assert_eq!(push_out.stats(), (2, 0));
        // Unsubscribe stops delivery.
        push_out.unsubscribe("Stored", d2);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(10u64,)),
            1_000_000,
        );
        push_in
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap();
        let deliveries = push_out.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].recipient, s.device);
    }

    #[test]
    fn pull_out_reads_state_with_latency() {
        let mut s = setup(fixed_link(25));
        // Store something first (directly, no oracle needed for setup).
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(7u64,)),
            1_000_000,
        );
        s.chain.submit(tx).unwrap();
        s.clock.advance_to(SimTime::from_secs(2));
        s.chain.advance_to(s.clock.now());

        let before = s.clock.now();
        let mut pull_out = PullOutOracle::new(s.relay);
        let out = pull_out
            .read(
                &s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                &ContractId::new("echo"),
                "load",
                &[],
            )
            .expect("view ok");
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 7);
        assert_eq!(s.clock.now() - before, SimDuration::from_millis(50), "two 25 ms hops");
        assert_eq!(pull_out.reads(), 1);
        // Bad method surfaces as a view error.
        assert!(matches!(
            pull_out.read(
                &s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                &ContractId::new("echo"),
                "nope",
                &[],
            ),
            Err(OracleError::View(_))
        ));
    }

    #[test]
    fn pull_in_polls_request_events() {
        let mut s = setup(fixed_link(5));
        let mut pull_in = PullInOracle::new(s.relay, "Stored");
        // Nothing yet.
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert!(events.is_empty());
        // Produce an event.
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(3u64,)),
            1_000_000,
        );
        s.chain.submit(tx).unwrap();
        s.clock.advance_to(SimTime::from_secs(2));
        s.chain.advance_to(s.clock.now());
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(pull_in.topic(), "Stored");
        // Cursor advanced: re-poll is empty.
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert!(events.is_empty());
    }
}
