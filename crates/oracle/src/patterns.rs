//! The four oracle patterns.

use std::rc::Rc;

use duc_blockchain::{
    ContractError, Event, Ledger, PrunedRange, Receipt, SignedTransaction, SubmitError, TxId,
};
use duc_codec::encode_to_vec;
use duc_sim::{Clock, EndpointId, NetworkModel, Rng, SimDuration, SimTime};

/// Which network hop of an oracle interaction failed. Typed so a driver can
/// attribute a failure to a link and decide retry-vs-abort per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// Component → relay uplink of a push-in submission.
    PushInUplink,
    /// Component → relay request of a pull-out read.
    PullOutRequest,
    /// Relay → component response of a pull-out read.
    PullOutResponse,
    /// Device → pod-manager resource request.
    PodRequest,
    /// Pod-manager → device resource response.
    PodResponse,
    /// Relay → gateway poll of the pull-in oracle.
    PullInPoll,
    /// Gateway → relay return of the pull-in oracle.
    PullInReturn,
    /// Relay → device evidence probe of a monitoring round.
    DeviceProbe,
}

impl std::fmt::Display for HopKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HopKind::PushInUplink => "push-in uplink",
            HopKind::PullOutRequest => "pull-out request",
            HopKind::PullOutResponse => "pull-out response",
            HopKind::PodRequest => "pod request",
            HopKind::PodResponse => "pod response",
            HopKind::PullInPoll => "pull-in poll",
            HopKind::PullInReturn => "pull-in return",
            HopKind::DeviceProbe => "device probe",
        })
    }
}

/// Oracle-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The message was lost on the network (after any retries).
    NetworkDropped,
    /// A driver abandoned a hop after exhausting its fault-recovery budget
    /// (bounded retries, or a crash/partition window outlasting the hop
    /// deadline).
    GaveUp {
        /// The hop that could not be completed.
        hop: HopKind,
        /// Delivery attempts actually made before giving up.
        attempts: u32,
        /// The retry deadline that forced the decision.
        deadline: SimTime,
    },
    /// The chain rejected the transaction.
    Rejected(SubmitError),
    /// The transaction was not included before the deadline.
    InclusionTimeout {
        /// The deadline that passed.
        deadline: SimTime,
    },
    /// A view call failed.
    View(ContractError),
    /// The cursor fell below the chain's prune horizon: the requested
    /// event range has been evicted behind a checkpoint. Blind retry can
    /// never succeed — the holder must resync its cursor to the carried
    /// horizon (see `PushOutOracle::resync` / `PullInOracle::resync`)
    /// before polling again.
    Pruned(PrunedRange),
}

impl OracleError {
    /// Whether the failure is *transient*: caused by the network or chain
    /// liveness, so re-issuing the whole operation later (after faults
    /// heal) can plausibly succeed. Permanent failures — contract
    /// rejections, view errors, and pruned cursor ranges (which need an
    /// explicit resync, not a retry) — abort instead of retrying.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            OracleError::NetworkDropped
                | OracleError::GaveUp { .. }
                | OracleError::InclusionTimeout { .. }
        )
    }
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::NetworkDropped => f.write_str("message dropped by network"),
            OracleError::GaveUp {
                hop,
                attempts,
                deadline,
            } => {
                write!(
                    f,
                    "gave up on {hop} after {attempts} attempts (deadline {deadline})"
                )
            }
            OracleError::Rejected(e) => write!(f, "transaction rejected: {e}"),
            OracleError::InclusionTimeout { deadline } => {
                write!(f, "transaction not included by {deadline}")
            }
            OracleError::View(e) => write!(f, "view call failed: {e}"),
            OracleError::Pruned(e) => write!(f, "cursor below prune horizon: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// One observation of a transaction's inclusion state, as seen by a
/// non-blocking caller (see [`poll_inclusion`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InclusionStatus {
    /// The transaction is included; here is its receipt.
    Included(Receipt),
    /// Not included yet; check again at `retry_at` (the next slot boundary,
    /// capped at the deadline).
    Pending {
        /// When the next poll is due.
        retry_at: SimTime,
    },
    /// The deadline passed without inclusion.
    TimedOut {
        /// The deadline that passed.
        deadline: SimTime,
    },
}

/// Non-blocking inclusion check: advances the chain to `now`, looks for a
/// receipt, and — when the transaction is still pending — reports when the
/// caller should poll again instead of spinning the shared clock forward.
///
/// This is the continuation-friendly half of [`await_inclusion`]: a driver
/// schedules a wake-up at `retry_at` and re-polls, so hundreds of in-flight
/// processes can wait for inclusion concurrently without serializing on the
/// clock.
pub fn poll_inclusion<L: Ledger>(
    chain: &mut L,
    now: SimTime,
    id: &TxId,
    deadline: SimTime,
) -> InclusionStatus {
    chain.advance_to(now);
    if let Some(receipt) = chain.receipt(id) {
        return InclusionStatus::Included(receipt);
    }
    if now >= deadline {
        return InclusionStatus::TimedOut { deadline };
    }
    InclusionStatus::Pending {
        retry_at: chain.next_slot_at(now).min(deadline),
    }
}

/// Advances the clock slot-by-slot until `id` has a receipt (inclusion) or
/// the timeout elapses. Models "waiting for confirmation".
///
/// # Errors
/// [`OracleError::InclusionTimeout`] when the deadline passes — e.g. when
/// crashed proposers stall the chain (robustness experiment E8).
pub fn await_inclusion<L: Ledger>(
    chain: &mut L,
    clock: &Clock,
    id: &TxId,
    timeout: SimDuration,
) -> Result<Receipt, OracleError> {
    let deadline = clock.now() + timeout;
    loop {
        match poll_inclusion(chain, clock.now(), id, deadline) {
            InclusionStatus::Included(receipt) => return Ok(receipt),
            InclusionStatus::TimedOut { deadline } => {
                return Err(OracleError::InclusionTimeout { deadline })
            }
            InclusionStatus::Pending { retry_at } => clock.advance_to(retry_at),
        }
    }
}

/// **Push-in**: an off-chain component (pod manager, device) pushes a
/// state-changing transaction to the chain through an oracle relay node.
#[derive(Debug, Clone)]
pub struct PushInOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    /// Submission attempts on network loss (first try + retries).
    pub max_attempts: u32,
    submissions: u64,
    retries: u64,
}

impl PushInOracle {
    /// A push-in oracle at `relay` with 3 attempts.
    pub fn new(relay: EndpointId) -> PushInOracle {
        PushInOracle {
            relay,
            max_attempts: 3,
            submissions: 0,
            retries: 0,
        }
    }

    /// One non-blocking uplink attempt of a logical submission: records the
    /// submission/retry counters (`attempt` 0 is the first try) and returns
    /// the hop delay when the message got through, `None` when it was lost.
    ///
    /// The caller owns the timeline: on success it delivers the transaction
    /// to the chain `Some(hop)` later; on loss it retries [`Self::backoff`]
    /// later, up to [`PushInOracle::max_attempts`] attempts in total.
    pub fn attempt(
        &mut self,
        net: &mut NetworkModel,
        rng: &mut Rng,
        from: EndpointId,
        size: u64,
        attempt: u32,
    ) -> Option<SimDuration> {
        if attempt == 0 {
            self.submissions += 1;
        } else {
            self.retries += 1;
        }
        net.transmit(from, self.relay, size, rng).delay()
    }

    /// Linear backoff before retry number `attempt` (attempt 1 = first
    /// retry).
    pub fn backoff(attempt: u32) -> SimDuration {
        SimDuration::from_millis(100 * attempt as u64)
    }

    /// Submits `tx` from `from` through the relay; the clock advances by
    /// the network hops (and retry backoff on loss).
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] after all attempts fail,
    /// [`OracleError::Rejected`] when the chain refuses the transaction.
    pub fn submit<L: Ledger>(
        &mut self,
        chain: &mut L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        tx: SignedTransaction,
    ) -> Result<TxId, OracleError> {
        let size = tx.encoded_size() as u64;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                // Linear backoff before a retry.
                clock.advance(Self::backoff(attempt));
            }
            match self.attempt(net, rng, from, size, attempt) {
                None => continue,
                Some(hop) => {
                    clock.advance(hop);
                    return chain.submit(tx).map_err(OracleError::Rejected);
                }
            }
        }
        Err(OracleError::NetworkDropped)
    }

    /// Submits and waits for inclusion in one step.
    ///
    /// # Errors
    /// Any error of [`PushInOracle::submit`] or [`await_inclusion`].
    #[allow(clippy::too_many_arguments)] // the full blocking conveniences
    pub fn submit_and_confirm<L: Ledger>(
        &mut self,
        chain: &mut L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        tx: SignedTransaction,
        timeout: SimDuration,
    ) -> Result<Receipt, OracleError> {
        let id = self.submit(chain, net, clock, rng, from, tx)?;
        await_inclusion(chain, clock, &id, timeout)
    }

    /// `(submissions, retries)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.submissions, self.retries)
    }
}

/// One event delivery computed by the push-out oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundDelivery {
    /// The chain event (`Rc`-shared with the ledger's log — fan-out to N
    /// subscribers clones N pointers, not N payloads).
    pub event: Rc<Event>,
    /// Block height it was emitted at.
    pub height: u64,
    /// The subscribed recipient.
    pub recipient: EndpointId,
    /// When it arrives at the recipient.
    pub arrives_at: SimTime,
}

/// **Push-out**: the chain pushes contract events to subscribed off-chain
/// components (policy updates fanning out to every device holding a copy).
#[derive(Debug, Clone)]
pub struct PushOutOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    cursor: u64,
    subscriptions: Vec<(String, EndpointId)>,
    delivered: u64,
    dropped: u64,
    resyncs: u64,
}

impl PushOutOracle {
    /// A push-out oracle at `relay` with no subscriptions.
    pub fn new(relay: EndpointId) -> PushOutOracle {
        PushOutOracle {
            relay,
            cursor: 0,
            subscriptions: Vec::new(),
            delivered: 0,
            dropped: 0,
            resyncs: 0,
        }
    }

    /// Subscribes `recipient` to events with `topic`.
    pub fn subscribe(&mut self, topic: impl Into<String>, recipient: EndpointId) {
        self.subscriptions.push((topic.into(), recipient));
    }

    /// Removes all subscriptions of `recipient` to `topic`.
    pub fn unsubscribe(&mut self, topic: &str, recipient: EndpointId) {
        self.subscriptions
            .retain(|(t, r)| !(t == topic && *r == recipient));
    }

    /// Drains new chain events and computes their deliveries. Lost
    /// messages are counted and omitted (at-most-once delivery, like a
    /// plain webhook relay — the monitoring process tolerates this by
    /// re-polling). If the cursor has fallen below the chain's prune
    /// horizon, the oracle resyncs to the horizon (counted in
    /// [`PushOutOracle::resyncs`]) and drains from there — the behaviour
    /// [`PushOutOracle::try_drain`] surfaces as a typed error instead.
    pub fn drain<L: Ledger>(
        &mut self,
        chain: &L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
    ) -> Vec<OutboundDelivery> {
        match self.try_drain(chain, net, clock, rng) {
            Ok(deliveries) => deliveries,
            Err(OracleError::Pruned(e)) => {
                self.resync(e.horizon);
                self.try_drain(chain, net, clock, rng)
                    .expect("cursor at horizon is always valid")
            }
            Err(_) => unreachable!("try_drain only fails with Pruned"),
        }
    }

    /// Like [`PushOutOracle::drain`], but a cursor below the prune horizon
    /// is a typed [`OracleError::Pruned`] error: events in
    /// `(cursor, horizon]` were evicted before this relay saw them, and the
    /// caller decides how to recover (checkpoint-resync via
    /// [`PushOutOracle::resync`], then drain again).
    ///
    /// # Errors
    /// [`OracleError::Pruned`] when the cursor is below the horizon.
    pub fn try_drain<L: Ledger>(
        &mut self,
        chain: &L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
    ) -> Result<Vec<OutboundDelivery>, OracleError> {
        let fresh = chain
            .try_events_since(self.cursor)
            .map_err(OracleError::Pruned)?;
        let mut deliveries = Vec::new();
        let mut max_height = self.cursor;
        for (height, event) in fresh {
            max_height = max_height.max(*height);
            for (topic, recipient) in &self.subscriptions {
                if topic != &event.topic {
                    continue;
                }
                let size = event.data.len() as u64 + 64;
                match net.transmit(self.relay, *recipient, size, rng).delay() {
                    None => self.dropped += 1,
                    Some(hop) => {
                        self.delivered += 1;
                        deliveries.push(OutboundDelivery {
                            event: Rc::clone(event),
                            height: *height,
                            recipient: *recipient,
                            arrives_at: clock.now() + hop,
                        });
                    }
                }
            }
        }
        self.cursor = max_height;
        Ok(deliveries)
    }

    /// Checkpoint-resync: advances the cursor to `floor` (monotone) after
    /// a [`OracleError::Pruned`] error. Events in the skipped range are
    /// gone; subscribers recover the way they already tolerate at-most-once
    /// delivery — by re-polling state.
    pub fn resync(&mut self, floor: u64) {
        if floor > self.cursor {
            self.cursor = floor;
            self.resyncs += 1;
        }
    }

    /// How many times the cursor was resynced past a pruned range.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// `(delivered, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }

    /// The height up to which events have been drained.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// **Pull-out**: an off-chain component reads contract state through the
/// oracle (resource indexing, certificate checks). Read-only, no
/// transaction.
#[derive(Debug, Clone)]
pub struct PullOutOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    reads: u64,
}

impl PullOutOracle {
    /// A pull-out oracle at `relay`.
    pub fn new(relay: EndpointId) -> PullOutOracle {
        PullOutOracle { relay, reads: 0 }
    }

    /// The wire size of a read request for `method`/`args` (what
    /// [`PullOutOracle::begin_read`] transmits).
    pub fn request_size(method: &str, args: &[u8]) -> u64 {
        (args.len() + method.len() + 64) as u64
    }

    /// The wire size of a read response carrying `payload_len` bytes (what
    /// [`PullOutOracle::finish_read`] transmits).
    pub fn response_size(payload_len: usize) -> u64 {
        payload_len as u64 + 32
    }

    /// Accounts one logical read without transmitting. Drivers that manage
    /// their own per-hop retries count the read once up front, then retry
    /// the raw hops without inflating the counter.
    pub fn count_read(&mut self) {
        self.reads += 1;
    }

    /// Non-blocking first half of a read: counts the read and returns the
    /// request-hop delay (`from` → relay), or `None` when the hop is lost.
    pub fn begin_read(
        &mut self,
        net: &mut NetworkModel,
        rng: &mut Rng,
        from: EndpointId,
        method: &str,
        args: &[u8],
    ) -> Option<SimDuration> {
        self.reads += 1;
        net.transmit(from, self.relay, Self::request_size(method, args), rng)
            .delay()
    }

    /// Non-blocking second half of a read: the response-hop delay (relay →
    /// `to`) for a `payload_len`-byte result, or `None` when lost.
    pub fn finish_read(
        &self,
        net: &mut NetworkModel,
        rng: &mut Rng,
        to: EndpointId,
        payload_len: usize,
    ) -> Option<SimDuration> {
        net.transmit(self.relay, to, Self::response_size(payload_len), rng)
            .delay()
    }

    /// Executes a view call from `from`, charging a request and a response
    /// network hop.
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] on either hop,
    /// [`OracleError::View`] when the contract rejects the call.
    #[allow(clippy::too_many_arguments)] // the full blocking convenience
    pub fn read<L: Ledger>(
        &mut self,
        chain: &L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        from: EndpointId,
        contract: &duc_blockchain::ContractId,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, OracleError> {
        let hop = self
            .begin_read(net, rng, from, method, args)
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop);
        let out = chain
            .call_view(contract, method, args)
            .map_err(OracleError::View)?;
        let hop_back = self
            .finish_read(net, rng, from, out.len())
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop_back);
        Ok(out)
    }

    /// Number of reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// One pull-in poll: the topic-matching request events, the response
/// payload size a gateway would ship back, and the cursor position the
/// poll covers (committed separately via [`PullInOracle::commit_cursor`]).
pub type PullInPoll = (Vec<(u64, Rc<Event>)>, u64, u64);

/// **Pull-in**: the chain *requests* data from off-chain components — the
/// DE App opens a monitoring round and this oracle's off-chain half watches
/// for the request events, collects answers from devices, and pushes them
/// back via a [`PushInOracle`].
#[derive(Debug, Clone)]
pub struct PullInOracle {
    /// The relay's network endpoint.
    pub relay: EndpointId,
    cursor: u64,
    topic: String,
    resyncs: u64,
}

impl PullInOracle {
    /// A pull-in oracle watching for `topic` request events.
    pub fn new(relay: EndpointId, topic: impl Into<String>) -> PullInOracle {
        PullInOracle {
            relay,
            cursor: 0,
            topic: topic.into(),
            resyncs: 0,
        }
    }

    /// Non-blocking first half of a poll: the request-hop delay (relay →
    /// gateway), or `None` when lost.
    pub fn begin_poll(
        &self,
        net: &mut NetworkModel,
        rng: &mut Rng,
        gateway_ep: EndpointId,
    ) -> Option<SimDuration> {
        net.transmit(self.relay, gateway_ep, 64, rng).delay()
    }

    /// Collects the topic-matching request events since the last poll;
    /// returns the events, the response payload size a gateway would ship
    /// back, and the cursor position this poll covers. The cursor is *not*
    /// advanced here — the caller commits it with
    /// [`PullInOracle::commit_cursor`] once the response hop actually
    /// arrives, so a lost response never strands events behind the cursor.
    pub fn collect_requests<L: Ledger>(&self, chain: &L) -> PullInPoll {
        self.collect_from(chain.events_since(self.cursor))
    }

    /// Like [`PullInOracle::collect_requests`], but a cursor below the
    /// chain's prune horizon is a typed [`OracleError::Pruned`] error —
    /// request events in `(cursor, horizon]` were evicted before this poll
    /// saw them, so the caller must checkpoint-resync
    /// ([`PullInOracle::resync`]) instead of treating the poll as empty.
    ///
    /// # Errors
    /// [`OracleError::Pruned`] when the cursor is below the horizon.
    pub fn try_collect_requests<L: Ledger>(&self, chain: &L) -> Result<PullInPoll, OracleError> {
        let fresh = chain
            .try_events_since(self.cursor)
            .map_err(OracleError::Pruned)?;
        Ok(self.collect_from(fresh))
    }

    fn collect_from(&self, fresh: &[(u64, Rc<Event>)]) -> PullInPoll {
        let cursor_to = fresh.iter().map(|(h, _)| *h).max().unwrap_or(self.cursor);
        let events: Vec<(u64, Rc<Event>)> = fresh
            .iter()
            .filter(|(_, e)| e.topic == self.topic)
            .map(|(h, e)| (*h, Rc::clone(e)))
            .collect();
        let response_size: u64 = events
            .iter()
            .map(|(_, e)| e.data.len() as u64 + 64)
            .sum::<u64>()
            .max(32);
        (events, response_size, cursor_to)
    }

    /// Advances the cursor to `height` (monotonic) after a poll's response
    /// hop succeeded, acknowledging everything the poll served.
    pub fn commit_cursor(&mut self, height: u64) {
        self.cursor = self.cursor.max(height);
    }

    /// Checkpoint-resync: advances the cursor to `floor` (monotone) after
    /// a [`OracleError::Pruned`] error, counted in
    /// [`PullInOracle::resyncs`]. Monitoring recovers naturally: rounds
    /// whose request events were pruned before any poll saw them are
    /// re-opened by the round scheduler, not replayed from history.
    pub fn resync(&mut self, floor: u64) {
        if floor > self.cursor {
            self.cursor = floor;
            self.resyncs += 1;
        }
    }

    /// How many times the cursor was resynced past a pruned range.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Non-blocking second half of a poll: the response-hop delay (gateway
    /// → relay), or `None` when lost.
    pub fn finish_poll(
        &self,
        net: &mut NetworkModel,
        rng: &mut Rng,
        gateway_ep: EndpointId,
        response_size: u64,
    ) -> Option<SimDuration> {
        net.transmit(gateway_ep, self.relay, response_size, rng)
            .delay()
    }

    /// New request events since the last poll (the off-chain half's work
    /// queue). The poll itself costs one request/response pair against the
    /// chain gateway, modelled on `gateway_ep`.
    ///
    /// # Errors
    /// [`OracleError::NetworkDropped`] when the poll round-trip is lost.
    pub fn poll_requests<L: Ledger>(
        &mut self,
        chain: &L,
        net: &mut NetworkModel,
        clock: &Clock,
        rng: &mut Rng,
        gateway_ep: EndpointId,
    ) -> Result<Vec<(u64, Rc<Event>)>, OracleError> {
        let hop = self
            .begin_poll(net, rng, gateway_ep)
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop);
        let (events, response_size, cursor_to) = self.collect_requests(chain);
        let hop_back = self
            .finish_poll(net, rng, gateway_ep, response_size)
            .ok_or(OracleError::NetworkDropped)?;
        clock.advance(hop_back);
        self.commit_cursor(cursor_to);
        Ok(events)
    }

    /// The watched topic.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The height up to which request events have been acknowledged.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// Encodes typed view-call arguments (convenience re-export for callers).
pub fn encode_args<T: duc_codec::Encode>(args: &T) -> Vec<u8> {
    encode_to_vec(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_blockchain::{Blockchain, CallCtx, Contract, ContractError, ContractId};
    use duc_codec::decode_from_slice;
    use duc_sim::{LatencyModel, LinkConfig};

    struct Echo;

    impl Contract for Echo {
        fn call(
            &self,
            ctx: &mut CallCtx<'_>,
            method: &str,
            args: &[u8],
        ) -> Result<Vec<u8>, ContractError> {
            match method {
                "store" => {
                    let (v,): (u64,) = decode_from_slice(args)?;
                    ctx.set(b"v".to_vec(), &v)?;
                    ctx.emit("Stored", encode_to_vec(&(v,)))?;
                    Ok(Vec::new())
                }
                "load" => {
                    let v: u64 = ctx.get(b"v")?.unwrap_or(0);
                    Ok(encode_to_vec(&(v,)))
                }
                other => Err(ContractError::UnknownMethod(other.into())),
            }
        }
    }

    struct Setup {
        chain: Blockchain,
        net: NetworkModel,
        clock: Clock,
        rng: Rng,
        device: EndpointId,
        relay: EndpointId,
        gateway: EndpointId,
        key: duc_crypto::KeyPair,
    }

    fn setup(link: LinkConfig) -> Setup {
        let mut chain = Blockchain::builder()
            .validators(2)
            .block_interval(SimDuration::from_secs(2))
            .build();
        chain.deploy(ContractId::new("echo"), Box::new(Echo));
        let key = chain.create_funded_account(b"device-owner", 1_000_000_000);
        let mut net = NetworkModel::new(link);
        let device = net.add_endpoint("device");
        let relay = net.add_endpoint("oracle-relay");
        let gateway = net.add_endpoint("chain-gateway");
        Setup {
            chain,
            net,
            clock: Clock::new(),
            rng: Rng::seed_from_u64(7),
            device,
            relay,
            gateway,
            key,
        }
    }

    fn fixed_link(ms: u64) -> LinkConfig {
        LinkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(ms)),
            drop_probability: 0.0,
            bandwidth_bps: None,
        }
    }

    #[test]
    fn push_in_submits_and_confirms() {
        let mut s = setup(fixed_link(10));
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(42u64,)),
            1_000_000,
        );
        let receipt = oracle
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(30),
            )
            .expect("included");
        assert!(receipt.status.is_ok());
        // Network hop (10 ms) then inclusion at the 2 s slot boundary.
        assert_eq!(s.clock.now(), SimTime::from_secs(2));
        assert_eq!(oracle.stats(), (1, 0));
    }

    #[test]
    fn push_in_retries_on_lossy_network() {
        let mut s = setup(LinkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(5)),
            drop_probability: 0.6,
            bandwidth_bps: None,
        });
        let mut oracle = PushInOracle::new(s.relay);
        oracle.max_attempts = 20;
        let mut successes = 0;
        for i in 0..10u64 {
            let tx = s.chain.build_call(
                &s.key,
                ContractId::new("echo"),
                "store",
                encode_to_vec(&(i,)),
                1_000_000,
            );
            if oracle
                .submit(&mut s.chain, &mut s.net, &s.clock, &mut s.rng, s.device, tx)
                .is_ok()
            {
                successes += 1;
            }
        }
        assert_eq!(successes, 10, "20 attempts beat 60% loss");
        let (_, retries) = oracle.stats();
        assert!(retries > 0, "retries occurred");
    }

    #[test]
    fn push_in_gives_up_when_partitioned() {
        let mut s = setup(fixed_link(5));
        s.net.partition(s.device, s.relay);
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(1u64,)),
            1_000_000,
        );
        assert_eq!(
            oracle.submit(&mut s.chain, &mut s.net, &s.clock, &mut s.rng, s.device, tx),
            Err(OracleError::NetworkDropped)
        );
    }

    #[test]
    fn inclusion_times_out_when_all_validators_down() {
        let mut s = setup(fixed_link(5));
        s.chain.set_validator_down(0, true);
        s.chain.set_validator_down(1, true);
        let mut oracle = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(1u64,)),
            1_000_000,
        );
        let err = oracle
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap_err();
        assert!(matches!(err, OracleError::InclusionTimeout { .. }));
    }

    #[test]
    fn push_out_fans_out_to_subscribers() {
        let mut s = setup(fixed_link(10));
        let d2 = s.net.add_endpoint("device-2");
        let mut push_out = PushOutOracle::new(s.relay);
        push_out.subscribe("Stored", s.device);
        push_out.subscribe("Stored", d2);
        push_out.subscribe("OtherTopic", s.device);

        let mut push_in = PushInOracle::new(s.relay);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(9u64,)),
            1_000_000,
        );
        push_in
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap();

        let deliveries = push_out.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng);
        assert_eq!(deliveries.len(), 2, "one per matching subscriber");
        for d in &deliveries {
            assert_eq!(d.event.topic, "Stored");
            assert_eq!(d.arrives_at, s.clock.now() + SimDuration::from_millis(10));
        }
        // A second drain yields nothing (cursor advanced).
        assert!(push_out
            .drain(&s.chain, &mut s.net, &s.clock, &mut s.rng)
            .is_empty());
        assert_eq!(push_out.stats(), (2, 0));
        // Unsubscribe stops delivery.
        push_out.unsubscribe("Stored", d2);
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(10u64,)),
            1_000_000,
        );
        push_in
            .submit_and_confirm(
                &mut s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                tx,
                SimDuration::from_secs(10),
            )
            .unwrap();
        let deliveries = push_out.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].recipient, s.device);
    }

    #[test]
    fn pull_out_reads_state_with_latency() {
        let mut s = setup(fixed_link(25));
        // Store something first (directly, no oracle needed for setup).
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(7u64,)),
            1_000_000,
        );
        s.chain.submit(tx).unwrap();
        s.clock.advance_to(SimTime::from_secs(2));
        s.chain.advance_to(s.clock.now());

        let before = s.clock.now();
        let mut pull_out = PullOutOracle::new(s.relay);
        let out = pull_out
            .read(
                &s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                &ContractId::new("echo"),
                "load",
                &[],
            )
            .expect("view ok");
        let (v,): (u64,) = decode_from_slice(&out).unwrap();
        assert_eq!(v, 7);
        assert_eq!(
            s.clock.now() - before,
            SimDuration::from_millis(50),
            "two 25 ms hops"
        );
        assert_eq!(pull_out.reads(), 1);
        // Bad method surfaces as a view error.
        assert!(matches!(
            pull_out.read(
                &s.chain,
                &mut s.net,
                &s.clock,
                &mut s.rng,
                s.device,
                &ContractId::new("echo"),
                "nope",
                &[],
            ),
            Err(OracleError::View(_))
        ));
    }

    #[test]
    fn pull_in_lost_response_does_not_strand_events() {
        let mut s = setup(fixed_link(5));
        let mut pull_in = PullInOracle::new(s.relay, "Stored");
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(11u64,)),
            1_000_000,
        );
        s.chain.submit(tx).unwrap();
        s.clock.advance_to(SimTime::from_secs(2));
        s.chain.advance_to(s.clock.now());
        // The gateway → relay return hop is down: the poll fails, but the
        // cursor must not advance past the unserved events.
        s.net.set_link(
            s.gateway,
            s.relay,
            LinkConfig {
                latency: LatencyModel::Constant(SimDuration::from_millis(5)),
                drop_probability: 1.0,
                bandwidth_bps: None,
            },
        );
        let err = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap_err();
        assert_eq!(err, OracleError::NetworkDropped);
        // Healed: the same events are served by the retry.
        s.net.set_link(s.gateway, s.relay, fixed_link(5));
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert_eq!(events.len(), 1, "events survive a lost response hop");
    }

    #[test]
    fn pull_in_polls_request_events() {
        let mut s = setup(fixed_link(5));
        let mut pull_in = PullInOracle::new(s.relay, "Stored");
        // Nothing yet.
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert!(events.is_empty());
        // Produce an event.
        let tx = s.chain.build_call(
            &s.key,
            ContractId::new("echo"),
            "store",
            encode_to_vec(&(3u64,)),
            1_000_000,
        );
        s.chain.submit(tx).unwrap();
        s.clock.advance_to(SimTime::from_secs(2));
        s.chain.advance_to(s.clock.now());
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(pull_in.topic(), "Stored");
        // Cursor advanced: re-poll is empty.
        let events = pull_in
            .poll_requests(&s.chain, &mut s.net, &s.clock, &mut s.rng, s.gateway)
            .unwrap();
        assert!(events.is_empty());
    }

    /// A chain aggressively pruning behind per-block checkpoints, with
    /// enough sealed blocks that a genesis cursor is below the horizon.
    fn pruning_setup() -> Setup {
        let mut s = setup(fixed_link(10));
        let mut chain = Blockchain::builder()
            .validators(2)
            .block_interval(SimDuration::from_secs(2))
            .storage(duc_blockchain::StorageConfig::enabled(1, 1))
            .build();
        chain.deploy(ContractId::new("echo"), Box::new(Echo));
        s.key = chain.create_funded_account(b"device-owner", 1_000_000_000);
        for i in 1..=6u64 {
            let tx = chain.build_call(
                &s.key,
                ContractId::new("echo"),
                "store",
                encode_to_vec(&(i,)),
                1_000_000,
            );
            chain.submit(tx).unwrap();
            chain.advance_to(SimTime::from_secs(2 * i));
        }
        assert!(chain.prune_horizon() > 0, "setup actually pruned");
        s.chain = chain;
        s
    }

    #[test]
    fn push_out_stale_cursor_is_typed_and_resyncs() {
        let mut s = pruning_setup();
        let mut oracle = PushOutOracle::new(s.relay);
        oracle.subscribe("Stored", s.device);
        let horizon = s.chain.prune_horizon();
        // try_drain surfaces the pruned range instead of silently serving
        // only the resident tail.
        let err = oracle
            .try_drain(&s.chain, &mut s.net, &s.clock, &mut s.rng)
            .unwrap_err();
        match err {
            OracleError::Pruned(e) => {
                assert_eq!(e.requested, 0);
                assert_eq!(e.horizon, horizon);
                assert!(!err.is_transient(), "resync, not blind retry");
            }
            other => panic!("expected Pruned, got {other:?}"),
        }
        // Explicit resync, then the drain serves the resident tail.
        oracle.resync(horizon);
        assert_eq!(oracle.resyncs(), 1);
        let deliveries = oracle
            .try_drain(&s.chain, &mut s.net, &s.clock, &mut s.rng)
            .expect("cursor at horizon");
        assert!(!deliveries.is_empty());
        assert!(deliveries.iter().all(|d| d.height > horizon));
        // The blocking wrapper recovers on its own (auto-resync).
        let mut auto = PushOutOracle::new(s.relay);
        auto.subscribe("Stored", s.device);
        let deliveries = auto.drain(&s.chain, &mut s.net, &s.clock, &mut s.rng);
        assert!(!deliveries.is_empty());
        assert_eq!(auto.resyncs(), 1);
    }

    #[test]
    fn pull_in_stale_cursor_is_typed_and_resyncs() {
        let s = pruning_setup();
        let mut pull_in = PullInOracle::new(s.relay, "Stored");
        let horizon = s.chain.prune_horizon();
        let err = pull_in.try_collect_requests(&s.chain).unwrap_err();
        assert!(matches!(err, OracleError::Pruned(e) if e.horizon == horizon));
        pull_in.resync(horizon);
        assert_eq!(pull_in.resyncs(), 1);
        let (events, _, cursor_to) = pull_in
            .try_collect_requests(&s.chain)
            .expect("cursor at horizon");
        assert!(events.iter().all(|(h, _)| *h > horizon));
        pull_in.commit_cursor(cursor_to);
        assert_eq!(pull_in.cursor(), s.chain.height());
        // A resync never rewinds an up-to-date cursor.
        pull_in.resync(horizon);
        assert_eq!(pull_in.cursor(), s.chain.height());
        assert_eq!(pull_in.resyncs(), 1);
    }
}
