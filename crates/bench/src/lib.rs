//! # duc-bench — the experiment harness
//!
//! One function per experiment of EXPERIMENTS.md (E1–E18). Each builds a
//! fresh deterministic [`duc_core::World`], drives a workload, and returns
//! printable rows; the `report` binary renders them as the tables in
//! EXPERIMENTS.md:
//!
//! ```sh
//! cargo run -p duc-bench --bin report --release -- all
//! cargo run -p duc-bench --bin report --release -- e5 e6
//! ```
//!
//! Criterion micro-benchmarks for the substrates (hashing, signatures,
//! codec, policy engine, Turtle, chain throughput) live under `benches/`.

pub mod experiments;
pub mod rss;
pub mod table;

pub use experiments::*;
pub use table::Table;
