//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p duc-bench --bin report --release -- all
//! cargo run -p duc-bench --bin report --release -- e1 e6 e7
//! ```

use duc_bench::experiments;
use duc_bench::Table;

fn run(name: &str) -> Option<Vec<Table>> {
    Some(match name {
        "e1" => experiments::e1_pod_initiation(),
        "e2" => experiments::e2_resource_initiation(),
        "e3" => experiments::e3_indexing(),
        "e4" => experiments::e4_access(),
        "e5" => experiments::e5_propagation(),
        "e6" => experiments::e6_monitoring(),
        "e7" => experiments::e7_gas_table(),
        "e8" => experiments::e8_robustness(),
        "e9" => experiments::e9_privacy(),
        "e10" => experiments::e10_baseline(),
        "e11" => experiments::e11_enforcement(),
        "e12" => experiments::e12_chain_scale(),
        "all" => experiments::all(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = if args.is_empty() {
        vec!["all".to_string()]
    } else {
        args
    };
    println!("# solid-usage-control experiment report");
    println!("(deterministic simulation; see EXPERIMENTS.md for interpretation)");
    for name in selected {
        match run(&name) {
            Some(tables) => {
                for table in tables {
                    print!("{table}");
                }
            }
            None => {
                eprintln!("unknown experiment {name:?}; use e1..e12 or all");
                std::process::exit(2);
            }
        }
    }
}
