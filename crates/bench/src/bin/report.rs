//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p duc-bench --bin report --release -- all
//! cargo run -p duc-bench --bin report --release -- e1 e6 e7
//! cargo run -p duc-bench --bin report --release -- --json all
//! ```
//!
//! With `--json`, additionally writes `BENCH_seed.json`: one record per
//! experiment (always all of them, independent of the table selection)
//! with the median latency (first `ms` column) and median gas (first
//! `gas` column) of each table — the seed of the repository's
//! performance trajectory. Each experiment runs at most once per
//! invocation; table output and JSON share the results.

use duc_bench::experiments;
use duc_bench::Table;

const JSON_PATH: &str = "BENCH_seed.json";

/// One registry entry: experiment name plus its runner.
type Experiment = (&'static str, fn() -> Vec<Table>);

/// The single registry every consumer (table output, JSON, the usage
/// message) derives from.
const EXPERIMENTS: &[Experiment] = &[
    ("e1", experiments::e1_pod_initiation),
    ("e2", experiments::e2_resource_initiation),
    ("e3", experiments::e3_indexing),
    ("e4", experiments::e4_access),
    ("e5", experiments::e5_propagation),
    ("e6", experiments::e6_monitoring),
    ("e7", experiments::e7_gas_table),
    ("e8", experiments::e8_robustness),
    ("e9", experiments::e9_privacy),
    ("e10", experiments::e10_baseline),
    ("e11", experiments::e11_enforcement),
    ("e12", experiments::e12_chain_scale),
    ("e13", experiments::e13_backends),
    ("e14", experiments::e14_deadline_enforcement),
    ("e15", experiments::e15_population),
    ("e16", experiments::e16_storage),
    ("e17", experiments::e17_parallel_exec),
    ("e18", experiments::e18_runtime),
    ("e19", experiments::e19_paged_state),
];

/// Runs experiment `index` on first use, then serves the cached tables.
fn tables(cache: &mut [Option<Vec<Table>>], index: usize) -> &[Table] {
    cache[index].get_or_insert_with(EXPERIMENTS[index].1)
}

fn main() {
    let mut json = false;
    let mut selected: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    let indices: Vec<usize> = selected
        .iter()
        .flat_map(|name| {
            if name == "all" {
                return (0..EXPERIMENTS.len()).collect();
            }
            match EXPERIMENTS.iter().position(|(n, _)| n == name) {
                Some(index) => vec![index],
                None => {
                    eprintln!(
                        "unknown experiment {name:?}; use {}..{} or all",
                        EXPERIMENTS[0].0,
                        EXPERIMENTS[EXPERIMENTS.len() - 1].0
                    );
                    std::process::exit(2);
                }
            }
        })
        .collect();

    let mut cache: Vec<Option<Vec<Table>>> = (0..EXPERIMENTS.len()).map(|_| None).collect();
    println!("# solid-usage-control experiment report");
    println!("(deterministic simulation; see EXPERIMENTS.md for interpretation)");
    for index in indices {
        for table in tables(&mut cache, index) {
            print!("{table}");
        }
    }
    if json {
        let document = json_document(&mut cache);
        std::fs::write(JSON_PATH, document).unwrap_or_else(|e| panic!("writing {JSON_PATH}: {e}"));
        eprintln!("wrote {JSON_PATH}");
    }
}

fn json_document(cache: &mut [Option<Vec<Table>>]) -> String {
    let mut out = String::from("{\n  \"schema\": \"duc-bench-v1\",\n  \"experiments\": {\n");
    for (i, (name, _)) in EXPERIMENTS.iter().enumerate() {
        let tables = tables(cache, i);
        out.push_str(&format!("    {}: [\n", json_string(name)));
        for (j, table) in tables.iter().enumerate() {
            out.push_str("      {\n");
            out.push_str(&format!(
                "        \"table\": {},\n",
                json_string(table.title())
            ));
            // Backend-comparison (and enforcement-mode) tables report
            // per-row records instead of medians: a median over mixed
            // rows would track the row selection, not performance.
            let mut rows = backend_rows(table);
            if rows.is_empty() {
                rows = mode_rows(table);
            }
            if rows.is_empty() {
                rows = population_rows(table);
            }
            if rows.is_empty() {
                rows = storage_rows(table);
            }
            if rows.is_empty() {
                rows = exec_rows(table);
            }
            if rows.is_empty() {
                rows = runtime_rows(table);
            }
            if rows.is_empty() {
                rows = paging_rows(table);
            }
            if rows.is_empty() {
                rows = residency_rows(table);
            }
            let median = |needle| {
                if rows.is_empty() {
                    json_number(median_of_column(table, needle))
                } else {
                    "null".to_string()
                }
            };
            out.push_str(&format!(
                "        \"median_latency_ms\": {},\n",
                median("ms")
            ));
            out.push_str(&format!("        \"median_gas\": {}", median("gas")));
            out.push_str(&rows);
            out.push('\n');
            out.push_str(if j + 1 < tables.len() {
                "      },\n"
            } else {
                "      }\n"
            });
        }
        out.push_str(if i + 1 < EXPERIMENTS.len() {
            "    ],\n"
        } else {
            "    ]\n"
        });
    }
    out.push_str("  }\n}\n");
    out
}

/// For tables comparing ledger backends (a `backend` plus a `shards`
/// column, e.g. E13): one JSON record per row, so BENCH_*.json tracks
/// single-vs-sharded throughput across PRs. Empty for every other table.
fn backend_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(backend), Some(shards)) = (col("backend"), col("shards")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"backends\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"backend\": {}, \"shards\": {}, \"makespan_ms\": {}, \"req_per_s\": {}, \"speedup\": {}}}{}\n",
            json_string(row.get(backend).map_or("", String::as_str)),
            numeric(row, Some(shards)),
            numeric(row, col("makespan")),
            numeric(row, col("req/s")),
            numeric(row, col("speedup")),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For tables comparing enforcement modes (a `mode` plus a `mean lag`
/// column, e.g. E14a): one JSON record per row, so BENCH_*.json tracks
/// round-based vs deadline-driven enforcement latency across PRs. Empty
/// for every other table.
fn mode_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(mode), Some(mean)) = (col("mode"), col("mean lag")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"modes\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"mode\": {}, \"mean_lag_ms\": {}, \"max_lag_ms\": {}, \"deletions\": {}}}{}\n",
            json_string(row.get(mode).map_or("", String::as_str)),
            numeric(row, Some(mean)),
            numeric(row, col("max lag")),
            numeric(row, col("deletions")),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For the population-scale table (an `owners` plus a `req/s` column,
/// e.g. E15): one JSON record per row, so BENCH_*.json tracks throughput,
/// tail latency and peak memory across population sizes and PRs. Empty
/// for every other table. Wall-clock req/s is host-dependent; the JSON
/// records it for trend context, while the in-run superlinearity gate is
/// what CI enforces.
fn population_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(owners), Some(req_s)) = (col("owners"), col("req/s")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"population\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"owners\": {}, \"requests\": {}, \"req_per_s\": {}, \"p99_ms\": {}, \"peak_rss_mib\": {}}}{}\n",
            numeric(row, Some(owners)),
            numeric(row, col("requests")),
            numeric(row, Some(req_s)),
            numeric(row, col("p99")),
            numeric(row, col("rss")),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For the storage sweep (a `waves` plus a `retained (prune)` column,
/// e.g. E16): two JSON records per table row — one per storage
/// configuration — so BENCH_*.json tracks retained blocks and peak memory
/// for the pruned and the full run separately across PRs. Empty for every
/// other table.
fn storage_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(waves), Some(_)) = (col("waves"), col("retained (prune)")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> Option<f64> {
        idx.and_then(|i| row.get(i))
            .and_then(|c| c.trim().parse().ok())
    };
    let rss_bytes = |row: &[String], idx: Option<usize>| -> String {
        json_number(numeric(row, idx).map(|mib| mib * 1024.0 * 1024.0))
    };
    let mut out = String::from(",\n        \"storage\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        for (j, config) in ["pruned", "full"].iter().enumerate() {
            let needle = if *config == "pruned" {
                "(prune)"
            } else {
                "(full)"
            };
            out.push_str(&format!(
                "          {{\"config\": {}, \"owners\": {}, \"waves\": {}, \"requests\": {}, \"blocks\": {}, \"retained_blocks\": {}, \"peak_rss_bytes\": {}}}{}\n",
                json_string(config),
                json_number(numeric(row, col("owners"))),
                json_number(numeric(row, Some(waves))),
                json_number(numeric(row, col("requests"))),
                json_number(numeric(row, col("blocks"))),
                json_number(numeric(row, col(&format!("retained {needle}")))),
                rss_bytes(row, col(&format!("peak rss mib {needle}"))),
                if i + 1 < table.rows().len() || j == 0 { "," } else { "" },
            ));
        }
    }
    out.push_str("        ]");
    out
}

/// For the execution-mode comparison (an `exec mode` plus a `speedup`
/// column, e.g. E17): one JSON record per row, so BENCH_*.json tracks
/// serial vs parallel block-seal time across PRs. Empty for every other
/// table.
fn exec_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(mode), Some(_)) = (col("exec mode"), col("speedup")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"exec_modes\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"exec_mode\": {}, \"threads\": {}, \"block_ms\": {}, \"txs_per_s\": {}, \"speedup\": {}}}{}\n",
            json_string(row.get(mode).map_or("", String::as_str)),
            numeric(row, col("threads")),
            numeric(row, col("block ms")),
            numeric(row, col("txs/s")),
            numeric(row, col("speedup")),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For the execution-runtime comparison (a `runtime mode` plus a `req/s`
/// column, e.g. E18): one JSON record per row, so BENCH_*.json tracks
/// sim-mode compute throughput and wall-mode paced throughput across PRs.
/// Wall req/s is host- and compression-dependent; the JSON records it for
/// trend context, while the outcome-set identity and scrape gates inside
/// the experiment are what CI enforces. Empty for every other table.
fn runtime_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(mode), Some(req_s)) = (col("runtime mode"), col("req/s")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"runtime_modes\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"mode\": {}, \"requests\": {}, \"real_ms\": {}, \"req_per_s\": {}}}{}\n",
            json_string(row.get(mode).map_or("", String::as_str)),
            numeric(row, col("requests")),
            numeric(row, col("real ms")),
            numeric(row, Some(req_s)),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For the paging identity sweep (a `cache` plus a `fault-ins` column,
/// e.g. E19a): one JSON record per cache size, so BENCH_*.json tracks
/// eviction/fault-in pressure and resident footprint per cache
/// configuration across PRs. The fingerprint-identity gates run inside
/// the experiment; the JSON records the cost of each cache size. Empty
/// for every other table.
fn paging_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(cache), Some(fault_ins)) = (col("cache"), col("fault-ins")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> String {
        json_number(
            idx.and_then(|i| row.get(i))
                .and_then(|c| c.trim().parse().ok()),
        )
    };
    let mut out = String::from(",\n        \"caches\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"cache\": {}, \"requests\": {}, \"evictions\": {}, \"fault_ins\": {}, \"resident_pages\": {}, \"resident_kib\": {}, \"wall_ms\": {}}}{}\n",
            json_string(row.get(cache).map_or("", String::as_str)),
            numeric(row, col("requests")),
            numeric(row, col("evictions")),
            numeric(row, Some(fault_ins)),
            numeric(row, col("resident pages")),
            numeric(row, col("resident kib")),
            numeric(row, col("wall ms")),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// For the state-residency comparison (a `config` plus a `bytes/owner`
/// column, e.g. E19b): one JSON record per row, so BENCH_*.json tracks
/// the per-owner resident footprint of the paged and unpaged stores
/// across PRs. Empty for every other table.
fn residency_rows(table: &Table) -> String {
    let col = |needle: &str| {
        table
            .columns()
            .iter()
            .position(|c| c.to_lowercase().contains(needle))
    };
    let (Some(config), Some(per_owner)) = (col("config"), col("bytes/owner")) else {
        return String::new();
    };
    let numeric = |row: &[String], idx: Option<usize>| -> Option<f64> {
        idx.and_then(|i| row.get(i))
            .and_then(|c| c.trim().parse().ok())
    };
    let kib_bytes = |row: &[String], idx: Option<usize>| -> String {
        json_number(numeric(row, idx).map(|kib| kib * 1024.0))
    };
    let mut out = String::from(",\n        \"residency\": [\n");
    for (i, row) in table.rows().iter().enumerate() {
        out.push_str(&format!(
            "          {{\"config\": {}, \"owners\": {}, \"resident_bytes\": {}, \"bytes_per_owner\": {}, \"evictions\": {}, \"peak_rss_mib\": {}}}{}\n",
            json_string(row.get(config).map_or("", String::as_str)),
            json_number(numeric(row, col("owners"))),
            kib_bytes(row, col("resident kib")),
            json_number(numeric(row, Some(per_owner))),
            json_number(numeric(row, col("evictions"))),
            json_number(numeric(row, col("rss"))),
            if i + 1 < table.rows().len() { "," } else { "" },
        ));
    }
    out.push_str("        ]");
    out
}

/// Median of the first column whose header contains `needle`, ignoring
/// cells that do not parse as numbers. `None` when the table has no such
/// column or no numeric cells.
fn median_of_column(table: &Table, needle: &str) -> Option<f64> {
    let index = table
        .columns()
        .iter()
        .position(|c| c.to_lowercase().contains(needle))?;
    let mut values: Vec<f64> = table
        .rows()
        .iter()
        .filter_map(|row| row.get(index))
        .filter_map(|cell| cell.trim().parse().ok())
        .collect();
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite medians"));
    let mid = values.len() / 2;
    Some(if values.len().is_multiple_of(2) {
        (values[mid - 1] + values[mid]) / 2.0
    } else {
        values[mid]
    })
}

fn json_number(value: Option<f64>) -> String {
    match value {
        Some(v) => {
            // Four decimals is below measurement resolution; trimming the
            // tail keeps binary-float noise out of the committed file.
            let fixed = format!("{v:.4}");
            let trimmed = fixed.trim_end_matches('0').trim_end_matches('.');
            trimmed.to_string()
        }
        None => "null".to_string(),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
