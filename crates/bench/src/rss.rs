//! Peak-RSS probe for the population-scale experiments.
//!
//! Linux-only by nature: reads `VmHWM` (the process's resident-set
//! high-water mark) from `/proc/self/status`, falling back to the current
//! resident set from `/proc/self/statm`. Returns `None` where `/proc` is
//! unavailable, so callers render "n/a" instead of failing.

/// Peak resident set size of this process in KiB.
///
/// The high-water mark is process-wide and monotone: in a multi-row sweep
/// each row reports the peak *so far*, which is the number that matters
/// for "does population N fit in memory".
pub fn peak_rss_kib() -> Option<u64> {
    if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                if let Some(kib) = rest.split_whitespace().next().and_then(|v| v.parse().ok()) {
                    return Some(kib);
                }
            }
        }
    }
    // Fallback: current (not peak) resident pages; a floor, not the mark.
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4)
}

/// [`peak_rss_kib`] in MiB, for table rendering.
pub fn peak_rss_mib() -> Option<f64> {
    peak_rss_kib().map(|kib| kib as f64 / 1024.0)
}

/// Resets the kernel's peak-RSS high-water mark to the *current* resident
/// set (`echo 5 > /proc/self/clear_refs`), so a multi-configuration sweep
/// can attribute a peak to each configuration instead of reporting one
/// process-monotone mark. Returns `false` where the knob is unavailable
/// (non-Linux, restricted `/proc`) — callers should then skip per-config
/// RSS comparisons. Note the reset floor is the current resident set: heap
/// the allocator retains from a previous configuration stays in the mark.
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_a_plausible_peak_on_linux() {
        // The test process has mapped at least a few hundred KiB by now;
        // off-Linux the probe must return None rather than panic.
        if let Some(kib) = peak_rss_kib() {
            assert!(kib > 100, "peak RSS {kib} KiB is implausibly small");
        }
    }
}
