//! Minimal fixed-width table rendering for the report binary.

use std::fmt;

/// A printable table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header — a harness bug.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n## {}", self.title)?;
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_alignment() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name"));
        assert!(s.lines().filter(|l| l.starts_with('|')).count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
