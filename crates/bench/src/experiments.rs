//! The twelve experiments of EXPERIMENTS.md.
//!
//! Every function is deterministic (seeded) and returns [`Table`]s; the
//! `report` binary prints them. Workload sizes are chosen so `report all`
//! completes in well under a minute in release mode.

use duc_blockchain::StorageConfig;
use duc_core::baseline::{CentralizedAuditBaseline, PlainSolidBaseline};
use duc_core::chaos::{self, fixed_link};
use duc_core::prelude::*;
use duc_core::scenario;
use duc_policy::{Action, Constraint, Duty, Purpose, Rule, UsagePolicy};
use duc_sim::{FaultPlan, LinkConfig, SimDuration};
use duc_solid::Body;

use crate::table::Table;

const OWNER: &str = "https://owner.id/me";

fn retention_policy(iri: &str, days: u64) -> UsagePolicy {
    UsagePolicy::builder(format!("{iri}#policy"), iri, OWNER)
        .permit(
            Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(days))),
        )
        .duty(Duty::DeleteWithin(SimDuration::from_days(days)))
        .duty(Duty::LogAccesses)
        .build()
}

/// Builds a world with one owner, one shared resource of `body_bytes`
/// under a `retention_days` policy, and `n_devices` devices that have
/// subscribed, indexed and fetched a copy.
fn world_with_copies_in(
    config: WorldConfig,
    n_devices: usize,
    body_bytes: usize,
    retention_days: u64,
) -> (World, String) {
    let mut world = World::new(config);
    world.add_owner(OWNER, "https://owner.pod/");
    for i in 0..n_devices {
        world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
    }
    world.pod_initiation(OWNER).expect("pod init");
    let iri = world.owner(OWNER).pod_manager.pod().iri_of("data/set.bin");
    let policy = retention_policy(&iri, retention_days);
    let resource = world
        .resource_initiation(
            OWNER,
            "data/set.bin",
            Body::Binary(vec![0xA5; body_bytes]),
            policy,
            vec![],
        )
        .expect("resource init");
    for i in 0..n_devices {
        let d = format!("device-{i}");
        world.market_subscribe(&d).expect("subscribe");
        world.resource_indexing(&d, &resource).expect("index");
        world.resource_access(&d, &resource).expect("access");
    }
    (world, resource)
}

/// [`world_with_copies_in`] with the default config and 7-day retention.
fn world_with_copies(n_devices: usize, body_bytes: usize, seed: u64) -> (World, String) {
    world_with_copies_in(
        WorldConfig {
            seed,
            link: fixed_link(10),
            ..WorldConfig::default()
        },
        n_devices,
        body_bytes,
        7,
    )
}

/// The E8 launch pad: the canonical chaos world (`duc_core::chaos`) with
/// `n_devices` subscribed, indexed copy holders; the measured batch's
/// `process.access.e2e` histogram is reset so the fault-free setup
/// accesses do not dilute the chaos tail.
fn world_with_market(n_devices: usize, seed: u64) -> (World, String) {
    let (mut world, resource) = duc_core::chaos::launch_pad(
        OWNER,
        "data/set.bin",
        n_devices,
        WorldConfig {
            seed,
            link: fixed_link(10),
            ..WorldConfig::default()
        },
    );
    *world.metrics.histogram_mut("process.access.e2e") = duc_sim::Histogram::new();
    (world, resource)
}

fn ms(d: SimDuration) -> String {
    format!("{:.1}", d.as_millis_f64())
}

// ---------------------------------------------------------------------- E1

/// E1 — pod initiation latency and gas (Fig. 2.1).
pub fn e1_pod_initiation() -> Vec<Table> {
    let mut table = Table::new(
        "E1 · pod initiation (Fig 2.1) — 20 owners per link profile",
        &["link", "mean ms", "p95 ms", "max ms", "gas/op"],
    );
    for (label, link) in [
        ("LAN 2ms", LinkConfig::default()),
        ("fixed 10ms", fixed_link(10)),
        ("WAN 40ms+exp", LinkConfig::wan()),
    ] {
        let mut world = World::new(WorldConfig {
            link,
            seed: 1,
            ..WorldConfig::default()
        });
        for i in 0..20 {
            world.add_owner(format!("https://o{i}.id/me"), format!("https://o{i}.pod/"));
        }
        for i in 0..20 {
            // Random sub-slot phase: operations do not all start exactly at
            // a block boundary.
            let offset = world.rng.gen_range(2_000);
            world.advance(SimDuration::from_millis(offset));
            world
                .pod_initiation(&format!("https://o{i}.id/me"))
                .expect("init");
        }
        let gas = world.metrics.counter("process.pod_init.gas") / 20;
        let h = world.metrics.histogram_mut("process.pod_init.e2e");
        table.row(vec![
            label.to_string(),
            ms(h.mean()),
            ms(h.p95()),
            ms(h.max()),
            gas.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------- E2

/// E2 — resource initiation vs policy complexity (Fig. 2.2).
pub fn e2_resource_initiation() -> Vec<Table> {
    let mut table = Table::new(
        "E2 · resource initiation (Fig 2.2) — policy complexity sweep",
        &["rules", "policy bytes", "mean ms", "gas/op"],
    );
    for n_rules in [1usize, 4, 16, 64] {
        let mut world = World::new(WorldConfig {
            link: fixed_link(10),
            seed: 2,
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        world.pod_initiation(OWNER).expect("pod");
        let reps = 10;
        let mut policy_bytes = 0usize;
        for r in 0..reps {
            let iri = world
                .owner(OWNER)
                .pod_manager
                .pod()
                .iri_of(&format!("data/r{n_rules}-{r}.bin"));
            let mut builder = UsagePolicy::builder(format!("{iri}#policy"), iri, OWNER);
            for k in 0..n_rules {
                builder = builder.permit(
                    Rule::permit([Action::Read])
                        .with_constraint(Constraint::Purpose(vec![Purpose::new(format!("p{k}"))]))
                        .with_constraint(Constraint::MaxAccessCount(k as u64 + 1)),
                );
            }
            let policy = builder.duty(Duty::LogAccesses).build();
            policy_bytes = duc_codec::encode_to_vec(&policy).len();
            world
                .resource_initiation(
                    OWNER,
                    &format!("data/r{n_rules}-{r}.bin"),
                    Body::Binary(vec![1; 256]),
                    policy,
                    vec![],
                )
                .expect("resource init");
        }
        let gas = world.metrics.counter("process.resource_init.gas") / reps as u64;
        let h = world.metrics.histogram_mut("process.resource_init.e2e");
        table.row(vec![
            n_rules.to_string(),
            policy_bytes.to_string(),
            ms(h.mean()),
            gas.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------- E3

/// E3 — resource indexing latency vs index size (Fig. 2.3).
pub fn e3_indexing() -> Vec<Table> {
    let mut table = Table::new(
        "E3 · resource indexing (Fig 2.3) — pull-out read vs index size",
        &[
            "index size",
            "lookup mean ms",
            "lookup p95 ms",
            "state slots",
        ],
    );
    for index_size in [10usize, 100, 500] {
        let mut world = World::new(WorldConfig {
            link: fixed_link(10),
            seed: 3,
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        world.add_device("reader", "https://reader.id/me");
        world.pod_initiation(OWNER).expect("pod");
        // Bulk-register resources: submit in batches, confirm per block.
        let owner_key = world.owner(OWNER).key;
        for i in 0..index_size {
            let iri = format!("https://owner.pod/data/res-{i:05}.bin");
            let policy = retention_policy(&iri, 30);
            let env = world.envelope(&policy);
            let tx = world.dex.register_resource_tx(
                &world.chain,
                &owner_key,
                &iri,
                &iri,
                OWNER,
                vec![],
                env,
            );
            world.chain.submit(tx).expect("submit");
        }
        while world.chain.pending_count() > 0 {
            world.advance(SimDuration::from_secs(2));
        }
        // Measure indexed lookups.
        for i in 0..20 {
            let target = format!("https://owner.pod/data/res-{:05}.bin", i % index_size);
            world.resource_indexing("reader", &target).expect("lookup");
        }
        let (slots, _) = world.chain.state_size();
        let h = world.metrics.histogram_mut("process.indexing.e2e");
        table.row(vec![
            index_size.to_string(),
            ms(h.mean()),
            ms(h.p95()),
            slots.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------- E4

/// E4 — resource access vs resource size (Fig. 2.4).
pub fn e4_access() -> Vec<Table> {
    let mut table = Table::new(
        "E4 · resource access (Fig 2.4) — size sweep (10 MB/s links)",
        &["size", "fetch ms", "e2e ms", "gas/op"],
    );
    for (label, bytes) in [
        ("1 KiB", 1 << 10),
        ("100 KiB", 100 << 10),
        ("1 MiB", 1 << 20),
        ("10 MiB", 10 << 20),
    ] {
        let (world, _) = {
            let mut pair = world_with_copies(1, bytes, 4);
            pair.0.sync_chain();
            pair
        };
        let gas = world.metrics.counter("process.access.gas");
        let mut m = world.metrics.clone();
        let fetch = m.histogram_mut("process.access.fetch").mean();
        let e2e = m.histogram_mut("process.access.e2e").mean();
        table.row(vec![label.to_string(), ms(fetch), ms(e2e), gas.to_string()]);
    }
    vec![table]
}

// ---------------------------------------------------------------------- E5

/// E5 — policy-update propagation fan-out (Fig. 2.5).
pub fn e5_propagation() -> Vec<Table> {
    let mut table = Table::new(
        "E5 · policy modification (Fig 2.5) — push-out fan-out",
        &[
            "devices",
            "notified",
            "mean prop ms",
            "max prop ms",
            "e2e ms",
            "deletions",
        ],
    );
    for n in [1usize, 4, 16, 64] {
        let (mut world, _resource) = world_with_copies(n, 4 << 10, 5);
        // Tighten retention to zero: every copy must be erased on arrival.
        let outcome = world
            .policy_modification(
                OWNER,
                "data/set.bin",
                vec![Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::ZERO))],
                vec![Duty::DeleteWithin(SimDuration::ZERO)],
            )
            .expect("modification");
        let deletions = outcome
            .enforcement
            .iter()
            .filter(|(_, a)| matches!(a, duc_tee::EnforcementAction::Deleted { .. }))
            .count();
        let h = world
            .metrics
            .histogram_mut("process.policy_mod.propagation");
        table.row(vec![
            n.to_string(),
            outcome.devices_notified.to_string(),
            ms(h.mean()),
            ms(h.max()),
            ms(outcome.e2e),
            deletions.to_string(),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------- E6

/// E6 — monitoring round scaling and violation detection (Fig. 2.6).
pub fn e6_monitoring() -> Vec<Table> {
    let mut table = Table::new(
        "E6 · policy monitoring (Fig 2.6) — round scaling with injected violators",
        &[
            "devices",
            "violators injected",
            "detected",
            "round ms",
            "evidence bytes",
            "gas",
        ],
    );
    for n in [1usize, 4, 16, 64] {
        let (mut world, _resource) = world_with_copies(n, 4 << 10, 6);
        // A quarter of the devices (>=1 when n>=4) go rogue: their hosts
        // suppress the enclave timers, so copies outlive the deadline.
        let rogue = if n >= 4 { n / 4 } else { 0 };
        for i in 0..rogue {
            world.set_rogue_host(format!("device-{i}"), true);
        }
        world.advance(SimDuration::from_days(8)); // past the 7-day bound
        let gas_before = world.metrics.counter("process.monitoring.gas");
        let outcome = world
            .policy_monitoring(OWNER, "data/set.bin")
            .expect("round");
        let gas = world.metrics.counter("process.monitoring.gas") - gas_before;
        table.row(vec![
            n.to_string(),
            rogue.to_string(),
            outcome.violators.len().to_string(),
            ms(outcome.duration),
            outcome.evidence_bytes.to_string(),
            gas.to_string(),
        ]);
        assert_eq!(outcome.violators.len(), rogue, "every violator detected");
    }
    vec![table]
}

// ---------------------------------------------------------------------- E7

/// E7 — affordability: the gas ledger of the full §II scenario (§V-4).
pub fn e7_gas_table() -> Vec<Table> {
    let mut world = scenario::build_world(WorldConfig::default());
    let report = scenario::run(&mut world).expect("scenario");
    let mut per_method = Table::new(
        "E7 · affordability (§V-4) — gas by DE App method over the §II scenario",
        &["contract", "method", "calls", "total gas", "mean gas"],
    );
    for ((contract, method), (calls, total, mean)) in world.chain.gas_by_method() {
        per_method.row(vec![
            contract,
            method,
            calls.to_string(),
            total.to_string(),
            mean.to_string(),
        ]);
    }
    let mut per_process = Table::new(
        "E7 · gas per architecture process",
        &["process", "total gas"],
    );
    for key in [
        "process.pod_init.gas",
        "process.resource_init.gas",
        "process.subscribe.gas",
        "process.access.gas",
        "process.policy_mod.gas",
        "process.monitoring.gas",
    ] {
        per_process.row(vec![
            key.to_string(),
            world.metrics.counter(key).to_string(),
        ]);
    }
    per_process.row(vec![
        "scenario total".to_string(),
        report.total_gas.to_string(),
    ]);
    vec![per_method, per_process]
}

// ---------------------------------------------------------------------- E8

/// Number of plans in [`e8_fault_plans`] (each E8a row rebuilds the world,
/// so the matrix size is fixed up front).
const E8_PLAN_COUNT: usize = 7;

/// The fault-plan matrix of E8a: one deterministic plan per label, built
/// against a concrete world (endpoints and validator indices are
/// world-specific).
fn e8_fault_plans(world: &World, n_devices: usize) -> Vec<(&'static str, FaultPlan)> {
    let t0 = world.clock.now();
    let s = SimDuration::from_secs;
    let relay = world.push_in.relay;
    let pod = world.owner(OWNER).endpoint;
    let dev = |i: usize| world.device(&format!("device-{i}")).endpoint;
    let lossy_uplinks = |mut plan: FaultPlan, per_mille: u16| {
        for i in 0..n_devices {
            plan = plan.drop_window(dev(i), relay, t0, t0 + s(60), per_mille);
        }
        plan
    };
    vec![
        ("none", FaultPlan::none()),
        (
            "relay crash 0–6 s",
            FaultPlan::none().crash(relay, t0, t0 + s(6)),
        ),
        (
            "pod crash 0–8 s",
            FaultPlan::none().crash(pod, t0, t0 + s(8)),
        ),
        (
            "device partitions 0–20 s",
            (0..n_devices.min(4)).fold(FaultPlan::none(), |plan, i| {
                plan.partition(dev(i), relay, t0, t0 + s(20))
            }),
        ),
        (
            "30% uplink loss 0–60 s",
            lossy_uplinks(FaultPlan::none(), 300),
        ),
        (
            "validator stall 3/5 0–30 s",
            (0..3).fold(FaultPlan::none(), |plan, i| {
                plan.validator_stall(i, t0, t0 + s(30))
            }),
        ),
        (
            "combined",
            lossy_uplinks(
                FaultPlan::none()
                    .crash(relay, t0 + s(1), t0 + s(4))
                    .validator_stall(0, t0, t0 + s(30)),
                200,
            ),
        ),
    ]
}

/// E8 — robustness (§V-2): a deterministic chaos matrix on the concurrent
/// driver, a seeded random chaos sweep, and the tamper matrix.
pub fn e8_robustness() -> Vec<Table> {
    let n_devices = 12usize;

    // (a) Chaos matrix: N concurrent accesses racing two monitoring rounds
    // under each fault plan; every ticket must resolve and every invariant
    // must hold (duc_core::chaos checks them).
    let mut matrix = Table::new(
        format!(
            "E8a · chaos matrix — {} concurrent requests per fault plan (driver-based)",
            n_devices + 2
        ),
        &[
            "plan",
            "ok",
            "gave up",
            "hop drops",
            "suspends",
            "net dropped",
            "access p95 ms",
            "access p99 ms",
        ],
    );
    for index in 0..E8_PLAN_COUNT {
        let (mut world, resource) = world_with_market(n_devices, 80);
        let mut plans = e8_fault_plans(&world, n_devices);
        assert_eq!(plans.len(), E8_PLAN_COUNT, "keep E8_PLAN_COUNT in sync");
        let (label, plan) = plans.swap_remove(index);
        let batch = duc_core::chaos::mixed_batch(OWNER, "data/set.bin", &resource, n_devices);
        let requests = batch.len();
        let run = duc_core::chaos::run_chaos(&mut world, batch, plan)
            .unwrap_or_else(|e| panic!("E8a plan {label:?}: {e}"));
        assert_eq!(
            run.outcomes.len(),
            requests,
            "every ticket resolves under {label:?}"
        );
        // Surface the network counters through the metrics registry; the
        // row is read back from the registry and cross-checked against the
        // model's own counters.
        world.net.publish_metrics(&mut world.metrics);
        let (_, dropped, _) = world.net.stats();
        assert_eq!(
            world.metrics.counter("net.messages_dropped"),
            dropped,
            "metrics mirror the network model under {label:?}"
        );
        let (part, down, loss_drops) = world.net.drop_breakdown();
        assert_eq!(
            world.metrics.counter("net.dropped.partition")
                + world.metrics.counter("net.dropped.down")
                + world.metrics.counter("net.dropped.loss"),
            part + down + loss_drops,
            "drop breakdown sums under {label:?}"
        );
        let h = world.metrics.histogram_mut("process.access.e2e");
        let (p95, p99) = (h.p95(), h.p99());
        matrix.row(vec![
            label.to_string(),
            run.ok.to_string(),
            run.failed.to_string(),
            world.metrics.counter("driver.hop.drops").to_string(),
            world.metrics.counter("driver.hop.suspended").to_string(),
            world.metrics.counter("net.messages_dropped").to_string(),
            ms(p95),
            ms(p99),
        ]);
    }

    // (b) Seeded random chaos sweep: the same batch under random fault
    // plans — completion statistics over the seed matrix.
    let mut sweep = Table::new(
        "E8b · seeded random chaos — completion under random fault plans (6 devices)",
        &[
            "chaos seed",
            "ok",
            "gave up",
            "hop drops",
            "suspends",
            "makespan ms",
        ],
    );
    for chaos_seed in [2u64, 5, 9, 14, 17] {
        let (mut world, resource) = world_with_market(6, 81);
        let plan = duc_core::chaos::random_plan(&world, chaos_seed, SimDuration::from_secs(12), 5);
        let batch = duc_core::chaos::mixed_batch(OWNER, "data/set.bin", &resource, 6);
        let run = duc_core::chaos::run_chaos(&mut world, batch, plan)
            .unwrap_or_else(|e| panic!("E8b seed {chaos_seed}: {e}"));
        world.net.publish_metrics(&mut world.metrics);
        sweep.row(vec![
            chaos_seed.to_string(),
            run.ok.to_string(),
            run.failed.to_string(),
            world.metrics.counter("driver.hop.drops").to_string(),
            world.metrics.counter("driver.hop.suspended").to_string(),
            ms(run.makespan),
        ]);
    }

    // (c) Tamper matrix: every forgery class is rejected.
    let mut tamper = Table::new(
        "E8c · tamper matrix — attacks rejected by layer (§V-2)",
        &["attack", "rejected by", "outcome"],
    );
    {
        let (mut world, resource) = world_with_copies(1, 1 << 10, 888);
        // 1. Policy update by a non-owner.
        let mallory = world.chain.create_funded_account(b"mallory", 1_000_000_000);
        let policy = retention_policy(&resource, 1);
        let env = world.envelope(&policy);
        let tx = world
            .dex
            .update_policy_tx(&world.chain, &mallory, &resource, env, 2);
        let id = world.chain.submit(tx).expect("accepted into mempool");
        world.advance(SimDuration::from_secs(2));
        let status = world.chain.receipt(&id).map(|r| r.status.clone());
        tamper.row(vec![
            "policy update by non-owner".into(),
            "DE App owner check".into(),
            format!("{status:?}"),
        ]);
        // 2. Stale version replay.
        let owner_key = world.owner(OWNER).key;
        let env = world.envelope(&retention_policy(&resource, 1));
        let tx = world
            .dex
            .update_policy_tx(&world.chain, &owner_key, &resource, env, 1);
        let id = world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        let status = world.chain.receipt(&id).map(|r| r.status.clone());
        tamper.row(vec![
            "stale policy version replay".into(),
            "DE App version check".into(),
            format!("{status:?}"),
        ]);
        // 3. Forged evidence (wrong key).
        let tx = world
            .dex
            .start_monitoring_tx(&world.chain, &owner_key, &resource);
        let id = world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        let round = duc_contracts::DistExchangeClient::decode_round_number(
            &world.chain.receipt(&id).expect("receipt").return_data,
        )
        .expect("round");
        let mut forged = duc_contracts::EvidenceSubmission {
            resource: resource.clone(),
            round,
            device: "device-0".into(),
            compliant: true,
            violations: vec![],
            evidence_digest: duc_crypto::sha256(b"fake"),
            signature: duc_crypto::Signature { e: 0, s: 0 },
        };
        forged.signature = duc_crypto::KeyPair::from_seed(b"mallory").sign(&forged.signing_bytes());
        let dev_key = world.device("device-0").key;
        let tx = world
            .dex
            .record_evidence_tx(&world.chain, &dev_key, &forged);
        let id = world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        let status = world.chain.receipt(&id).map(|r| r.status.clone());
        tamper.row(vec![
            "evidence signed by wrong key".into(),
            "DE App attestation-key check".into(),
            format!("{status:?}"),
        ]);
        // 4. Tampered signed transaction.
        let mut tx = world
            .dex
            .start_monitoring_tx(&world.chain, &owner_key, &resource);
        tx.tx.gas_limit += 1;
        let submit = world.chain.submit(tx);
        tamper.row(vec![
            "tampered transaction bytes".into(),
            "chain signature check".into(),
            format!("{submit:?}"),
        ]);
        // 5. Forged certificate at the pod manager.
        let fake_cert = duc_crypto::sha256(b"forged-cert");
        let ok = world
            .dex
            .verify_certificate(&world.chain, &fake_cert, "https://c0.id/me")
            .expect("view");
        tamper.row(vec![
            "forged market certificate".into(),
            "DE App certificate registry".into(),
            format!("valid={ok}"),
        ]);
        // 6. Block tampering detected by chain validation.
        let verdict = world.chain.validate_chain();
        tamper.row(vec![
            "ledger self-check (control)".into(),
            "block validation".into(),
            format!("{verdict:?}"),
        ]);
    }
    vec![matrix, sweep, tamper]
}

// ---------------------------------------------------------------------- E9

/// E9 — privacy: encrypted on-chain policies, and TEE locality (§V-1).
pub fn e9_privacy() -> Vec<Table> {
    let mut enc = Table::new(
        "E9a · encrypted vs plaintext on-chain policies",
        &[
            "mode",
            "register gas",
            "update gas",
            "policy readable from ledger",
        ],
    );
    for encrypt in [false, true] {
        let mut world = World::new(WorldConfig {
            encrypt_policies: encrypt,
            link: fixed_link(10),
            seed: 9,
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        world.pod_initiation(OWNER).expect("pod");
        let iri = world.owner(OWNER).pod_manager.pod().iri_of("data/x");
        world
            .resource_initiation(
                OWNER,
                "data/x",
                Body::Text("x".into()),
                retention_policy(&iri, 30),
                vec![],
            )
            .expect("res");
        world
            .policy_modification(
                OWNER,
                "data/x",
                vec![Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))],
                vec![Duty::DeleteWithin(SimDuration::from_days(7))],
            )
            .expect("mod");
        // Can a ledger observer read the policy without the key?
        let record = world
            .dex
            .lookup_resource(&world.chain, &iri)
            .expect("view")
            .expect("record");
        let readable = record.policy.open_plain().is_ok();
        enc.row(vec![
            if encrypt {
                "encrypted".into()
            } else {
                "plaintext".to_string()
            },
            world
                .metrics
                .counter("process.resource_init.gas")
                .to_string(),
            world.metrics.counter("process.policy_mod.gas").to_string(),
            readable.to_string(),
        ]);
    }

    let mut locality = Table::new(
        "E9b · TEE locality — local re-access vs re-fetch from pod (100 KiB)",
        &["path", "latency ms"],
    );
    {
        let (mut world, resource) = world_with_copies(1, 100 << 10, 99);
        // Local, policy-mediated re-access inside the TEE: zero network.
        let t0 = world.clock.now();
        {
            let now = world.clock.now();
            let device = world.devices.get_mut("device-0").expect("device");
            device
                .tee
                .access(&resource, Action::Read, Purpose::any(), now)
                .expect("local access");
        }
        locality.row(vec![
            "TEE local re-access".into(),
            ms(world.clock.now() - t0),
        ]);
        // Re-fetch from the pod over the network.
        let t0 = world.clock.now();
        PlainSolidBaseline::access(&mut world, "device-0", OWNER, "data/set.bin").expect("fetch");
        locality.row(vec!["re-fetch from pod".into(), ms(world.clock.now() - t0)]);
    }
    vec![enc, locality]
}

// --------------------------------------------------------------------- E10

/// E10 — baselines: plain-Solid access and centralized auditing.
pub fn e10_baseline() -> Vec<Table> {
    let mut access = Table::new(
        "E10a · access: plain Solid vs full usage-control pipeline (100 KiB)",
        &["variant", "latency ms", "owner control after download"],
    );
    {
        let (mut world, resource) = world_with_copies(1, 100 << 10, 10);
        let mut m = world.metrics.clone();
        let full = m.histogram_mut("process.access.e2e").mean();
        let fetch_only = m.histogram_mut("process.access.fetch").mean();
        let plain = PlainSolidBaseline::access(&mut world, "device-0", OWNER, "data/set.bin")
            .expect("plain");
        access.row(vec!["plain Solid GET".into(), ms(plain), "none".into()]);
        access.row(vec![
            "usage-control fetch (pod hop only)".into(),
            ms(fetch_only),
            "policy-sealed copy".into(),
        ]);
        access.row(vec![
            "usage-control end-to-end (incl. copy registration)".into(),
            ms(full),
            "policy-sealed + on-chain copy record".into(),
        ]);
        let _ = resource;
    }

    let mut monitor = Table::new(
        "E10b · monitoring: on-chain round vs centralized polling (16 devices)",
        &[
            "variant",
            "duration ms",
            "bytes",
            "violators found",
            "tamper-proof evidence",
        ],
    );
    {
        let (mut world, _resource) = world_with_copies(16, 4 << 10, 101);
        for i in 0..4 {
            world.set_rogue_host(format!("device-{i}"), true);
        }
        world.advance(SimDuration::from_days(8));
        let onchain = world
            .policy_monitoring(OWNER, "data/set.bin")
            .expect("round");
        monitor.row(vec![
            "on-chain monitoring (process 6)".into(),
            ms(onchain.duration),
            onchain.evidence_bytes.to_string(),
            onchain.violators.len().to_string(),
            "yes (signed, ledger-recorded)".into(),
        ]);
        let devices: Vec<String> = (0..16).map(|i| format!("device-{i}")).collect();
        let central =
            CentralizedAuditBaseline::monitor(&mut world, OWNER, "data/set.bin", &devices)
                .expect("central");
        monitor.row(vec![
            "centralized polling baseline".into(),
            ms(central.duration),
            central.bytes.to_string(),
            central.violators.len().to_string(),
            "no (owner-trusted only)".into(),
        ]);
    }
    vec![access, monitor]
}

// --------------------------------------------------------------------- E11

/// E11 — enforcement ablation: push-based propagation vs device polling.
pub fn e11_enforcement() -> Vec<Table> {
    let mut table = Table::new(
        "E11 · enforcement ablation — revocation-to-deletion lag (8 devices)",
        &["mechanism", "mean lag ms", "max lag ms"],
    );

    // Push-based (the paper's architecture): process 5 does it all.
    {
        let (mut world, _resource) = world_with_copies(8, 4 << 10, 11);
        let t0 = world.clock.now();
        let outcome = world
            .policy_modification(
                OWNER,
                "data/set.bin",
                vec![Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::ZERO))],
                vec![Duty::DeleteWithin(SimDuration::ZERO)],
            )
            .expect("modification");
        let lags: Vec<SimDuration> = outcome
            .enforcement
            .iter()
            .filter_map(|(_, a)| match a {
                duc_tee::EnforcementAction::Deleted { at, .. } => Some(*at - t0),
                _ => None,
            })
            .collect();
        let mean = lags.iter().map(|d| d.as_nanos()).sum::<u64>() / lags.len().max(1) as u64;
        let max = lags.iter().map(|d| d.as_nanos()).max().unwrap_or(0);
        table.row(vec![
            "push-out oracle (paper)".into(),
            ms(SimDuration::from_nanos(mean)),
            ms(SimDuration::from_nanos(max)),
        ]);
    }

    // Polling: devices look up the policy every T and apply what they find.
    for (label, interval) in [
        ("device polling, 1 min", SimDuration::from_mins(1)),
        ("device polling, 10 min", SimDuration::from_mins(10)),
        ("device polling, 1 h", SimDuration::from_hours(1)),
    ] {
        let (mut world, resource) = world_with_copies(8, 4 << 10, 12);
        // The owner updates on-chain only (no push-out fan-out): build and
        // confirm the update transaction directly.
        let owner_key = world.owner(OWNER).key;
        let policy = world
            .owner(OWNER)
            .pod_manager
            .policy_for("data/set.bin")
            .expect("policy");
        let amended = policy.amended(
            vec![Rule::permit([Action::Use])
                .with_constraint(Constraint::MaxRetention(SimDuration::ZERO))],
            vec![Duty::DeleteWithin(SimDuration::ZERO)],
        );
        let env = world.envelope(&amended);
        let tx =
            world
                .dex
                .update_policy_tx(&world.chain, &owner_key, &resource, env, amended.version);
        world.chain.submit(tx).expect("mempool");
        world.advance(SimDuration::from_secs(2));
        let update_time = world.clock.now();
        // Devices poll at their own phase-shifted schedule.
        let mut lags = Vec::new();
        for i in 0..8usize {
            let phase = SimDuration::from_nanos(interval.as_nanos() / 8 * i as u64);
            let poll_at = update_time + phase + interval.div(8);
            world.clock.advance_to(poll_at);
            let record = world
                .dex
                .lookup_resource(&world.chain, &resource)
                .expect("view")
                .expect("record");
            let fresh = world.open_envelope(&record.policy).expect("policy");
            let device = world
                .devices
                .get_mut(&format!("device-{i}"))
                .expect("device");
            let actions = device.tee.apply_policy_update(&resource, fresh, poll_at);
            for a in actions {
                if let duc_tee::EnforcementAction::Deleted { at, .. } = a {
                    lags.push(at - update_time);
                }
            }
        }
        let mean = lags.iter().map(|d| d.as_nanos()).sum::<u64>() / lags.len().max(1) as u64;
        let max = lags.iter().map(|d| d.as_nanos()).max().unwrap_or(0);
        table.row(vec![
            label.to_string(),
            ms(SimDuration::from_nanos(mean)),
            ms(SimDuration::from_nanos(max)),
        ]);
    }
    vec![table]
}

// --------------------------------------------------------------------- E12

/// E12 — DE App and chain scalability (the paper's future-work axis).
pub fn e12_chain_scale() -> Vec<Table> {
    let mut growth = Table::new(
        "E12a · state growth vs registered resources",
        &["resources", "state slots", "state KiB", "mean register gas"],
    );
    for n in [100usize, 500, 1000] {
        let mut world = World::new(WorldConfig {
            link: fixed_link(5),
            seed: 120,
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        world.pod_initiation(OWNER).expect("pod");
        let owner_key = world.owner(OWNER).key;
        for i in 0..n {
            let iri = format!("https://owner.pod/data/res-{i:06}");
            let policy = retention_policy(&iri, 30);
            let env = world.envelope(&policy);
            let tx = world.dex.register_resource_tx(
                &world.chain,
                &owner_key,
                &iri,
                &iri,
                OWNER,
                vec![],
                env,
            );
            world.chain.submit(tx).expect("mempool");
        }
        while world.chain.pending_count() > 0 {
            world.advance(SimDuration::from_secs(2));
        }
        let (slots, bytes) = world.chain.state_size();
        let agg = world.chain.gas_by_method();
        let mean_gas = agg
            .get(&("dist-exchange".to_string(), "register_resource".to_string()))
            .map(|(_, _, mean)| *mean)
            .unwrap_or(0);
        growth.row(vec![
            n.to_string(),
            slots.to_string(),
            (bytes / 1024).to_string(),
            mean_gas.to_string(),
        ]);
    }

    let mut interval = Table::new(
        "E12b · block interval vs process latency (resource initiation)",
        &["block interval", "mean e2e ms", "p95 e2e ms"],
    );
    for secs in [1u64, 2, 5, 10] {
        let mut world = World::new(WorldConfig {
            block_interval: SimDuration::from_secs(secs),
            link: fixed_link(10),
            seed: 121,
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        world.pod_initiation(OWNER).expect("pod");
        for i in 0..10 {
            let path = format!("data/r{i}");
            let iri = world.owner(OWNER).pod_manager.pod().iri_of(&path);
            world
                .resource_initiation(
                    OWNER,
                    &path,
                    Body::Text("x".into()),
                    retention_policy(&iri, 30),
                    vec![],
                )
                .expect("res");
        }
        let h = world.metrics.histogram_mut("process.resource_init.e2e");
        interval.row(vec![format!("{secs} s"), ms(h.mean()), ms(h.p95())]);
    }
    let mut tables = vec![growth, interval];
    tables.extend(e12_concurrency());
    tables
}

/// E12c — driver concurrency: N in-flight resource accesses racing two
/// monitoring rounds over the non-blocking request API, measuring
/// makespan, tail latency and throughput as contention grows.
pub fn e12_concurrency() -> Vec<Table> {
    let mut table = Table::new(
        "E12c · driver concurrency — N in-flight accesses + 2 monitoring rounds",
        &[
            "in-flight",
            "ok",
            "makespan ms",
            "access mean ms",
            "access p95 ms",
            "access max ms",
            "req/s",
            "gas/req",
        ],
    );
    for n in [8usize, 16, 64, 128] {
        let mut world = World::new(WorldConfig {
            seed: 122,
            link: fixed_link(10),
            ..WorldConfig::default()
        });
        world.add_owner(OWNER, "https://owner.pod/");
        for i in 0..n {
            world.add_device(format!("device-{i}"), format!("https://c{i}.id/me"));
        }
        world.pod_initiation(OWNER).expect("pod");
        let iri = world.owner(OWNER).pod_manager.pod().iri_of("data/set.bin");
        let resource = world
            .resource_initiation(
                OWNER,
                "data/set.bin",
                Body::Binary(vec![0xA5; 4 << 10]),
                retention_policy(&iri, 7),
                vec![],
            )
            .expect("resource init");
        // Subscriptions and indexing already run concurrently through the
        // driver.
        let mut setup = Vec::new();
        for i in 0..n {
            setup.push(world.submit(Request::MarketSubscribe {
                device: format!("device-{i}"),
            }));
            setup.push(world.submit(Request::ResourceIndexing {
                device: format!("device-{i}"),
                resource: resource.clone(),
            }));
        }
        world.run_until_idle();
        for t in setup {
            t.poll(&mut world).expect("completed").expect("setup ok");
        }

        // The measured batch: every device fetches a copy while two
        // monitoring rounds race the accesses.
        let t0 = world.clock.now();
        let mut tickets: Vec<Ticket> = (0..n)
            .map(|i| {
                world.submit(Request::ResourceAccess {
                    device: format!("device-{i}"),
                    resource: resource.clone(),
                })
            })
            .collect();
        for _ in 0..2 {
            tickets.push(world.submit(Request::PolicyMonitoring {
                webid: OWNER.into(),
                path: "data/set.bin".into(),
            }));
        }
        let requests = tickets.len();
        world.run_until_idle();
        let makespan = world.clock.now() - t0;
        let ok = tickets
            .into_iter()
            .filter(|t| matches!(t.poll(&mut world), Some(Ok(_))))
            .count();
        let gas = world.metrics.counter("process.access.gas")
            + world.metrics.counter("process.monitoring.gas");
        let h = world.metrics.histogram_mut("process.access.e2e");
        let throughput = requests as f64 / makespan.as_secs_f64();
        table.row(vec![
            requests.to_string(),
            ok.to_string(),
            ms(makespan),
            ms(h.mean()),
            ms(h.p95()),
            ms(h.max()),
            format!("{throughput:.2}"),
            (gas / requests as u64).to_string(),
        ]);
    }
    vec![table]
}

// --------------------------------------------------------------------- E13

/// One disjoint-owner concurrent-market run (the E12c workload generalized
/// to `owners` independent owners): every device accesses its owner's
/// resource while one monitoring round per owner races the accesses.
/// Returns `(requests, ok, makespan)`.
fn disjoint_market<L: duc_blockchain::Ledger>(
    world: &mut World<L>,
    owners: usize,
    devices_per: usize,
) -> (usize, usize, SimDuration) {
    let owner_webid = |o: usize| format!("https://o{o}.id/me");
    let device_name = |o: usize, d: usize| format!("device-{o}-{d}");
    for o in 0..owners {
        world.add_owner(owner_webid(o), format!("https://o{o}.pod/"));
        for d in 0..devices_per {
            world.add_device(device_name(o, d), format!("https://c{o}-{d}.id/me"));
        }
    }
    let mut resources = Vec::with_capacity(owners);
    for o in 0..owners {
        let webid = owner_webid(o);
        world.pod_initiation(&webid).expect("pod init");
        let iri = format!("https://o{o}.pod/data/set.bin");
        let policy = UsagePolicy::builder(format!("{iri}#policy"), iri.clone(), webid.clone())
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7))),
            )
            .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
            .duty(Duty::LogAccesses)
            .build();
        let resource = world
            .resource_initiation(
                &webid,
                "data/set.bin",
                Body::Binary(vec![0xA5; 4 << 10]),
                policy,
                vec![],
            )
            .expect("resource init");
        resources.push(resource);
    }
    // Subscriptions and indexing run concurrently through the driver
    // (setup, unmeasured).
    let mut setup = Vec::new();
    for (o, resource) in resources.iter().enumerate() {
        for d in 0..devices_per {
            setup.push(world.submit(Request::MarketSubscribe {
                device: device_name(o, d),
            }));
            setup.push(world.submit(Request::ResourceIndexing {
                device: device_name(o, d),
                resource: resource.clone(),
            }));
        }
    }
    world.run_until_idle();
    for t in setup {
        t.poll(world).expect("completed").expect("setup ok");
    }

    // The measured batch: every device fetches its owner's resource while
    // one monitoring round per owner races the accesses.
    let t0 = world.clock.now();
    let mut tickets = Vec::new();
    for (o, resource) in resources.iter().enumerate() {
        for d in 0..devices_per {
            tickets.push(world.submit(Request::ResourceAccess {
                device: device_name(o, d),
                resource: resource.clone(),
            }));
        }
    }
    for o in 0..owners {
        tickets.push(world.submit(Request::PolicyMonitoring {
            webid: owner_webid(o),
            path: "data/set.bin".into(),
        }));
    }
    let requests = tickets.len();
    world.run_until_idle();
    let makespan = world.clock.now() - t0;
    let ok = tickets
        .into_iter()
        .filter(|t| matches!(t.poll(world), Some(Ok(_))))
        .count();
    (requests, ok, makespan)
}

/// E13 — ledger backends: single chain vs sharded multi-chain under the
/// disjoint-owner concurrent market. With owners spread over `N` shards,
/// copy registrations and monitoring rounds from different owners confirm
/// in parallel blocks instead of serializing through one mempool.
pub fn e13_backends() -> Vec<Table> {
    let mut table = Table::new(
        "E13 · ledger backends — single vs sharded, disjoint-owner concurrent market (16 owners × 6 devices)",
        &["backend", "shards", "requests", "ok", "makespan ms", "req/s", "speedup"],
    );
    const OWNERS: usize = 16;
    const DEVICES_PER: usize = 6;
    let config = |shards: usize| WorldConfig {
        seed: 131,
        link: fixed_link(10),
        shards,
        ..WorldConfig::default()
    };

    let mut world = World::new(config(1));
    let (requests, ok, single_makespan) = disjoint_market(&mut world, OWNERS, DEVICES_PER);
    table.row(vec![
        "single".into(),
        "1".into(),
        requests.to_string(),
        ok.to_string(),
        ms(single_makespan),
        format!("{:.2}", requests as f64 / single_makespan.as_secs_f64()),
        "1.00".into(),
    ]);

    for shards in [2usize, 4, 8] {
        let mut world = World::new_sharded(config(shards));
        let (requests, ok, makespan) = disjoint_market(&mut world, OWNERS, DEVICES_PER);
        let speedup = single_makespan.as_secs_f64() / makespan.as_secs_f64();
        if shards == 4 {
            assert!(
                speedup >= 2.0,
                "4-shard ledger must at least double disjoint-owner throughput \
                 (single {single_makespan}, sharded {makespan})"
            );
        }
        table.row(vec![
            "sharded".into(),
            shards.to_string(),
            requests.to_string(),
            ok.to_string(),
            ms(makespan),
            format!("{:.2}", requests as f64 / makespan.as_secs_f64()),
            format!("{speedup:.2}"),
        ]);
    }
    vec![table]
}

// --------------------------------------------------------------------- E14

/// One E14 enforcement arm: `n` devices fetch a copy under a 1-day
/// retention policy in the given [`EnforcementMode`]; advancing two days
/// lets every obligation fire. Returns the world for metric extraction.
fn e14_world(n: usize, enforcement: EnforcementMode, seed: u64) -> (World, String) {
    world_with_copies_in(
        WorldConfig {
            seed,
            link: fixed_link(10),
            enforcement,
            ..WorldConfig::default()
        },
        n,
        4 << 10,
        1,
    )
}

/// E14 — deadline-driven enforcement: violation→enforcement latency and
/// monitoring gas, round-based vs deadline-driven (the compiled-policy +
/// obligation-scheduler pipeline).
pub fn e14_deadline_enforcement() -> Vec<Table> {
    const DEVICES: usize = 8;

    // (a) Enforcement latency per mode. The copies all fall due one day
    // after acquisition; the lag histogram records (enforcement instant −
    // declared deadline) per copy.
    let mut latency = Table::new(
        "E14a · violation→enforcement latency — deadline-driven vs round-based (8 devices, 1-day retention)",
        &["mode", "mean lag ms", "max lag ms", "deletions", "anchored on-chain"],
    );
    let mut mean_by_mode: Vec<(String, SimDuration)> = Vec::new();
    for (label, enforcement) in [
        ("deadline-driven".to_string(), EnforcementMode::Deadline),
        (
            "round-based 37 min".to_string(),
            EnforcementMode::Periodic(SimDuration::from_mins(37)),
        ),
        (
            "round-based 2 h".to_string(),
            EnforcementMode::Periodic(SimDuration::from_hours(2)),
        ),
    ] {
        let (mut world, resource) = e14_world(DEVICES, enforcement, 140);
        world.advance(SimDuration::from_days(2));
        assert!(
            world
                .dex
                .list_copies(&world.chain, &resource)
                .expect("view")
                .is_empty(),
            "every overdue copy was unregistered under {label}"
        );
        let deletions = world.metrics.counter("enforcement.deletions");
        let anchored = world.metrics.counter("enforcement.evidence_anchored");
        let lag = world.metrics.histogram_mut("enforcement.lag");
        assert_eq!(lag.len() as u64, deletions, "one lag sample per deletion");
        mean_by_mode.push((label.clone(), lag.mean()));
        latency.row(vec![
            label,
            ms(lag.mean()),
            ms(lag.max()),
            deletions.to_string(),
            anchored.to_string(),
        ]);
    }
    let deadline_mean = mean_by_mode[0].1;
    for (label, mean) in &mean_by_mode[1..] {
        assert!(
            deadline_mean < *mean,
            "deadline-driven enforcement must strictly reduce mean lag: \
             {deadline_mean} vs {mean} ({label})"
        );
    }

    // (b) Monitoring gas: consecutive rounds over unchanged copies go
    // through the reaffirmation path and must cost strictly less gas.
    let mut monitoring = Table::new(
        "E14b · incremental monitoring — per-round gas with unchanged vs advanced usage logs (8 devices)",
        &["round", "gas", "evidence bytes", "reaffirmed"],
    );
    {
        let (mut world, resource) = world_with_copies(DEVICES, 4 << 10, 141);
        let round_metrics = |world: &mut World, label: &str| {
            let gas_before = world.metrics.counter("process.monitoring.gas");
            let reaff_before = world.metrics.counter("process.monitoring.reaffirmed");
            let outcome = world.policy_monitoring(OWNER, "data/set.bin").expect(label);
            assert_eq!(outcome.evidence, DEVICES);
            (
                world.metrics.counter("process.monitoring.gas") - gas_before,
                outcome.evidence_bytes,
                world.metrics.counter("process.monitoring.reaffirmed") - reaff_before,
            )
        };
        let (full_gas, full_bytes, r0) = round_metrics(&mut world, "round 1");
        assert_eq!(r0, 0, "the first round ships full evidence");
        monitoring.row(vec![
            "1 (full evidence)".into(),
            full_gas.to_string(),
            full_bytes.to_string(),
            r0.to_string(),
        ]);
        let (reaff_gas, reaff_bytes, r1) = round_metrics(&mut world, "round 2");
        assert_eq!(r1 as usize, DEVICES, "every unchanged copy reaffirms");
        assert!(
            reaff_gas < full_gas,
            "reaffirmation rounds must be cheaper: {reaff_gas} vs {full_gas}"
        );
        monitoring.row(vec![
            "2 (logs unchanged)".into(),
            reaff_gas.to_string(),
            reaff_bytes.to_string(),
            r1.to_string(),
        ]);
        // Touch one copy: that device resubmits, the rest reaffirm.
        {
            let now = world.clock.now();
            let device = world.devices.get_mut("device-0").expect("device");
            device
                .tee
                .access(&resource, Action::Read, Purpose::any(), now)
                .expect("local access");
        }
        let (mixed_gas, mixed_bytes, r2) = round_metrics(&mut world, "round 3");
        assert_eq!(r2 as usize, DEVICES - 1);
        monitoring.row(vec![
            "3 (one log advanced)".into(),
            mixed_gas.to_string(),
            mixed_bytes.to_string(),
            r2.to_string(),
        ]);
    }

    // (c) The compiled-program decision cache on the TEE access hot path.
    let mut cache = Table::new(
        "E14c · compiled-policy decision cache — 256 repeated local accesses",
        &["copies", "accesses", "cache hits", "programs evaluated"],
    );
    {
        let (mut world, resource) = world_with_copies(1, 1 << 10, 142);
        let now = world.clock.now();
        let device = world.devices.get_mut("device-0").expect("device");
        for _ in 0..256 {
            device
                .tee
                .access(&resource, Action::Read, Purpose::any(), now)
                .expect("local access");
        }
        let (hits, misses) = device.tee.decision_cache_stats();
        assert!(hits >= 255, "repeats are cache-served: {hits}");
        cache.row(vec![
            "1".into(),
            "256".into(),
            hits.to_string(),
            misses.to_string(),
        ]);
    }
    vec![latency, monitoring, cache]
}

// --------------------------------------------------------------------- E15

/// The E15 population sweep, capped by `DUC_E15_MAX_OWNERS` (default
/// 10 000 — the acceptance point; CI runs the 1 000-owner point).
fn e15_points() -> Vec<usize> {
    let cap = std::env::var("DUC_E15_MAX_OWNERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000usize);
    [100usize, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|n| *n <= cap.max(100))
        .collect()
}

/// E15 — population scale: synthetic market populations from 10² to 10⁵
/// owners (one resource each, Zipf-skewed popularity, bursty access
/// waves, device churn between waves). The wave workload is fixed across
/// rows, so req/s isolates how the *population size* taxes the
/// architecture; the run asserts wall-clock throughput does not degrade
/// superlinearly in the population.
pub fn e15_population() -> Vec<Table> {
    let mut table = Table::new(
        "E15 · population scale — Zipf market, bursty waves, device churn (3 × 128-access waves)",
        &[
            "owners",
            "devices",
            "requests",
            "ok",
            "churned",
            "sim makespan ms",
            "access p99 ms",
            "wall ms",
            "req/s (wall)",
            "peak RSS MiB",
        ],
    );
    // Start the sweep from a fresh high-water mark so the column tracks
    // E15's own growth, not whichever experiment ran earlier in this
    // process. Within the sweep the mark stays monotone by design: each
    // row reports the peak *so far*.
    crate::rss::reset_peak();
    let mut baseline: Option<(usize, f64)> = None;
    for owners in e15_points() {
        let spec = scenario::PopulationSpec {
            owners,
            ..scenario::PopulationSpec::default()
        };
        let mut world = World::new(WorldConfig {
            seed: 150,
            link: fixed_link(10),
            ..WorldConfig::default()
        });
        let mut pop = scenario::populate_population(&mut world, &spec);
        let devices = spec.owners * spec.devices_per_owner;
        let wall0 = std::time::Instant::now();
        let run = scenario::run_population(&mut world, &mut pop, &spec);
        let wall = wall0.elapsed();
        assert_eq!(run.requests, run.ok, "every population access succeeds");
        let req_s = run.requests as f64 / wall.as_secs_f64().max(1e-9);
        let p99 = world.metrics.histogram_mut("process.access.e2e").p99();
        let rss = crate::rss::peak_rss_mib().map_or("n/a".into(), |mib| format!("{mib:.1}"));
        table.row(vec![
            owners.to_string(),
            devices.to_string(),
            run.requests.to_string(),
            run.ok.to_string(),
            run.churned.to_string(),
            ms(run.makespan),
            ms(p99),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{req_s:.0}"),
            rss,
        ]);
        // The superlinearity gate: growing the population k× may cost at
        // most k× of the fixed workload's wall-clock throughput.
        match baseline {
            None => baseline = Some((owners, req_s)),
            Some((first_owners, first_req_s)) => {
                let scale = owners as f64 / first_owners as f64;
                let slowdown = first_req_s / req_s.max(1e-9);
                assert!(
                    slowdown <= scale,
                    "E15 gate: {first_owners}→{owners} owners is a {scale:.0}× population, \
                     but wall-clock req/s degraded {slowdown:.1}× (superlinear)"
                );
            }
        }
    }
    vec![table]
}

// --------------------------------------------------------------------- E16

/// E16 — checkpoint/prune storage: the E15 population workload with the
/// wave count doubling across rows (so the request count and the sealed
/// block count grow), each row run twice from the same seed — pruning off
/// and pruning on (checkpoint every 8 blocks, 16-block resident window).
///
/// Correctness gate: outcomes, per-method gas and the replay fingerprint
/// must be byte-identical between the two configurations of every row —
/// pruning is invisible to everything but memory. Memory gates: the
/// pruned run's resident block window stays bounded while the chain
/// grows, and (where the kernel's high-water-mark reset is available)
/// pruned peak RSS grows sublinearly in the request count.
pub fn e16_storage() -> Vec<Table> {
    let owners = *e15_points().last().expect("at least one E15 point");
    e16_storage_at(owners, &[2, 4, 8], 8, 16)
}

/// [`e16_storage`] at an explicit population, wave sweep and storage
/// geometry (the smoke test runs a tiny instance with a tight window; the
/// experiment runs the E15 cap).
fn e16_storage_at(owners: usize, wave_sweep: &[usize], interval: u64, window: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E16 · checkpoint/prune storage — E15 waves, pruning off vs on (interval 8, window 16)",
        &[
            "owners",
            "waves",
            "requests",
            "blocks",
            "retained (prune)",
            "retained (full)",
            "peak RSS MiB (prune)",
            "peak RSS MiB (full)",
        ],
    );
    let resettable = crate::rss::reset_peak();
    // (requests, pruned peak RSS MiB) of the first and latest row, for the
    // sublinearity gate.
    let mut first: Option<(usize, f64)> = None;
    let mut last: Option<(usize, f64)> = None;
    for &waves in wave_sweep {
        let spec = scenario::PopulationSpec {
            owners,
            waves,
            ..scenario::PopulationSpec::default()
        };
        let run_config = |storage: StorageConfig| {
            crate::rss::reset_peak();
            let mut world = World::new(WorldConfig {
                seed: 160,
                link: fixed_link(10),
                storage,
                ..WorldConfig::default()
            });
            let mut pop = scenario::populate_population(&mut world, &spec);
            let report = scenario::run_population(&mut world, &mut pop, &spec);
            let fingerprint = chaos::fingerprint(&mut world);
            (
                report,
                fingerprint,
                world.chain.gas_by_method(),
                world.chain.height(),
                world.chain.retained_blocks(),
                crate::rss::peak_rss_mib(),
            )
        };
        // Pruned first: its high-water mark starts from the cleaner floor.
        let (rep_p, fp_p, gas_p, height_p, retained_p, rss_p) =
            run_config(StorageConfig::enabled(interval, window));
        let (rep_f, fp_f, gas_f, height_f, retained_f, rss_f) =
            run_config(StorageConfig::disabled());

        assert_eq!(rep_p, rep_f, "E16: pruning changed population outcomes");
        assert_eq!(gas_p, gas_f, "E16: pruning drifted per-method gas");
        assert_eq!(fp_p, fp_f, "E16: pruning perturbed the replay fingerprint");
        assert_eq!(height_p, height_f, "E16: pruning changed block production");
        if height_p > window + interval {
            // Chains long enough to cross the window must have pruned.
            assert!(
                retained_p < retained_f,
                "E16: the pruned run retains a strict subset ({retained_p} vs {retained_f})"
            );
        }
        // Bounded residency: the window, plus up to one checkpoint
        // interval of unsealed progress, plus one interval of deferred
        // pruning lag — independent of how many waves ran.
        let bound = (window + 2 * interval + 2) as usize;
        assert!(
            retained_p <= bound,
            "E16: resident window grew past its bound ({retained_p} > {bound} at {waves} waves)"
        );

        let rss_cell = |rss: Option<f64>| rss.map_or("n/a".into(), |mib| format!("{mib:.1}"));
        table.row(vec![
            owners.to_string(),
            waves.to_string(),
            rep_p.requests.to_string(),
            height_p.to_string(),
            retained_p.to_string(),
            retained_f.to_string(),
            rss_cell(rss_p),
            rss_cell(rss_f),
        ]);
        if let Some(rss) = rss_p {
            if first.is_none() {
                first = Some((rep_p.requests, rss));
            }
            last = Some((rep_p.requests, rss));
        }
    }
    // The sublinearity gate: requests grew k× across the sweep; pruned
    // peak RSS must grow strictly slower than k×. Skipped where the
    // high-water mark cannot be reset per configuration.
    if resettable {
        if let (Some((req0, rss0)), Some((req1, rss1))) = (first, last) {
            if req1 > req0 {
                let req_ratio = req1 as f64 / req0 as f64;
                let rss_ratio = rss1 / rss0.max(1e-9);
                assert!(
                    rss_ratio < req_ratio,
                    "E16 gate: requests grew {req_ratio:.1}× but pruned peak RSS grew \
                     {rss_ratio:.1}× (not sublinear)"
                );
            }
        }
    }
    vec![table]
}

// --------------------------------------------------------------------- E17

/// Builds the E17 chain: DistExchange deployed with its access-set
/// derivation installed and one pending `register_pod` per sender.
/// Disjoint owners anchor disjoint storage slots, so the whole batch is
/// conflict-free and the parallel executor can run it in one level.
fn e17_chain(
    mode: duc_blockchain::ExecMode,
    threads: usize,
    senders: usize,
) -> duc_blockchain::Blockchain {
    use duc_blockchain::{Blockchain, ContractId};
    let mut chain = Blockchain::builder()
        .validators(3)
        .block_interval(SimDuration::from_secs(2))
        // High enough that the whole batch seals in one block (a ceiling
        // skip would drop the parallel planner back to serial).
        .max_block_gas(10_000_000_000)
        .exec_mode(mode)
        .exec_threads(threads)
        .build();
    chain.deploy(
        ContractId::new(duc_contracts::DEX_CONTRACT_ID),
        Box::new(duc_contracts::DistExchange::default()),
    );
    chain.set_access_fn(duc_contracts::dex_access_fn());
    let dex = duc_contracts::DistExchangeClient::new();
    for s in 0..senders {
        let key = chain.create_funded_account(format!("e17-sender-{s}").as_bytes(), 1_000_000_000);
        let webid = format!("https://owner{s}.id/me");
        let pod_root = format!("https://owner{s}.pod/");
        let policy = UsagePolicy::builder(format!("{webid}#default"), pod_root.clone(), &webid)
            .permit(Rule::permit([Action::Use]))
            .build();
        let tx = dex.register_pod_tx(
            &chain,
            &key,
            &webid,
            &pod_root,
            duc_contracts::PolicyEnvelope::plain(&policy),
        );
        chain.submit(tx).expect("pod registration is valid");
    }
    chain
}

/// Seals the E17 batch `rounds` times under one execution mode, returning
/// the best wall-clock block time and the (replay-asserted) block
/// fingerprint.
fn e17_block_time(
    mode: duc_blockchain::ExecMode,
    threads: usize,
    senders: usize,
    rounds: usize,
) -> (std::time::Duration, String) {
    let mut best = std::time::Duration::MAX;
    let mut fingerprint: Option<String> = None;
    for _ in 0..rounds {
        let mut chain = e17_chain(mode, threads, senders);
        let wall0 = std::time::Instant::now();
        chain.advance_to(duc_sim::SimTime::from_secs(2));
        best = best.min(wall0.elapsed());
        assert_eq!(chain.height(), 1, "the batch seals in one block");
        let block = chain.block(1).expect("sealed");
        assert_eq!(block.transactions.len(), senders, "every tx included");
        for tx in &block.transactions {
            assert!(
                chain.receipt(&tx.id()).expect("receipt").status.is_ok(),
                "every registration succeeds"
            );
        }
        let fp = format!("{:?}", block.hash());
        if let Some(prev) = &fingerprint {
            assert_eq!(prev, &fp, "identically-seeded blocks replay");
        }
        fingerprint = Some(fp);
    }
    (best, fingerprint.expect("at least one round"))
}

/// E17 — parallel intra-shard block execution: the same conflict-free
/// 256-sender `register_pod` batch sealed serially and through the
/// access-set-scheduled parallel executor. The block fingerprints must be
/// byte-identical; on hosts with ≥4 cores the parallel seal must be at
/// least 1.5× faster.
pub fn e17_parallel_exec() -> Vec<Table> {
    use duc_blockchain::ExecMode;
    let senders = 256;
    let rounds = 3;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let mut table = Table::new(
        format!(
            "E17 · parallel intra-shard execution — conflict-free register_pod batch \
             ({senders} senders, best of {rounds})"
        ),
        &[
            "exec mode",
            "threads",
            "txs",
            "block ms",
            "txs/s",
            "speedup",
        ],
    );
    let (serial, serial_fp) = e17_block_time(ExecMode::Serial, 1, senders, rounds);
    let (parallel, parallel_fp) = e17_block_time(ExecMode::Parallel, threads, senders, rounds);
    assert_eq!(
        serial_fp, parallel_fp,
        "E17 gate: the parallel block must be byte-identical to the serial one"
    );
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    // The speedup gate only binds where the host has real parallelism;
    // byte-identity above is asserted unconditionally.
    if threads >= 4 {
        assert!(
            speedup >= 1.5,
            "E17 gate: {threads} threads must seal the conflict-free batch ≥1.5× faster \
             (serial {serial:?}, parallel {parallel:?})"
        );
    }
    let row = |mode: &str, threads: usize, wall: std::time::Duration, speedup: f64| {
        vec![
            mode.into(),
            threads.to_string(),
            senders.to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
            format!("{:.0}", senders as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{speedup:.2}"),
        ]
    };
    table.row(row("serial", 1, serial, 1.0));
    table.row(row("parallel", threads, parallel, speedup));
    vec![table]
}

// ---------------------------------------------------------------------- E18

/// Scrapes `GET /metrics` from a live endpoint with a raw `TcpStream`
/// (the build is offline; no curl) and returns the response body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send scrape");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("scrape header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

/// E18 — runtime modes: the same concurrent-market script on the
/// deterministic clock and on a compressed wall clock.
///
/// Gates (asserted, not just tabulated):
/// - the two modes produce identical outcome *sets* (timing-free keys via
///   [`duc_core::runtime::outcome_key`]) — wall-clock jitter may move
///   *when* a process runs, never *what* it decides;
/// - the `/metrics` endpoint serves a valid Prometheus exposition
///   containing the migrated network, gas, TEE-cache, enforcement and
///   process-latency families.
///
/// The wall run replays ~185 logical seconds at 200× compression, so its
/// req/s is pacing-dominated (the point: same machines, real time); the
/// sim run's req/s is pure compute.
pub fn e18_runtime() -> Vec<Table> {
    use duc_core::runtime::{market_world, outcome_set, run_scripted, RuntimeMode};
    use duc_runtime::{DriveConfig, MetricsHub, MetricsServer, ShutdownSignal};

    let devices = 8;
    let seed = 23;
    let scale = 200;
    let hub = MetricsHub::new();
    let shutdown = ShutdownSignal::new();
    let config = DriveConfig::default();

    let (mut sim_world, script) = market_world(devices, seed);
    let sim_start = std::time::Instant::now();
    let sim_run = run_scripted(
        &mut sim_world,
        script,
        RuntimeMode::Sim,
        Some(hub.clone()),
        &shutdown,
        &config,
    );
    let sim_real = sim_start.elapsed();

    let (mut wall_world, script) = market_world(devices, seed);
    let wall_start = std::time::Instant::now();
    let wall_run = run_scripted(
        &mut wall_world,
        script,
        RuntimeMode::Wall { scale },
        Some(hub.clone()),
        &shutdown,
        &config,
    );
    let wall_real = wall_start.elapsed();

    let sim_keys = outcome_set(&sim_run.outcomes);
    let wall_keys = outcome_set(&wall_run.outcomes);
    assert!(
        !sim_keys.is_empty() && sim_run.report.drained && wall_run.report.drained,
        "E18: both runs must drain clean"
    );
    assert_eq!(
        sim_keys, wall_keys,
        "E18 gate: sim and wall modes must produce the same outcome set"
    );

    let server = MetricsServer::serve(hub.clone(), "127.0.0.1:0").expect("bind metrics endpoint");
    let exposition = scrape_metrics(server.addr());
    for family in [
        "# TYPE duc_net_messages_sent_total counter",
        "# TYPE duc_gas_used_total counter",
        "# TYPE duc_tee_decision_cache_total counter",
        "# TYPE duc_enforcement_deletions_total counter",
        "# TYPE duc_enforcement_lag_seconds histogram",
        "# TYPE duc_process_access_e2e_seconds histogram",
    ] {
        assert!(
            exposition.contains(family),
            "E18 gate: /metrics scrape is missing {family:?}"
        );
    }
    drop(server);

    let mut table = Table::new(
        format!(
            "E18 · runtime modes — concurrent market ({devices} devices, wall at {scale}× \
             compression; outcome sets identical, /metrics scrape valid)"
        ),
        &[
            "runtime mode",
            "requests",
            "outcomes",
            "logical s",
            "real ms",
            "req/s",
        ],
    );
    let row = |mode: &str, run: &duc_core::RuntimeRun, world: &World, real: std::time::Duration| {
        vec![
            mode.into(),
            run.report.admitted.to_string(),
            run.outcomes.len().to_string(),
            format!("{:.1}", world.clock.now().as_secs_f64()),
            format!("{:.1}", real.as_secs_f64() * 1e3),
            format!(
                "{:.1}",
                run.report.admitted as f64 / real.as_secs_f64().max(1e-9)
            ),
        ]
    };
    table.row(row("sim", &sim_run, &sim_world, sim_real));
    table.row(row("wall", &wall_run, &wall_world, wall_real));
    vec![table]
}

// --------------------------------------------------------------------- E19

/// One E15-style population run under `storage`, returning everything the
/// E19 identity and residency gates compare: the outcome report, the
/// replay fingerprint (which embeds the state commitment), the per-method
/// gas ledger, the paging counters and the wall-clock spent.
type E19Run = (
    scenario::PopulationRunReport,
    String,
    std::collections::BTreeMap<(String, String), (u64, u64, u64)>,
    duc_blockchain::PagingStats,
    std::time::Duration,
);

fn e19_run(spec: &scenario::PopulationSpec, storage: StorageConfig) -> E19Run {
    let mut world = World::new(WorldConfig {
        seed: 190,
        link: fixed_link(10),
        storage,
        ..WorldConfig::default()
    });
    let mut pop = scenario::populate_population(&mut world, spec);
    let wall0 = std::time::Instant::now();
    let report = scenario::run_population(&mut world, &mut pop, spec);
    let wall = wall0.elapsed();
    let fingerprint = chaos::fingerprint(&mut world);
    (
        report,
        fingerprint,
        world.chain.gas_by_method(),
        world.chain.paging_stats(),
        wall,
    )
}

/// E19 — paged world state: the E15 population workload with the slot
/// store paged down to a bounded cache and cold pages spilled through the
/// duc-storage page store.
///
/// (a) Identity sweep at ≤ 1 000 owners: unpaged, unbounded cache, a
/// 16-page cache, a pathological 0-page cache and a 16-page cache spilling
/// to disk all produce byte-identical replay fingerprints (commitment
/// included), per-method gas and outcomes. Paging must be invisible to
/// everything but memory.
///
/// (b) Residency run at the `DUC_E15_MAX_OWNERS` cap (the E19 CI step
/// raises it to 10⁵; set it to 10⁶ locally for the headline row): with a
/// population-scaled page cache the accounted resident state bytes must
/// come in at ≤ 0.4× the unpaged run's. The paged run goes first so each
/// configuration's peak-RSS column starts from its own high-water mark.
/// The gate runs on accounted state bytes, not raw RSS: at population
/// scale the process high-water mark is dominated by the device fleet
/// and the sealed blocks (E16's pruning bounds the latter), which paging
/// cannot and should not touch.
pub fn e19_paged_state() -> Vec<Table> {
    let cap = *e15_points().last().expect("at least one E15 point");
    // The residency cache scales with the population (1 page per 64
    // owners, within [2, 64]) so the 0.4× gate stays meaningful at the
    // small caps CI uses for the all-experiments run as well as at the
    // 10⁵–10⁶ headline populations.
    e19_paged_state_at(cap.min(1_000), cap, 64, (cap / 64).clamp(2, 64))
}

/// [`e19_paged_state`] at an explicit population and page geometry (the
/// smoke test runs a tiny instance with small pages; the experiment runs
/// the E15 cap with the default 64-slot pages).
fn e19_paged_state_at(
    identity_owners: usize,
    residency_owners: usize,
    page_capacity: usize,
    residency_limit: usize,
) -> Vec<Table> {
    use duc_blockchain::PagingConfig;

    // (a) The cache-size identity sweep.
    let mut identity = Table::new(
        format!(
            "E19a · paging identity — {identity_owners} owners, \
             cache sweep (fingerprints byte-identical by assertion)"
        ),
        &[
            "cache",
            "requests",
            "ok",
            "evictions",
            "fault-ins",
            "resident pages",
            "resident KiB",
            "wall ms",
        ],
    );
    let spec = scenario::PopulationSpec {
        owners: identity_owners,
        ..scenario::PopulationSpec::default()
    };
    let spill_dir = std::env::temp_dir().join(format!("duc-e19-spill-{}", std::process::id()));
    let paged = |p: PagingConfig| StorageConfig::disabled().with_paging(p);
    let configs: Vec<(&str, StorageConfig)> = vec![
        ("unpaged", StorageConfig::disabled()),
        (
            "unbounded",
            paged(PagingConfig::in_memory(None).with_page_capacity(page_capacity)),
        ),
        (
            "16 pages",
            paged(PagingConfig::in_memory(Some(16)).with_page_capacity(page_capacity)),
        ),
        (
            "0 pages",
            paged(PagingConfig::in_memory(Some(0)).with_page_capacity(page_capacity)),
        ),
        (
            "16 pages, disk",
            paged(
                PagingConfig::in_memory(Some(16))
                    .with_page_capacity(page_capacity)
                    .with_spill_dir(&spill_dir),
            ),
        ),
    ];
    let mut baseline: Option<(scenario::PopulationRunReport, String, _)> = None;
    for (label, storage) in configs {
        let (report, fingerprint, gas, stats, wall) = e19_run(&spec, storage);
        assert_eq!(report.requests, report.ok, "E19a: every access succeeds");
        match &baseline {
            None => baseline = Some((report, fingerprint, gas)),
            Some((rep0, fp0, gas0)) => {
                assert_eq!(rep0, &report, "E19a: paging changed outcomes ({label})");
                assert_eq!(gas0, &gas, "E19a: paging drifted per-method gas ({label})");
                assert_eq!(
                    fp0, &fingerprint,
                    "E19a: paging perturbed the replay fingerprint ({label})"
                );
            }
        }
        identity.row(vec![
            label.into(),
            report.requests.to_string(),
            report.ok.to_string(),
            stats.evictions.to_string(),
            stats.fault_ins.to_string(),
            stats.resident_pages.to_string(),
            format!("{:.1}", stats.resident_bytes as f64 / 1024.0),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
        ]);
    }
    let _ = std::fs::remove_dir_all(&spill_dir);

    // (b) The residency gate at the population cap.
    let mut residency = Table::new(
        format!(
            "E19b · state residency — {residency_owners} owners, \
             {residency_limit}-page cache vs unpaged (accounted bytes ≤ 0.4×)"
        ),
        &[
            "config",
            "owners",
            "resident pages",
            "resident KiB",
            "bytes/owner",
            "spilled live KiB",
            "evictions",
            "peak RSS MiB",
        ],
    );
    let spec = scenario::PopulationSpec {
        owners: residency_owners,
        ..scenario::PopulationSpec::default()
    };
    let residency_row = |table: &mut Table, label: &str, stats: &duc_blockchain::PagingStats| {
        let rss = crate::rss::peak_rss_mib().map_or("n/a".into(), |mib| format!("{mib:.1}"));
        table.row(vec![
            label.into(),
            residency_owners.to_string(),
            stats.resident_pages.to_string(),
            format!("{:.1}", stats.resident_bytes as f64 / 1024.0),
            format!(
                "{:.1}",
                stats.resident_bytes as f64 / residency_owners as f64
            ),
            format!("{:.1}", stats.spilled_live_bytes as f64 / 1024.0),
            stats.evictions.to_string(),
            rss,
        ]);
    };
    // Paged first: its high-water mark starts from the cleaner floor.
    crate::rss::reset_peak();
    let (rep_p, fp_p, gas_p, stats_p, _) = e19_run(
        &spec,
        paged(PagingConfig::in_memory(Some(residency_limit)).with_page_capacity(page_capacity)),
    );
    residency_row(
        &mut residency,
        &format!("{residency_limit}-page cache"),
        &stats_p,
    );
    crate::rss::reset_peak();
    let (rep_f, fp_f, gas_f, stats_f, _) = e19_run(&spec, StorageConfig::disabled());
    residency_row(&mut residency, "unpaged", &stats_f);

    assert_eq!(rep_p, rep_f, "E19b: paging changed population outcomes");
    assert_eq!(gas_p, gas_f, "E19b: paging drifted per-method gas");
    assert_eq!(fp_p, fp_f, "E19b: paging perturbed the replay fingerprint");
    assert!(
        stats_p.evictions > 0,
        "E19b: the bounded cache must actually evict at {residency_owners} owners"
    );
    let ratio = stats_p.resident_bytes as f64 / (stats_f.resident_bytes as f64).max(1.0);
    assert!(
        ratio <= 0.4,
        "E19b gate: paged resident state is {:.1}% of unpaged (> 40%): \
         {} vs {} bytes",
        ratio * 100.0,
        stats_p.resident_bytes,
        stats_f.resident_bytes
    );
    vec![identity, residency]
}

/// Runs every experiment in order.
pub fn all() -> Vec<Table> {
    let mut tables = Vec::new();
    tables.extend(e1_pod_initiation());
    tables.extend(e2_resource_initiation());
    tables.extend(e3_indexing());
    tables.extend(e4_access());
    tables.extend(e5_propagation());
    tables.extend(e6_monitoring());
    tables.extend(e7_gas_table());
    tables.extend(e8_robustness());
    tables.extend(e9_privacy());
    tables.extend(e10_baseline());
    tables.extend(e11_enforcement());
    tables.extend(e12_chain_scale());
    tables.extend(e13_backends());
    tables.extend(e14_deadline_enforcement());
    tables.extend(e15_population());
    tables.extend(e16_storage());
    tables.extend(e17_parallel_exec());
    tables.extend(e18_runtime());
    tables.extend(e19_paged_state());
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests on the cheapest experiments keep the harness honest
    // without blowing up the test suite's runtime; the expensive ones run
    // through the `report` binary.

    #[test]
    fn e5_small_fanout_counts_are_consistent() {
        let (mut world, _resource) = world_with_copies(4, 1 << 10, 55);
        let outcome = world
            .policy_modification(
                OWNER,
                "data/set.bin",
                vec![Rule::permit([Action::Use])
                    .with_constraint(Constraint::MaxRetention(SimDuration::ZERO))],
                vec![Duty::DeleteWithin(SimDuration::ZERO)],
            )
            .expect("modification");
        assert_eq!(outcome.devices_notified, 4);
        assert_eq!(outcome.enforcement.len(), 4);
    }

    #[test]
    fn e6_violator_detection_is_exact() {
        let (mut world, _resource) = world_with_copies(4, 1 << 10, 66);
        world.set_rogue_host("device-0", true);
        world.advance(SimDuration::from_days(8));
        let outcome = world
            .policy_monitoring(OWNER, "data/set.bin")
            .expect("round");
        assert_eq!(outcome.violators, vec!["device-0".to_string()]);
        assert_eq!(
            outcome.evidence, 1,
            "compliant devices already unregistered"
        );
    }

    #[test]
    fn e10_plain_solid_is_cheaper_but_uncontrolled() {
        let (mut world, _resource) = world_with_copies(1, 100 << 10, 77);
        let mut m = world.metrics.clone();
        let full = m.histogram_mut("process.access.e2e").mean();
        let plain =
            PlainSolidBaseline::access(&mut world, "device-0", OWNER, "data/set.bin").expect("ok");
        assert!(plain < full, "plain {plain} vs full {full}");
    }

    #[test]
    fn e12c_concurrent_batch_completes_and_beats_serial() {
        // Small-n replica of the E12c harness: 8 accesses + 2 rounds all in
        // flight; everything completes and the batch shares block slots.
        let (mut world, resource) = world_with_copies(0, 1 << 10, 123);
        for i in 0..8 {
            world.add_device(format!("racer-{i}"), format!("https://r{i}.id/me"));
        }
        let mut setup = Vec::new();
        for i in 0..8 {
            setup.push(world.submit(Request::MarketSubscribe {
                device: format!("racer-{i}"),
            }));
            setup.push(world.submit(Request::ResourceIndexing {
                device: format!("racer-{i}"),
                resource: resource.clone(),
            }));
        }
        world.run_until_idle();
        for t in setup {
            t.poll(&mut world).expect("done").expect("setup ok");
        }
        let t0 = world.clock.now();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                world.submit(Request::ResourceAccess {
                    device: format!("racer-{i}"),
                    resource: resource.clone(),
                })
            })
            .collect();
        assert_eq!(world.in_flight(), 8);
        world.run_until_idle();
        for t in tickets {
            assert!(matches!(t.poll(&mut world), Some(Ok(Outcome::Accessed(_)))));
        }
        let makespan = world.clock.now() - t0;
        assert!(
            makespan < SimDuration::from_secs(8 * 2),
            "8 concurrent accesses share slots: {makespan}"
        );
    }

    #[test]
    fn world_with_copies_builds_consistently() {
        let (world, resource) = world_with_copies(2, 1 << 10, 1234);
        assert!(world.device("device-0").tee.has_copy(&resource));
        assert!(world.device("device-1").tee.has_copy(&resource));
        let copies = world
            .dex
            .list_copies(&world.chain, &resource)
            .expect("view");
        assert_eq!(copies.len(), 2);
    }

    #[test]
    fn e14_deadline_beats_round_based_enforcement() {
        // Small-n replica of the E14 harness (the full sweep and its gates
        // run through the report binary): deadline-driven enforcement must
        // strictly reduce mean violation→enforcement latency, and an
        // unchanged second monitoring round must reaffirm for less gas.
        let lag_mean = |enforcement: EnforcementMode| {
            let (mut world, _resource) = e14_world(2, enforcement, 1400);
            world.advance(SimDuration::from_days(2));
            assert_eq!(world.metrics.counter("enforcement.deletions"), 2);
            world.metrics.histogram_mut("enforcement.lag").mean()
        };
        let deadline = lag_mean(EnforcementMode::Deadline);
        let periodic = lag_mean(EnforcementMode::Periodic(SimDuration::from_mins(37)));
        assert!(
            deadline < periodic,
            "deadline {deadline} must beat round-based {periodic}"
        );

        let (mut world, _resource) = world_with_copies(3, 1 << 10, 1401);
        let gas = |world: &mut World| {
            let before = world.metrics.counter("process.monitoring.gas");
            world
                .policy_monitoring(OWNER, "data/set.bin")
                .expect("round");
            world.metrics.counter("process.monitoring.gas") - before
        };
        let full = gas(&mut world);
        let reaffirmed = gas(&mut world);
        assert_eq!(world.metrics.counter("process.monitoring.reaffirmed"), 3);
        assert!(reaffirmed < full, "reaffirm {reaffirmed} vs full {full}");
    }

    #[test]
    fn e15_population_smoke_run_completes() {
        // Small-n replica of the E15 harness (the full sweep and its
        // superlinearity gate run through the report binary): a tiny
        // population builds, every wave access succeeds, and churn keeps
        // the fleet size constant.
        let spec = scenario::PopulationSpec {
            owners: 4,
            devices_per_owner: 2,
            waves: 2,
            accesses_per_wave: 6,
            churn_per_wave: 1,
            ..scenario::PopulationSpec::default()
        };
        let mut world = World::new(WorldConfig {
            seed: 151,
            link: fixed_link(10),
            ..WorldConfig::default()
        });
        let mut pop = scenario::populate_population(&mut world, &spec);
        let run = scenario::run_population(&mut world, &mut pop, &spec);
        assert_eq!(run.requests, run.ok);
        assert_eq!(run.churned, 1);
        assert!(!world.metrics.histogram_mut("process.access.e2e").is_empty());
    }

    #[test]
    fn e16_storage_smoke_run_completes() {
        // Small-n replica of the E16 harness (the full sweep and the RSS
        // gate run through the report binary): the pruned-vs-unpruned
        // equality assertions and the bounded-residency gate all run
        // inside `e16_storage_at`, so a passing call is the assertion.
        let tables = e16_storage_at(4, &[1, 2], 2, 2);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows().len(), 2);
    }

    #[test]
    fn e18_runtime_mode_gates_hold() {
        // The outcome-set identity and /metrics scrape gates are asserted
        // inside the experiment; a panic-free run is the smoke test.
        let tables = e18_runtime();
        assert_eq!(tables[0].len(), 2, "one row per runtime mode");
    }

    #[test]
    fn e19_paged_state_smoke_gates_hold() {
        // Small-n replica of the E19 harness (the full sweep runs through
        // the report binary): the cache-size identity assertions, the
        // eviction-pressure check and the 0.4× residency gate all run
        // inside `e19_paged_state_at`, so a passing call is the assertion.
        let tables = e19_paged_state_at(6, 32, 8, 2);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows().len(), 5, "one row per cache config");
        assert_eq!(tables[1].rows().len(), 2, "paged and unpaged rows");
    }

    #[test]
    fn e17_parallel_block_smoke_run_matches_serial() {
        // Small-n replica of the E17 harness (the full batch and its
        // ≥1.5× speedup gate run through the report binary): a modest
        // conflict-free batch must seal identically under both executors.
        let (_, serial_fp) = e17_block_time(duc_blockchain::ExecMode::Serial, 1, 16, 1);
        let (_, parallel_fp) = e17_block_time(duc_blockchain::ExecMode::Parallel, 4, 16, 1);
        assert_eq!(
            serial_fp, parallel_fp,
            "parallel block diverged from serial"
        );
    }

    #[test]
    fn e13_sharded_backend_outpaces_single_on_disjoint_owners() {
        // Small-n replica of the E13 harness (the full sweep and its ≥2×
        // gate run through the report binary): the same disjoint-owner
        // batch must complete on both backends, every request succeeding,
        // strictly faster on four shards.
        let config = |shards: usize| WorldConfig {
            seed: 313,
            link: fixed_link(10),
            shards,
            ..WorldConfig::default()
        };
        let mut single = World::new(config(1));
        let (requests, ok, single_makespan) = disjoint_market(&mut single, 6, 4);
        assert_eq!(requests, ok, "every request succeeds on the single chain");
        let mut sharded = World::new_sharded(config(4));
        let (requests, ok, sharded_makespan) = disjoint_market(&mut sharded, 6, 4);
        assert_eq!(requests, ok, "every request succeeds on the sharded ledger");
        assert!(
            sharded_makespan < single_makespan,
            "disjoint owners stop serializing through one mempool: \
             sharded {sharded_makespan} vs single {single_makespan}"
        );
    }
}
