//! Criterion benchmarks for the full pipeline: chain transaction
//! throughput, DE App contract calls, and whole architecture processes
//! (host wall-time per simulated operation).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use duc_blockchain::{Blockchain, ContractId};
use duc_contracts::{DistExchange, DistExchangeClient, PolicyEnvelope, DEX_CONTRACT_ID};
use duc_core::prelude::*;
use duc_core::scenario;
use duc_policy::UsagePolicy;
use duc_sim::SimTime;
use duc_solid::Body;

fn chain_with_dex() -> (Blockchain, duc_crypto::KeyPair, DistExchangeClient) {
    let mut chain = Blockchain::builder().validators(4).build();
    chain.deploy(
        ContractId::new(DEX_CONTRACT_ID),
        Box::new(DistExchange::default()),
    );
    let admin = chain.create_funded_account(b"admin", u64::MAX as u128);
    let dex = DistExchangeClient::new();
    let init = dex.init_tx(
        &chain,
        &admin,
        1,
        1 << 40,
        duc_blockchain::Address::from_seed(b"t"),
    );
    chain.submit(init).expect("init");
    chain.advance_to(SimTime::from_secs(2));
    (chain, admin, dex)
}

fn bench_chain_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain");
    group.sample_size(20);
    // 100 pod registrations executed in one block.
    group.bench_function("execute_block/100-registrations", |b| {
        b.iter_batched(
            || {
                let (mut chain, admin, dex) = chain_with_dex();
                let policy = UsagePolicy::default_for("urn:r", "urn:o");
                for i in 0..100 {
                    let tx = dex.register_pod_tx(
                        &chain,
                        &admin,
                        &format!("https://o{i}.id/me"),
                        &format!("https://o{i}.pod/"),
                        PolicyEnvelope::plain(&policy),
                    );
                    chain.submit(tx).expect("mempool");
                }
                chain
            },
            |mut chain| {
                chain.advance_to(SimTime::from_secs(60));
                black_box(chain.height())
            },
            BatchSize::SmallInput,
        )
    });
    // Read-only view call against a populated index.
    let (mut chain, admin, dex) = chain_with_dex();
    let policy = UsagePolicy::default_for("urn:r", "https://o.id/me");
    let tx = dex.register_pod_tx(
        &chain,
        &admin,
        "https://o.id/me",
        "https://o.pod/",
        PolicyEnvelope::plain(&policy),
    );
    chain.submit(tx).expect("mempool");
    for i in 0..200 {
        let iri = format!("https://o.pod/r{i}");
        let tx = dex.register_resource_tx(
            &chain,
            &admin,
            &iri,
            &iri,
            "https://o.id/me",
            vec![],
            PolicyEnvelope::plain(&policy),
        );
        chain.submit(tx).expect("mempool");
    }
    let mut t = 2u64;
    while chain.pending_count() > 0 {
        t += 2;
        chain.advance_to(SimTime::from_secs(t));
    }
    group.bench_function("view/lookup_resource-in-200", |b| {
        b.iter(|| {
            dex.lookup_resource(black_box(&chain), "https://o.pod/r100")
                .expect("view")
        })
    });
    group.finish();
}

fn bench_processes(c: &mut Criterion) {
    let mut group = c.benchmark_group("process-host-time");
    group.sample_size(10);
    group.bench_function("full_scenario", |b| {
        b.iter_batched(
            || scenario::build_world(WorldConfig::default()),
            |mut world| scenario::run(&mut world).expect("scenario"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("monitoring_round/8-devices", |b| {
        b.iter_batched(
            || {
                let mut world = World::new(WorldConfig::default());
                world.add_owner("https://o.id/me", "https://o.pod/");
                for i in 0..8 {
                    world.add_device(format!("d{i}"), format!("https://c{i}.id/me"));
                }
                world.pod_initiation("https://o.id/me").expect("pod");
                let iri = world
                    .owner("https://o.id/me")
                    .pod_manager
                    .pod()
                    .iri_of("data/x");
                let policy = UsagePolicy::default_for(iri.clone(), "https://o.id/me");
                let resource = world
                    .resource_initiation(
                        "https://o.id/me",
                        "data/x",
                        Body::Text("payload".into()),
                        policy,
                        vec![],
                    )
                    .expect("resource");
                for i in 0..8 {
                    let d = format!("d{i}");
                    world.market_subscribe(&d).expect("sub");
                    world.resource_indexing(&d, &resource).expect("idx");
                    world.resource_access(&d, &resource).expect("access");
                }
                world
            },
            |mut world| {
                world
                    .policy_monitoring("https://o.id/me", "data/x")
                    .expect("round")
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_chain_throughput, bench_processes);
criterion_main!(benches);
