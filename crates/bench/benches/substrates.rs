//! Criterion micro-benchmarks for the from-scratch substrates: hashing,
//! MACs, stream cipher, signatures, Merkle trees, the binary codec, Turtle,
//! and the policy engine. These measure *host* time (the simulation's own
//! measurements are in simulated time via the `report` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use duc_codec::{decode_from_slice, encode_to_vec};
use duc_crypto::{hmac_sha256, sha256, ChaCha20, KeyPair, MerkleTree};
use duc_policy::prelude::*;
use duc_sim::{SimDuration, SimTime};

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data_1k = vec![0xABu8; 1024];
    let data_64k = vec![0xABu8; 64 * 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256/1KiB", |b| b.iter(|| sha256(black_box(&data_1k))));
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("sha256/64KiB", |b| b.iter(|| sha256(black_box(&data_64k))));
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("hmac/1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", black_box(&data_1k)))
    });
    let cipher = ChaCha20::new([7; 32], [9; 12]);
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("chacha20/64KiB", |b| {
        b.iter(|| cipher.encrypt(black_box(&data_64k)))
    });
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("schnorr");
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"a transaction-sized message for signing benchmarks";
    let sig = kp.sign(msg);
    group.bench_function("sign", |b| b.iter(|| kp.sign(black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| kp.public().verify(black_box(msg), black_box(&sig)).is_ok())
    });
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    let leaves: Vec<Vec<u8>> = (0..256).map(|i| format!("tx-{i}").into_bytes()).collect();
    group.bench_function("build/256", |b| {
        b.iter(|| MerkleTree::from_leaves(black_box(&leaves)))
    });
    let tree = MerkleTree::from_leaves(&leaves);
    group.bench_function("prove+verify/256", |b| {
        b.iter(|| {
            let proof = tree.prove(black_box(127)).expect("in range");
            proof.verify(b"tx-127", &tree.root())
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let value: Vec<(u64, String, Option<u64>)> = (0..64)
        .map(|i| (i, format!("https://pod.example/resource/{i}"), Some(i * 7)))
        .collect();
    let bytes = encode_to_vec(&value);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode/64-records", |b| {
        b.iter(|| encode_to_vec(black_box(&value)))
    });
    group.bench_function("decode/64-records", |b| {
        b.iter(|| {
            decode_from_slice::<Vec<(u64, String, Option<u64>)>>(black_box(&bytes)).expect("ok")
        })
    });
    group.finish();
}

fn sample_policy() -> UsagePolicy {
    UsagePolicy::builder("urn:p", "urn:r", "urn:o")
        .permit(
            Rule::permit([Action::Use, Action::Read])
                .with_constraint(Constraint::Purpose(vec![
                    Purpose::new("medical"),
                    Purpose::new("academic"),
                ]))
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(7)))
                .with_constraint(Constraint::MaxAccessCount(100)),
        )
        .rule(Rule::prohibit([Action::Distribute]))
        .duty(Duty::DeleteWithin(SimDuration::from_days(7)))
        .duty(Duty::LogAccesses)
        .build()
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let engine = PolicyEngine::default();
    let policy = sample_policy();
    let ctx = UsageContext {
        consumer: "urn:alice".into(),
        action: Action::Read,
        purpose: Purpose::new("medical-research"),
        now: SimTime::from_secs(100),
        acquired_at: SimTime::from_secs(50),
        access_count: 3,
    };
    group.bench_function("evaluate", |b| {
        b.iter(|| engine.evaluate(black_box(&policy), black_box(&ctx)))
    });
    let dsl_src = duc_policy::dsl::serialize(&policy);
    group.bench_function("dsl_parse", |b| {
        b.iter(|| duc_policy::dsl::parse(black_box(&dsl_src)).expect("parses"))
    });
    group.bench_function("codec_roundtrip", |b| {
        b.iter(|| {
            let bytes = encode_to_vec(black_box(&policy));
            decode_from_slice::<UsagePolicy>(&bytes).expect("decodes")
        })
    });
    group.finish();
}

fn bench_rdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdf");
    let policy = UsagePolicy::builder(
        "https://bob.pod/policies#p",
        "https://bob.pod/data/medical.ttl",
        "https://bob.id/me",
    )
    .permit(
        Rule::permit([Action::Use])
            .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")]))
            .with_constraint(Constraint::MaxRetention(SimDuration::from_days(30))),
    )
    .duty(Duty::LogAccesses)
    .build();
    let graph = duc_policy::rdf_binding::policy_to_graph(&policy).expect("graph");
    let text = duc_rdf::turtle::serialize(&graph);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("turtle_parse/policy", |b| {
        b.iter(|| duc_rdf::turtle::parse(black_box(&text)).expect("parses"))
    });
    group.bench_function("turtle_serialize/policy", |b| {
        b.iter(|| duc_rdf::turtle::serialize(black_box(&graph)))
    });
    group.bench_function("policy_from_graph", |b| {
        b.iter(|| duc_policy::rdf_binding::policy_from_graph(black_box(&graph)).expect("policy"))
    });
    group.finish();
}

fn bench_acl(c: &mut Criterion) {
    let mut group = c.benchmark_group("acl");
    for n in [1usize, 64, 512] {
        let mut acl = AclDocument::new();
        for i in 0..n {
            acl.push(Authorization::for_resource(
                format!("auth-{i}"),
                format!("https://pod.example/res-{i}"),
                vec![AgentSpec::Agent(format!("https://agent-{i}.id/me"))],
                vec![AclMode::Read],
            ));
        }
        group.bench_function(format!("allows/{n}-entries"), |b| {
            b.iter(|| {
                acl.allows(
                    black_box(Some("https://agent-0.id/me")),
                    AclMode::Read,
                    black_box("https://pod.example/res-0"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_signatures,
    bench_merkle,
    bench_codec,
    bench_policy,
    bench_rdf,
    bench_acl
);
criterion_main!(benches);
