//! # duc-codec — deterministic binary serialization
//!
//! The blockchain's transaction payloads, contract call ABI, state storage
//! and the oracle message envelopes all need one canonical byte encoding:
//! signatures and hashes are computed over these bytes, so the encoding must
//! be *deterministic* (one value, one byte string). No serialization-format
//! crate is available offline, so this crate defines the format:
//!
//! * fixed-width little-endian integers,
//! * `u32` length prefixes for strings, byte strings and sequences,
//! * a single tag byte for `Option` and enum discriminants.
//!
//! The [`impl_codec_struct!`] macro derives [`Encode`]/[`Decode`] for named
//! structs; enums are implemented manually with explicit tags.
//!
//! ## Example
//! ```
//! use duc_codec::{decode_from_slice, encode_to_vec};
//!
//! let value = (42u64, "hello".to_string(), vec![1u32, 2, 3]);
//! let bytes = encode_to_vec(&value);
//! let back: (u64, String, Vec<u32>) = decode_from_slice(&bytes)?;
//! assert_eq!(back, value);
//! # Ok::<(), duc_codec::DecodeError>(())
//! ```

use std::fmt;

use duc_crypto::{Digest, PublicKey, Signature};

/// Serializes a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Deserializes a value from a byte slice, requiring full consumption.
///
/// # Errors
/// Returns [`DecodeError::TrailingBytes`] if input remains after decoding,
/// or any error produced while decoding the value itself.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

/// A value with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// A value decodable from its canonical binary encoding.
pub trait Decode: Sized {
    /// Reads one value from the reader.
    ///
    /// # Errors
    /// Implementations return a [`DecodeError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed beyond the available input.
        needed: usize,
    },
    /// Input remained after a complete value (strict decoding).
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An enum/option tag byte was out of range.
    InvalidTag {
        /// The offending tag.
        tag: u8,
        /// The type being decoded.
        type_name: &'static str,
    },
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A declared length exceeded the remaining input (corruption guard).
    LengthOverflow {
        /// The declared length.
        declared: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A domain-specific invariant failed during decoding.
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed } => {
                write!(f, "unexpected end of input, {needed} more bytes needed")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            DecodeError::InvalidTag { tag, type_name } => {
                write!(f, "invalid tag {tag} for {type_name}")
            }
            DecodeError::InvalidUtf8 => f.write_str("invalid utf-8 in string"),
            DecodeError::LengthOverflow {
                declared,
                available,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds available {available}"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over input bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads exactly `n` bytes.
    ///
    /// # Errors
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n - self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Reads a `u32` length prefix, validating it against remaining input.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let len = u32::decode(self)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::LengthOverflow {
                declared: len,
                available: self.remaining(),
            });
        }
        Ok(len)
    }
}

macro_rules! impl_codec_int {
    ($($t:ty),*) => {
        $(
            impl Encode for $t {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
            }
            impl Decode for $t {
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    let n = std::mem::size_of::<$t>();
                    let bytes = r.read_bytes(n)?;
                    Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact size")))
                }
            }
        )*
    };
}

impl_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "bool",
            }),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.read_len()?;
        let bytes = r.read_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)? as usize;
        // Guard: each element takes at least one byte, so a length larger
        // than the remaining input is corrupt.
        if len > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(DecodeError::LengthOverflow {
                declared: len,
                available: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::InvalidTag {
                tag,
                type_name: "Option",
            }),
        }
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = r.read_bytes(N)?;
        Ok(bytes.try_into().expect("exact size"))
    }
}

macro_rules! impl_codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_codec_tuple!(A: 0);
impl_codec_tuple!(A: 0, B: 1);
impl_codec_tuple!(A: 0, B: 1, C: 2);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

// --- impls for duc-crypto types (canonical wire forms) ---

impl Encode for Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes: [u8; 32] = <[u8; 32]>::decode(r)?;
        Ok(Digest(bytes))
    }
}

impl Encode for PublicKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PublicKey(u64::decode(r)?))
    }
}

impl Encode for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.e.encode(buf);
        self.s.encode(buf);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signature {
            e: u64::decode(r)?,
            s: u64::decode(r)?,
        })
    }
}

/// Implements [`Encode`] and [`Decode`] for a named struct by encoding its
/// fields in declaration order.
///
/// ```
/// use duc_codec::{decode_from_slice, encode_to_vec, impl_codec_struct};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_codec_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// let back: Point = decode_from_slice(&encode_to_vec(&p))?;
/// assert_eq!(back, p);
/// # Ok::<(), duc_codec::DecodeError>(())
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Encode for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $($crate::Encode::encode(&self.$field, buf);)*
            }
        }
        impl $crate::Decode for $name {
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::DecodeError> {
                Ok($name {
                    $($field: $crate::Decode::decode(r)?,)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-42i64);
        roundtrip(i128::MIN);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn strings_and_vectors_roundtrip() {
        roundtrip(String::new());
        roundtrip("héllo wörld ∀".to_string());
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(vec!["a".to_string(), String::new(), "ccc".to_string()]);
        roundtrip(vec![vec![1u32], vec![], vec![2, 3]]);
    }

    #[test]
    fn options_and_tuples_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(7u32));
        roundtrip(Some("s".to_string()));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip(((1u8, "x".to_string()), Some(false)));
        roundtrip(());
    }

    #[test]
    fn fixed_arrays_roundtrip() {
        roundtrip([7u8; 32]);
        roundtrip([0u8; 12]);
    }

    #[test]
    fn crypto_types_roundtrip() {
        use duc_crypto::{sha256, KeyPair};
        roundtrip(sha256(b"digest"));
        let kp = KeyPair::from_seed(b"codec");
        roundtrip(kp.public());
        roundtrip(kp.sign(b"message"));
    }

    #[test]
    fn struct_macro_roundtrips() {
        #[derive(Debug, PartialEq)]
        struct Header {
            height: u64,
            parent: Digest,
            note: Option<String>,
            txs: Vec<u32>,
        }
        impl_codec_struct!(Header {
            height,
            parent,
            note,
            txs
        });
        let h = Header {
            height: 9,
            parent: duc_crypto::sha256(b"p"),
            note: Some("n".to_string()),
            txs: vec![1, 2, 3],
        };
        roundtrip(h);
    }

    #[test]
    fn eof_is_detected() {
        let bytes = encode_to_vec(&12345u64);
        let err = decode_from_slice::<u64>(&bytes[..4]).unwrap_err();
        assert!(matches!(err, DecodeError::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&1u8);
        bytes.push(0xFF);
        let err = decode_from_slice::<u8>(&bytes).unwrap_err();
        assert_eq!(err, DecodeError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn invalid_bool_tag_rejected() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidTag { tag: 2, .. }));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let err = decode_from_slice::<Option<u8>>(&[9]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidTag { tag: 9, .. }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_from_slice::<String>(&bytes).unwrap_err(),
            DecodeError::InvalidUtf8
        );
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims 4 billion elements with 2 bytes of payload.
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        bytes.extend_from_slice(&[1, 2]);
        let err = decode_from_slice::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverflow { .. }));
        let err = decode_from_slice::<String>(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverflow { .. }));
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = (vec![1u64, 2, 3], Some("abc".to_string()));
        assert_eq!(encode_to_vec(&v), encode_to_vec(&v));
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::LengthOverflow {
            declared: 10,
            available: 2,
        };
        assert!(e.to_string().contains("10"));
        assert!(DecodeError::InvalidUtf8.to_string().contains("utf-8"));
    }
}
