//! Property tests: every encodable value decodes back to itself, and the
//! decoder never panics on arbitrary input.

use duc_codec::{decode_from_slice, encode_to_vec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(decode_from_slice::<u64>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn i128_roundtrip(v in any::<i128>()) {
        prop_assert_eq!(decode_from_slice::<i128>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(v in ".*") {
        let owned = v.to_string();
        prop_assert_eq!(decode_from_slice::<String>(&encode_to_vec(&owned)).unwrap(), owned);
    }

    #[test]
    fn vec_u8_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(decode_from_slice::<Vec<u8>>(&encode_to_vec(&v)).unwrap(), v);
    }

    #[test]
    fn nested_roundtrip(
        a in any::<u32>(),
        b in proptest::collection::vec(".*", 0..8),
        c in proptest::option::of(any::<u64>()),
    ) {
        let value = (a, b.clone(), c);
        let back: (u32, Vec<String>, Option<u64>) =
            decode_from_slice(&encode_to_vec(&value)).unwrap();
        prop_assert_eq!(back, value);
    }

    /// Fuzzing the decoder: arbitrary bytes must yield either a clean value
    /// or a clean error — never a panic.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_from_slice::<Vec<String>>(&bytes);
        let _ = decode_from_slice::<(u64, Option<String>)>(&bytes);
        let _ = decode_from_slice::<Vec<(bool, u16)>>(&bytes);
    }

    /// Determinism: encoding the same value twice yields identical bytes.
    #[test]
    fn encoding_deterministic(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(encode_to_vec(&v), encode_to_vec(&v));
    }
}
