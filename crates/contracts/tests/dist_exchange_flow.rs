//! End-to-end tests of the DistExchange contract running on the blockchain
//! substrate: registration, indexing, policy updates, monitoring, market.

use duc_blockchain::{Address, Blockchain, ContractId, TxStatus};
use duc_contracts::{
    topics, DistExchange, DistExchangeClient, EvidenceSubmission, PolicyEnvelope, DEX_CONTRACT_ID,
};
use duc_crypto::{sha256, KeyPair, Signature};
use duc_policy::prelude::*;
use duc_sim::{SimDuration, SimTime};

const ALICE_WEBID: &str = "https://alice.id/me";
const BOB_WEBID: &str = "https://bob.id/me";
const MEDICAL: &str = "https://bob.pod/data/medical.ttl";

struct World {
    chain: Blockchain,
    dex: DistExchangeClient,
    alice: KeyPair,
    bob: KeyPair,
    now: SimTime,
}

impl World {
    fn new() -> World {
        let mut chain = Blockchain::builder()
            .validators(4)
            .block_interval(SimDuration::from_secs(2))
            .build();
        chain.deploy(
            ContractId::new(DEX_CONTRACT_ID),
            Box::new(DistExchange::default()),
        );
        let admin = chain.create_funded_account(b"admin", 1_000_000_000);
        let alice = chain.create_funded_account(b"alice", 1_000_000_000);
        let bob = chain.create_funded_account(b"bob", 1_000_000_000);
        let dex = DistExchangeClient::new();
        let init = dex.init_tx(
            &chain,
            &admin,
            10_000,
            SimDuration::from_days(30).as_nanos(),
            Address::from_seed(b"treasury"),
        );
        chain.submit(init).unwrap();
        let mut w = World {
            chain,
            dex,
            alice,
            bob,
            now: SimTime::ZERO,
        };
        w.step();
        w
    }

    /// Advances one block interval and produces due blocks.
    fn step(&mut self) {
        self.now += SimDuration::from_secs(2);
        self.chain.advance_to(self.now);
    }

    fn medical_policy(&self) -> UsagePolicy {
        UsagePolicy::builder(format!("{MEDICAL}#policy"), MEDICAL, BOB_WEBID)
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
            )
            .duty(Duty::LogAccesses)
            .build()
    }

    fn register_bob_pod_and_resource(&mut self) {
        let pod_tx = self.dex.register_pod_tx(
            &self.chain,
            &self.bob,
            BOB_WEBID,
            "https://bob.pod/",
            PolicyEnvelope::plain(&UsagePolicy::default_for("https://bob.pod/", BOB_WEBID)),
        );
        self.chain.submit(pod_tx).unwrap();
        self.step();
        let res_tx = self.dex.register_resource_tx(
            &self.chain,
            &self.bob,
            MEDICAL,
            "https://bob.pod/data/medical.ttl",
            BOB_WEBID,
            vec![("domain".into(), "health".into())],
            PolicyEnvelope::plain(&self.medical_policy()),
        );
        self.chain.submit(res_tx).unwrap();
        self.step();
    }

    fn register_alice_copy(&mut self, device: &str) -> KeyPair {
        let enclave = KeyPair::from_seed(device.as_bytes());
        let tx = self.dex.register_copy_tx(
            &self.chain,
            &self.alice,
            MEDICAL,
            device,
            ALICE_WEBID,
            enclave.public(),
        );
        self.chain.submit(tx).unwrap();
        self.step();
        enclave
    }
}

#[test]
fn pod_and_resource_registration() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();

    let pod = w.dex.get_pod(&w.chain, BOB_WEBID).unwrap().expect("pod");
    assert_eq!(pod.web_ref, "https://bob.pod/");
    assert_eq!(pod.owner_addr, Address::from_seed(b"bob"));

    let res = w
        .dex
        .lookup_resource(&w.chain, MEDICAL)
        .unwrap()
        .expect("resource");
    assert_eq!(res.policy_version, 1);
    assert_eq!(res.owner_webid, BOB_WEBID);
    let policy = res.policy.open_plain().unwrap();
    assert_eq!(policy.owner, BOB_WEBID);

    assert_eq!(
        w.dex.list_resources(&w.chain).unwrap(),
        vec![MEDICAL.to_string()]
    );
    assert!(w
        .dex
        .lookup_resource(&w.chain, "urn:missing")
        .unwrap()
        .is_none());
}

#[test]
fn duplicate_registrations_revert() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let dup = w.dex.register_pod_tx(
        &w.chain,
        &w.bob,
        BOB_WEBID,
        "https://elsewhere/",
        PolicyEnvelope::plain(&UsagePolicy::default_for("x", BOB_WEBID)),
    );
    let id = w.chain.submit(dup).unwrap();
    w.step();
    assert!(matches!(
        w.chain.receipt(&id).unwrap().status,
        TxStatus::Reverted(_)
    ));
}

#[test]
fn only_pod_owner_can_register_resources() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    // Alice tries to register a resource under Bob's pod identity.
    let forged = w.dex.register_resource_tx(
        &w.chain,
        &w.alice,
        "https://bob.pod/data/other.ttl",
        "https://bob.pod/data/other.ttl",
        BOB_WEBID,
        vec![],
        PolicyEnvelope::plain(&w.medical_policy()),
    );
    let id = w.chain.submit(forged).unwrap();
    w.step();
    match &w.chain.receipt(&id).unwrap().status {
        TxStatus::Reverted(msg) => assert!(msg.contains("does not own"), "{msg}"),
        other => panic!("expected revert, got {other:?}"),
    }
}

#[test]
fn policy_update_requires_owner_and_version_increment() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let amended = w.medical_policy().amended(
        vec![Rule::permit([Action::Use])
            .with_constraint(Constraint::Purpose(vec![Purpose::new("academic")]))],
        vec![Duty::LogAccesses],
    );

    // Wrong caller.
    let tx = w.dex.update_policy_tx(
        &w.chain,
        &w.alice,
        MEDICAL,
        PolicyEnvelope::plain(&amended),
        2,
    );
    let id = w.chain.submit(tx).unwrap();
    w.step();
    assert!(matches!(
        w.chain.receipt(&id).unwrap().status,
        TxStatus::Reverted(_)
    ));

    // Wrong version.
    let tx = w.dex.update_policy_tx(
        &w.chain,
        &w.bob,
        MEDICAL,
        PolicyEnvelope::plain(&amended),
        5,
    );
    let id = w.chain.submit(tx).unwrap();
    w.step();
    assert!(matches!(
        w.chain.receipt(&id).unwrap().status,
        TxStatus::Reverted(_)
    ));

    // Correct update.
    let tx = w.dex.update_policy_tx(
        &w.chain,
        &w.bob,
        MEDICAL,
        PolicyEnvelope::plain(&amended),
        2,
    );
    let id = w.chain.submit(tx).unwrap();
    w.step();
    assert!(w.chain.receipt(&id).unwrap().status.is_ok());
    let res = w.dex.lookup_resource(&w.chain, MEDICAL).unwrap().unwrap();
    assert_eq!(res.policy_version, 2);

    // The PolicyUpdated event carries the new envelope.
    let updates: Vec<_> = w
        .chain
        .events_since(0)
        .filter(|(_, e)| e.topic == topics::POLICY_UPDATED)
        .collect();
    assert_eq!(updates.len(), 1);
}

#[test]
fn copy_tracking() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    w.register_alice_copy("alice-laptop");
    w.register_alice_copy("alice-phone");
    let copies = w.dex.list_copies(&w.chain, MEDICAL).unwrap();
    assert_eq!(copies.len(), 2);
    // `as_of` must lie strictly after the registration block time: the
    // freshness guard keeps records registered at or after it.
    let after_registration = w.chain.current_time() + duc_sim::SimDuration::from_nanos(1);
    let tx = w.dex.unregister_copy_tx(
        &w.chain,
        &w.alice,
        MEDICAL,
        "alice-phone",
        after_registration,
    );
    w.chain.submit(tx).unwrap();
    w.step();
    let copies = w.dex.list_copies(&w.chain, MEDICAL).unwrap();
    assert_eq!(copies.len(), 1);
    assert_eq!(copies[0].device, "alice-laptop");
}

#[test]
fn monitoring_round_with_signed_evidence() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let enclave = w.register_alice_copy("alice-laptop");

    let tx = w.dex.start_monitoring_tx(&w.chain, &w.bob, MEDICAL);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    let receipt = w.chain.receipt(&id).unwrap().clone();
    assert!(receipt.status.is_ok());
    let round = DistExchangeClient::decode_round_number(&receipt.return_data).unwrap();
    assert_eq!(round, 1);

    // The enclave submits signed evidence.
    let mut submission = EvidenceSubmission {
        resource: MEDICAL.into(),
        round,
        device: "alice-laptop".into(),
        compliant: true,
        violations: vec![],
        evidence_digest: sha256(b"usage log"),
        signature: Signature { e: 0, s: 0 },
    };
    submission.signature = enclave.sign(&submission.signing_bytes());
    let tx = w.dex.record_evidence_tx(&w.chain, &w.alice, &submission);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    assert!(w.chain.receipt(&id).unwrap().status.is_ok());

    let record = w.dex.get_round(&w.chain, MEDICAL, round).unwrap().unwrap();
    assert!(record.closed, "round closes when all devices answered");
    assert!(record.complete());
    assert!(record.violators().is_empty());
    assert!(w
        .chain
        .events_since(0)
        .any(|(_, e)| e.topic == topics::ROUND_CLOSED));
}

#[test]
fn forged_evidence_is_rejected_on_chain() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let _enclave = w.register_alice_copy("alice-laptop");
    let tx = w.dex.start_monitoring_tx(&w.chain, &w.bob, MEDICAL);
    w.chain.submit(tx).unwrap();
    w.step();

    // Mallory forges evidence with her own key.
    let mallory = KeyPair::from_seed(b"mallory");
    let mut forged = EvidenceSubmission {
        resource: MEDICAL.into(),
        round: 1,
        device: "alice-laptop".into(),
        compliant: true,
        violations: vec![],
        evidence_digest: sha256(b"fake"),
        signature: Signature { e: 0, s: 0 },
    };
    forged.signature = mallory.sign(&forged.signing_bytes());
    let tx = w.dex.record_evidence_tx(&w.chain, &w.alice, &forged);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    match &w.chain.receipt(&id).unwrap().status {
        TxStatus::Reverted(msg) => assert!(msg.contains("signature"), "{msg}"),
        other => panic!("expected revert, got {other:?}"),
    }
    let record = w.dex.get_round(&w.chain, MEDICAL, 1).unwrap().unwrap();
    assert!(record.evidence.is_empty());
    assert!(!record.closed);
}

#[test]
fn duplicate_and_unexpected_evidence_rejected() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let enclave = w.register_alice_copy("alice-laptop");
    let tx = w.dex.start_monitoring_tx(&w.chain, &w.bob, MEDICAL);
    w.chain.submit(tx).unwrap();
    w.step();

    let mut good = EvidenceSubmission {
        resource: MEDICAL.into(),
        round: 1,
        device: "alice-laptop".into(),
        compliant: true,
        violations: vec![],
        evidence_digest: sha256(b"log"),
        signature: Signature { e: 0, s: 0 },
    };
    good.signature = enclave.sign(&good.signing_bytes());
    let tx = w.dex.record_evidence_tx(&w.chain, &w.alice, &good);
    w.chain.submit(tx).unwrap();
    w.step();

    // Duplicate (round already closed since all expected answered).
    let tx = w.dex.record_evidence_tx(&w.chain, &w.alice, &good);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    assert!(matches!(
        w.chain.receipt(&id).unwrap().status,
        TxStatus::Reverted(_)
    ));

    // Unexpected device in a new round.
    let tx = w.dex.start_monitoring_tx(&w.chain, &w.bob, MEDICAL);
    w.chain.submit(tx).unwrap();
    w.step();
    let stranger = KeyPair::from_seed(b"stranger-device");
    let mut odd = EvidenceSubmission {
        resource: MEDICAL.into(),
        round: 2,
        device: "stranger-device".into(),
        compliant: true,
        violations: vec![],
        evidence_digest: sha256(b"x"),
        signature: Signature { e: 0, s: 0 },
    };
    odd.signature = stranger.sign(&odd.signing_bytes());
    let tx = w.dex.record_evidence_tx(&w.chain, &w.alice, &odd);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    match &w.chain.receipt(&id).unwrap().status {
        TxStatus::Reverted(msg) => assert!(msg.contains("not expected"), "{msg}"),
        other => panic!("expected revert, got {other:?}"),
    }
}

#[test]
fn market_subscription_and_certificate() {
    let mut w = World::new();
    let treasury = Address::from_seed(b"treasury");
    let before = w.chain.balance(&treasury);

    let tx = w.dex.subscribe_tx(&w.chain, &w.alice, ALICE_WEBID);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    let receipt = w.chain.receipt(&id).unwrap().clone();
    assert!(receipt.status.is_ok());
    let cert = DistExchangeClient::decode_certificate(&receipt.return_data).unwrap();

    assert_eq!(w.chain.balance(&treasury), before + 10_000, "fee collected");
    assert!(w
        .dex
        .verify_certificate(&w.chain, &cert, ALICE_WEBID)
        .unwrap());
    assert!(!w
        .dex
        .verify_certificate(&w.chain, &cert, BOB_WEBID)
        .unwrap());
    assert!(!w
        .dex
        .verify_certificate(&w.chain, &sha256(b"forged"), ALICE_WEBID)
        .unwrap());

    let sub = w
        .dex
        .get_subscription(&w.chain, ALICE_WEBID)
        .unwrap()
        .unwrap();
    assert_eq!(sub.certificate, cert);
    assert!(sub.valid_at(w.now));
}

#[test]
fn certificate_expires() {
    let mut w = World::new();
    let tx = w.dex.subscribe_tx(&w.chain, &w.alice, ALICE_WEBID);
    let id = w.chain.submit(tx).unwrap();
    w.step();
    let cert =
        DistExchangeClient::decode_certificate(&w.chain.receipt(&id).unwrap().return_data).unwrap();
    assert!(w
        .dex
        .verify_certificate(&w.chain, &cert, ALICE_WEBID)
        .unwrap());
    // 31 days later the certificate is expired (validity 30 days).
    w.now += SimDuration::from_days(31);
    w.chain.advance_to(w.now);
    assert!(!w
        .dex
        .verify_certificate(&w.chain, &cert, ALICE_WEBID)
        .unwrap());
}

#[test]
fn gas_ledger_reflects_de_app_usage() {
    let mut w = World::new();
    w.register_bob_pod_and_resource();
    let agg = w.chain.gas_by_method();
    let pod_row = agg
        .get(&(DEX_CONTRACT_ID.to_string(), "register_pod".to_string()))
        .expect("pod row");
    assert_eq!(pod_row.0, 1);
    assert!(pod_row.1 > 21_000);
    let res_row = agg
        .get(&(DEX_CONTRACT_ID.to_string(), "register_resource".to_string()))
        .expect("resource row");
    assert!(res_row.2 > pod_row.2 / 10, "sane magnitudes");
}
