//! On-chain data types and the contract ABI.
//!
//! Everything here crosses the contract boundary, so every type carries a
//! canonical [`duc_codec`] encoding.

use duc_codec::{Decode, DecodeError, Encode, Reader};
use duc_crypto::{ChaCha20, Digest, PublicKey, Signature};
use duc_policy::UsagePolicy;
use duc_sim::SimTime;

use duc_blockchain::Address;

/// A usage policy as stored on-chain: either plaintext or ChaCha20
/// ciphertext (the privacy experiment E9 compares the two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyEnvelope {
    /// Whether `bytes` is encrypted.
    pub encrypted: bool,
    /// `duc_codec`-encoded [`UsagePolicy`], possibly encrypted.
    pub bytes: Vec<u8>,
}

impl PolicyEnvelope {
    /// Wraps a policy in plaintext.
    pub fn plain(policy: &UsagePolicy) -> PolicyEnvelope {
        PolicyEnvelope {
            encrypted: false,
            bytes: duc_codec::encode_to_vec(policy),
        }
    }

    /// Wraps a policy encrypted under `key`/`nonce`.
    pub fn sealed(policy: &UsagePolicy, key: [u8; 32], nonce: [u8; 12]) -> PolicyEnvelope {
        let cipher = ChaCha20::new(key, nonce);
        PolicyEnvelope {
            encrypted: true,
            bytes: cipher.encrypt(&duc_codec::encode_to_vec(policy)),
        }
    }

    /// Opens a plaintext envelope.
    ///
    /// # Errors
    /// Fails when the envelope is encrypted or the bytes are corrupt.
    pub fn open_plain(&self) -> Result<UsagePolicy, DecodeError> {
        if self.encrypted {
            return Err(DecodeError::Invalid("envelope is encrypted"));
        }
        duc_codec::decode_from_slice(&self.bytes)
    }

    /// Opens an encrypted envelope with the decryption key.
    ///
    /// # Errors
    /// Fails when the envelope is plaintext-marked or decryption yields
    /// garbage (wrong key).
    pub fn open_sealed(&self, key: [u8; 32], nonce: [u8; 12]) -> Result<UsagePolicy, DecodeError> {
        if !self.encrypted {
            return Err(DecodeError::Invalid("envelope is not encrypted"));
        }
        let cipher = ChaCha20::new(key, nonce);
        duc_codec::decode_from_slice(&cipher.decrypt(&self.bytes))
    }

    /// Opens with an optional key, dispatching on the encryption flag.
    ///
    /// # Errors
    /// Fails when an encrypted envelope is opened without a key, or on
    /// corrupt bytes.
    pub fn open(&self, key: Option<([u8; 32], [u8; 12])>) -> Result<UsagePolicy, DecodeError> {
        match (self.encrypted, key) {
            (false, _) => self.open_plain(),
            (true, Some((k, n))) => self.open_sealed(k, n),
            (true, None) => Err(DecodeError::Invalid("missing decryption key")),
        }
    }

    /// Envelope size in bytes (gas/privacy experiments).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the envelope is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Encode for PolicyEnvelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.encrypted.encode(buf);
        self.bytes.encode(buf);
    }
}

impl Decode for PolicyEnvelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PolicyEnvelope {
            encrypted: bool::decode(r)?,
            bytes: Vec::decode(r)?,
        })
    }
}

/// A registered pod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodRecord {
    /// The owner's WebID.
    pub owner_webid: String,
    /// The owner's chain address (authorization identity).
    pub owner_addr: Address,
    /// The pod's web reference (where the pod manager listens).
    pub web_ref: String,
    /// The pod's default usage policy.
    pub default_policy: PolicyEnvelope,
    /// Registration block time.
    pub registered_at: SimTime,
}

impl Encode for PodRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.owner_webid.encode(buf);
        self.owner_addr.encode(buf);
        self.web_ref.encode(buf);
        self.default_policy.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for PodRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PodRecord {
            owner_webid: String::decode(r)?,
            owner_addr: Address::decode(r)?,
            web_ref: String::decode(r)?,
            default_policy: PolicyEnvelope::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// A resource in the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// The resource IRI (index key).
    pub resource: String,
    /// Physical location (URL under the owning pod).
    pub location: String,
    /// The owner's WebID.
    pub owner_webid: String,
    /// The owner's chain address.
    pub owner_addr: Address,
    /// Free-form metadata pairs shown in the market.
    pub metadata: Vec<(String, String)>,
    /// The governing usage policy.
    pub policy: PolicyEnvelope,
    /// Digest anchoring the exact policy bytes on-chain: devices verify a
    /// pushed update against it before recompiling their local program.
    pub policy_hash: Digest,
    /// Policy version (monotonic; the contract enforces increments).
    pub policy_version: u64,
    /// Registration block time.
    pub registered_at: SimTime,
}

impl PolicyEnvelope {
    /// The digest anchored on-chain for this envelope's exact bytes.
    pub fn digest(&self) -> Digest {
        duc_crypto::hash_parts(&[b"duc/policy-envelope", &[self.encrypted as u8], &self.bytes])
    }
}

impl Encode for ResourceRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.resource.encode(buf);
        self.location.encode(buf);
        self.owner_webid.encode(buf);
        self.owner_addr.encode(buf);
        self.metadata.encode(buf);
        self.policy.encode(buf);
        self.policy_hash.encode(buf);
        self.policy_version.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for ResourceRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ResourceRecord {
            resource: String::decode(r)?,
            location: String::decode(r)?,
            owner_webid: String::decode(r)?,
            owner_addr: Address::decode(r)?,
            metadata: Vec::decode(r)?,
            policy: PolicyEnvelope::decode(r)?,
            policy_hash: Digest::decode(r)?,
            policy_version: u64::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// A device holding a copy of a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyRecord {
    /// Device identifier (the TEE's logical name).
    pub device: String,
    /// WebID of the consumer operating the device.
    pub holder_webid: String,
    /// The device's attestation public key (evidence must verify against
    /// it).
    pub attestation_key: PublicKey,
    /// When the copy was registered.
    pub registered_at: SimTime,
}

impl Encode for CopyRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.device.encode(buf);
        self.holder_webid.encode(buf);
        self.attestation_key.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for CopyRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CopyRecord {
            device: String::decode(r)?,
            holder_webid: String::decode(r)?,
            attestation_key: PublicKey::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// Evidence a device submits during a monitoring round.
///
/// The signature covers `(resource, round, device, compliant, violations,
/// evidence_digest)` and must verify against the device's registered
/// attestation key — a forged or replayed submission is rejected on-chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceSubmission {
    /// The audited resource.
    pub resource: String,
    /// The round this evidence answers.
    pub round: u64,
    /// The submitting device.
    pub device: String,
    /// The device's own compliance verdict.
    pub compliant: bool,
    /// Human-readable violation descriptions (empty when compliant).
    pub violations: Vec<String>,
    /// Digest of the full usage log backing this evidence.
    pub evidence_digest: Digest,
    /// Enclave signature over the submission.
    pub signature: Signature,
}

impl EvidenceSubmission {
    /// The bytes the enclave signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.resource.encode(&mut buf);
        self.round.encode(&mut buf);
        self.device.encode(&mut buf);
        self.compliant.encode(&mut buf);
        self.violations.encode(&mut buf);
        self.evidence_digest.encode(&mut buf);
        buf
    }
}

impl Encode for EvidenceSubmission {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.resource.encode(buf);
        self.round.encode(buf);
        self.device.encode(buf);
        self.compliant.encode(buf);
        self.violations.encode(buf);
        self.evidence_digest.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for EvidenceSubmission {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EvidenceSubmission {
            resource: String::decode(r)?,
            round: u64::decode(r)?,
            device: String::decode(r)?,
            compliant: bool::decode(r)?,
            violations: Vec::decode(r)?,
            evidence_digest: Digest::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A lightweight follow-up to a prior [`EvidenceSubmission`]: the device
/// attests that its usage log (hence its verdict) is unchanged since
/// `prev_round`, so the contract copies the prior evidence into the new
/// round instead of shipping and storing the full submission again — the
/// incremental-monitoring path.
///
/// The signature covers `(resource, round, device, prev_round,
/// evidence_digest)` and must verify against the device's registered
/// attestation key, so a reaffirmation cannot be forged or replayed into a
/// different round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceReaffirmation {
    /// The audited resource.
    pub resource: String,
    /// The round this reaffirmation answers.
    pub round: u64,
    /// The submitting device.
    pub device: String,
    /// The earlier round whose evidence still stands.
    pub prev_round: u64,
    /// The (unchanged) usage-log digest.
    pub evidence_digest: Digest,
    /// Enclave signature over the reaffirmation.
    pub signature: Signature,
}

impl EvidenceReaffirmation {
    /// The bytes the enclave signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.resource.encode(&mut buf);
        self.round.encode(&mut buf);
        self.device.encode(&mut buf);
        self.prev_round.encode(&mut buf);
        self.evidence_digest.encode(&mut buf);
        buf
    }
}

impl Encode for EvidenceReaffirmation {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.resource.encode(buf);
        self.round.encode(buf);
        self.device.encode(buf);
        self.prev_round.encode(buf);
        self.evidence_digest.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for EvidenceReaffirmation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EvidenceReaffirmation {
            resource: String::decode(r)?,
            round: u64::decode(r)?,
            device: String::decode(r)?,
            prev_round: u64::decode(r)?,
            evidence_digest: Digest::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// The state of one monitoring round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoringRound {
    /// Round number (per resource, starting at 1).
    pub round: u64,
    /// The audited resource.
    pub resource: String,
    /// Who asked for the round (pod manager's chain address).
    pub requested_by: Address,
    /// When the round opened.
    pub started_at: SimTime,
    /// Devices expected to answer (copies registered at open time).
    pub expected_devices: Vec<String>,
    /// Evidence received so far.
    pub evidence: Vec<EvidenceSubmission>,
    /// Compliant devices that reaffirmed earlier evidence instead of
    /// resubmitting: `(device, prev_round)` pairs. Kept compact so rounds
    /// over unchanged copies stay cheap to store.
    pub reaffirmed: Vec<(String, u64)>,
    /// Whether the round has been closed.
    pub closed: bool,
}

impl MonitoringRound {
    /// Whether every expected device has answered (full evidence or a
    /// verified reaffirmation).
    pub fn complete(&self) -> bool {
        self.expected_devices.iter().all(|d| {
            self.evidence.iter().any(|e| &e.device == d)
                || self.reaffirmed.iter().any(|(r, _)| r == d)
        })
    }

    /// Devices that answered compliant, whether by full evidence or by
    /// reaffirmation.
    pub fn compliant_count(&self) -> u64 {
        self.evidence.iter().filter(|e| e.compliant).count() as u64 + self.reaffirmed.len() as u64
    }

    /// Devices that reported violations.
    pub fn violators(&self) -> Vec<&EvidenceSubmission> {
        self.evidence.iter().filter(|e| !e.compliant).collect()
    }
}

impl Encode for MonitoringRound {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.resource.encode(buf);
        self.requested_by.encode(buf);
        self.started_at.as_nanos().encode(buf);
        self.expected_devices.encode(buf);
        self.evidence.encode(buf);
        self.reaffirmed.encode(buf);
        self.closed.encode(buf);
    }
}

impl Decode for MonitoringRound {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MonitoringRound {
            round: u64::decode(r)?,
            resource: String::decode(r)?,
            requested_by: Address::decode(r)?,
            started_at: SimTime::from_nanos(u64::decode(r)?),
            expected_devices: Vec::decode(r)?,
            evidence: Vec::decode(r)?,
            reaffirmed: Vec::decode(r)?,
            closed: bool::decode(r)?,
        })
    }
}

/// A market subscription with its payment certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// Subscriber WebID.
    pub webid: String,
    /// Subscriber chain address.
    pub addr: Address,
    /// Certificate identifier (presented to pod managers).
    pub certificate: Digest,
    /// Payment time.
    pub paid_at: SimTime,
    /// Expiry time.
    pub valid_until: SimTime,
}

impl Subscription {
    /// Whether the certificate is valid at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        now < self.valid_until
    }
}

impl Encode for Subscription {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.webid.encode(buf);
        self.addr.encode(buf);
        self.certificate.encode(buf);
        self.paid_at.as_nanos().encode(buf);
        self.valid_until.as_nanos().encode(buf);
    }
}

impl Decode for Subscription {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Subscription {
            webid: String::decode(r)?,
            addr: Address::decode(r)?,
            certificate: Digest::decode(r)?,
            paid_at: SimTime::from_nanos(u64::decode(r)?),
            valid_until: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};
    use duc_crypto::KeyPair;
    use duc_policy::UsagePolicy;

    fn policy() -> UsagePolicy {
        UsagePolicy::default_for("urn:res", "urn:owner")
    }

    #[test]
    fn plain_envelope_roundtrip() {
        let env = PolicyEnvelope::plain(&policy());
        assert!(!env.encrypted);
        assert_eq!(env.open_plain().unwrap(), policy());
        assert_eq!(env.open(None).unwrap(), policy());
    }

    #[test]
    fn sealed_envelope_requires_key() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let env = PolicyEnvelope::sealed(&policy(), key, nonce);
        assert!(env.encrypted);
        assert!(env.open(None).is_err());
        assert!(env.open_plain().is_err());
        assert_eq!(env.open(Some((key, nonce))).unwrap(), policy());
        // Wrong key yields garbage that fails to decode.
        assert!(env.open(Some(([0u8; 32], nonce))).is_err());
    }

    #[test]
    fn sealed_is_larger_than_nothing_but_same_size_as_plain() {
        let plain = PolicyEnvelope::plain(&policy());
        let sealed = PolicyEnvelope::sealed(&policy(), [1; 32], [2; 12]);
        assert_eq!(plain.len(), sealed.len(), "stream cipher preserves length");
        assert!(!plain.is_empty());
        assert_ne!(plain.bytes, sealed.bytes);
    }

    #[test]
    fn record_codecs_roundtrip() {
        let pod = PodRecord {
            owner_webid: "https://alice.id/me".into(),
            owner_addr: Address::from_seed(b"alice"),
            web_ref: "https://alice.pod/".into(),
            default_policy: PolicyEnvelope::plain(&policy()),
            registered_at: SimTime::from_secs(4),
        };
        let back: PodRecord = decode_from_slice(&encode_to_vec(&pod)).unwrap();
        assert_eq!(back, pod);

        let res = ResourceRecord {
            resource: "urn:res".into(),
            location: "https://alice.pod/data/r".into(),
            owner_webid: "https://alice.id/me".into(),
            owner_addr: Address::from_seed(b"alice"),
            metadata: vec![("domain".into(), "health".into())],
            policy: PolicyEnvelope::plain(&policy()),
            policy_hash: PolicyEnvelope::plain(&policy()).digest(),
            policy_version: 1,
            registered_at: SimTime::from_secs(5),
        };
        let back: ResourceRecord = decode_from_slice(&encode_to_vec(&res)).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn evidence_signature_covers_payload() {
        let enclave = KeyPair::from_seed(b"enclave");
        let mut ev = EvidenceSubmission {
            resource: "urn:res".into(),
            round: 1,
            device: "device-1".into(),
            compliant: true,
            violations: vec![],
            evidence_digest: duc_crypto::sha256(b"log"),
            signature: Signature { e: 0, s: 0 },
        };
        ev.signature = enclave.sign(&ev.signing_bytes());
        assert!(enclave
            .public()
            .verify(&ev.signing_bytes(), &ev.signature)
            .is_ok());
        // Flipping the verdict invalidates the signature.
        ev.compliant = false;
        assert!(enclave
            .public()
            .verify(&ev.signing_bytes(), &ev.signature)
            .is_err());
    }

    #[test]
    fn round_completion_and_violators() {
        let mk = |device: &str, compliant: bool| EvidenceSubmission {
            resource: "urn:r".into(),
            round: 1,
            device: device.into(),
            compliant,
            violations: if compliant {
                vec![]
            } else {
                vec!["late".into()]
            },
            evidence_digest: Digest::ZERO,
            signature: Signature { e: 0, s: 0 },
        };
        let mut round = MonitoringRound {
            round: 1,
            resource: "urn:r".into(),
            requested_by: Address::from_seed(b"pm"),
            started_at: SimTime::ZERO,
            expected_devices: vec!["d1".into(), "d2".into()],
            evidence: vec![mk("d1", true)],
            reaffirmed: Vec::new(),
            closed: false,
        };
        assert!(!round.complete());
        round.evidence.push(mk("d2", false));
        assert!(round.complete());
        assert_eq!(round.violators().len(), 1);
        let back: MonitoringRound = decode_from_slice(&encode_to_vec(&round)).unwrap();
        assert_eq!(back, round);
    }

    #[test]
    fn subscription_validity_window() {
        let sub = Subscription {
            webid: "urn:alice".into(),
            addr: Address::from_seed(b"alice"),
            certificate: duc_crypto::sha256(b"cert"),
            paid_at: SimTime::from_secs(0),
            valid_until: SimTime::from_secs(100),
        };
        assert!(sub.valid_at(SimTime::from_secs(99)));
        assert!(!sub.valid_at(SimTime::from_secs(100)));
        let back: Subscription = decode_from_slice(&encode_to_vec(&sub)).unwrap();
        assert_eq!(back, sub);
    }
}
