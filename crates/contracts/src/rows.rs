//! Compact on-chain row encodings for the DE App's hot tables.
//!
//! The ABI records in [`crate::abi`] are what callers see; they repeat
//! identity strings that already live in the storage key (a pod row knows
//! its owner WebID, a copy row its device) and embed the full
//! [`PolicyEnvelope`] in every pod and resource row. At population scale
//! (E15/E19, 10⁵–10⁶ owners) those repeats dominate resident state.
//!
//! This module defines the rows as *stored*: identity strings are dropped
//! in favour of the key, and policy envelopes move to a shared
//! content-addressed table
//!
//! ```text
//! pol/{digest}  →  PolicyEnvelope   (digest = envelope.digest())
//! ```
//!
//! written idempotently by whichever call introduces the envelope. A row
//! then anchors its policy by [`Digest`] — 32 bytes instead of the full
//! envelope — and the hot mutation paths (`update_policy`,
//! `start_monitoring`) never materialize the envelope at all. View methods
//! reconstruct the exact ABI records from key + row + pol table, so the
//! wire format of every method is unchanged.

use duc_blockchain::Address;
use duc_codec::{Decode, DecodeError, Encode, Reader};
use duc_crypto::{Digest, PublicKey};
use duc_sim::SimTime;

use crate::abi::{CopyRecord, PodRecord, PolicyEnvelope, ResourceRecord, Subscription};

/// The content-addressed policy-table key: `pol/` + raw digest bytes.
pub fn pol_key(digest: &Digest) -> Vec<u8> {
    let mut k = b"pol/".to_vec();
    k.extend_from_slice(digest.as_bytes());
    k
}

/// A registered pod as stored: the owner WebID lives in the key
/// (`pod/{owner_webid}`), the default policy in the pol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodRow {
    /// The owner's chain address (authorization identity).
    pub owner_addr: Address,
    /// The pod's web reference.
    pub web_ref: String,
    /// Digest of the default policy envelope (pol-table key).
    pub policy: Digest,
    /// Registration block time.
    pub registered_at: SimTime,
}

impl PodRow {
    /// Reconstructs the ABI record from key identity + pol-table envelope.
    pub fn into_record(self, owner_webid: String, default_policy: PolicyEnvelope) -> PodRecord {
        PodRecord {
            owner_webid,
            owner_addr: self.owner_addr,
            web_ref: self.web_ref,
            default_policy,
            registered_at: self.registered_at,
        }
    }
}

impl Encode for PodRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.owner_addr.encode(buf);
        self.web_ref.encode(buf);
        self.policy.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for PodRow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PodRow {
            owner_addr: Address::decode(r)?,
            web_ref: String::decode(r)?,
            policy: Digest::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// A resource as stored: the IRI lives in the key (`res/{resource}`), the
/// policy in the pol table, and the location collapses to `None` when it
/// equals the IRI. The on-chain policy hash IS `policy` — the pol table is
/// content-addressed — so the separate `policy_hash` field vanishes too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRow {
    /// Physical location, or `None` when identical to the resource IRI.
    pub location: Option<String>,
    /// The owner's WebID.
    pub owner_webid: String,
    /// The owner's chain address.
    pub owner_addr: Address,
    /// Free-form metadata pairs.
    pub metadata: Vec<(String, String)>,
    /// Digest of the governing policy envelope (pol-table key, and the
    /// hash devices verify pushed updates against).
    pub policy: Digest,
    /// Policy version (monotonic).
    pub policy_version: u64,
    /// Registration block time.
    pub registered_at: SimTime,
}

impl ResourceRow {
    /// Collapses `location` against the resource IRI.
    pub fn encode_location(resource: &str, location: String) -> Option<String> {
        if location == resource {
            None
        } else {
            Some(location)
        }
    }

    /// Reconstructs the ABI record from key identity + pol-table envelope.
    pub fn into_record(self, resource: String, policy: PolicyEnvelope) -> ResourceRecord {
        ResourceRecord {
            location: self.location.unwrap_or_else(|| resource.clone()),
            resource,
            owner_webid: self.owner_webid,
            owner_addr: self.owner_addr,
            metadata: self.metadata,
            policy,
            policy_hash: self.policy,
            policy_version: self.policy_version,
            registered_at: self.registered_at,
        }
    }
}

impl Encode for ResourceRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.location.encode(buf);
        self.owner_webid.encode(buf);
        self.owner_addr.encode(buf);
        self.metadata.encode(buf);
        self.policy.encode(buf);
        self.policy_version.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for ResourceRow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ResourceRow {
            location: Option::decode(r)?,
            owner_webid: String::decode(r)?,
            owner_addr: Address::decode(r)?,
            metadata: Vec::decode(r)?,
            policy: Digest::decode(r)?,
            policy_version: u64::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// A copy as stored: the device name lives in the key
/// (`copy/{resource}\0{device}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyRow {
    /// WebID of the consumer operating the device.
    pub holder_webid: String,
    /// The device's attestation public key.
    pub attestation_key: PublicKey,
    /// When the copy was registered.
    pub registered_at: SimTime,
}

impl CopyRow {
    /// Reconstructs the ABI record from the key's device suffix.
    pub fn into_record(self, device: String) -> CopyRecord {
        CopyRecord {
            device,
            holder_webid: self.holder_webid,
            attestation_key: self.attestation_key,
            registered_at: self.registered_at,
        }
    }
}

impl Encode for CopyRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.holder_webid.encode(buf);
        self.attestation_key.encode(buf);
        self.registered_at.as_nanos().encode(buf);
    }
}

impl Decode for CopyRow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CopyRow {
            holder_webid: String::decode(r)?,
            attestation_key: PublicKey::decode(r)?,
            registered_at: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

/// A subscription as stored: the WebID lives in the key (`sub/{webid}`).
/// The companion `cert/{digest}` slot shrinks to an empty existence
/// marker — `verify_certificate` needs the subscription row anyway, and
/// its `certificate` field already names the unique valid certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubRow {
    /// Subscriber chain address.
    pub addr: Address,
    /// Certificate identifier.
    pub certificate: Digest,
    /// Payment time.
    pub paid_at: SimTime,
    /// Expiry time.
    pub valid_until: SimTime,
}

impl SubRow {
    /// Reconstructs the ABI record from the key's WebID.
    pub fn into_record(self, webid: String) -> Subscription {
        Subscription {
            webid,
            addr: self.addr,
            certificate: self.certificate,
            paid_at: self.paid_at,
            valid_until: self.valid_until,
        }
    }

    /// Whether the certificate is valid at `now` (mirrors
    /// [`Subscription::valid_at`]).
    pub fn valid_at(&self, now: SimTime) -> bool {
        now < self.valid_until
    }
}

impl Encode for SubRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.addr.encode(buf);
        self.certificate.encode(buf);
        self.paid_at.as_nanos().encode(buf);
        self.valid_until.as_nanos().encode(buf);
    }
}

impl Decode for SubRow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SubRow {
            addr: Address::decode(r)?,
            certificate: Digest::decode(r)?,
            paid_at: SimTime::from_nanos(u64::decode(r)?),
            valid_until: SimTime::from_nanos(u64::decode(r)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::{decode_from_slice, encode_to_vec};
    use duc_policy::UsagePolicy;

    fn envelope() -> PolicyEnvelope {
        PolicyEnvelope::plain(&UsagePolicy::default_for("urn:res", "urn:owner"))
    }

    #[test]
    fn rows_roundtrip_and_rebuild_records() {
        let env = envelope();
        let pod = PodRow {
            owner_addr: Address::from_seed(b"alice"),
            web_ref: "https://alice.pod/".into(),
            policy: env.digest(),
            registered_at: SimTime::from_secs(4),
        };
        let back: PodRow = decode_from_slice(&encode_to_vec(&pod)).unwrap();
        assert_eq!(back, pod);
        let rec = back.into_record("https://alice.id/me".into(), env.clone());
        assert_eq!(rec.owner_webid, "https://alice.id/me");
        assert_eq!(rec.default_policy, env);

        let row = ResourceRow {
            location: ResourceRow::encode_location("urn:res", "urn:res".into()),
            owner_webid: "https://alice.id/me".into(),
            owner_addr: Address::from_seed(b"alice"),
            metadata: vec![("domain".into(), "health".into())],
            policy: env.digest(),
            policy_version: 3,
            registered_at: SimTime::from_secs(5),
        };
        assert_eq!(row.location, None, "same-as-IRI location collapses");
        let back: ResourceRow = decode_from_slice(&encode_to_vec(&row)).unwrap();
        let rec = back.into_record("urn:res".into(), env.clone());
        assert_eq!(rec.location, "urn:res", "None expands back to the IRI");
        assert_eq!(rec.policy_hash, env.digest());
        assert_eq!(rec.policy_version, 3);

        let distinct = ResourceRow::encode_location("urn:res", "https://a.pod/r".into());
        assert_eq!(distinct.as_deref(), Some("https://a.pod/r"));

        let sub = SubRow {
            addr: Address::from_seed(b"carol"),
            certificate: env.digest(),
            paid_at: SimTime::from_secs(1),
            valid_until: SimTime::from_secs(100),
        };
        let back: SubRow = decode_from_slice(&encode_to_vec(&sub)).unwrap();
        assert!(back.valid_at(SimTime::from_secs(99)));
        assert!(!back.valid_at(SimTime::from_secs(100)));
        assert_eq!(back.into_record("urn:carol".into()).webid, "urn:carol");
    }

    #[test]
    fn compact_rows_are_smaller_than_abi_records() {
        let env = envelope();
        let row = PodRow {
            owner_addr: Address::from_seed(b"alice"),
            web_ref: "https://alice.pod/".into(),
            policy: env.digest(),
            registered_at: SimTime::from_secs(4),
        };
        let record = row
            .clone()
            .into_record("https://alice.id/me".into(), env.clone());
        let row_len = encode_to_vec(&row).len();
        let rec_len = encode_to_vec(&record).len();
        assert!(
            row_len + 32 < rec_len,
            "pod row ({row_len}B) should undercut the ABI record ({rec_len}B) \
             even counting the 32-byte digest twice"
        );
    }

    #[test]
    fn pol_key_is_prefix_plus_digest() {
        let d = envelope().digest();
        let k = pol_key(&d);
        assert!(k.starts_with(b"pol/"));
        assert_eq!(&k[4..], d.as_bytes());
    }
}
