//! The DistExchange contract implementation.
//!
//! Storage layout (all keys ASCII-prefixed, `\0`-separated composites;
//! rows are the compact encodings of [`crate::rows`] — identity strings
//! live in the key, policies in the content-addressed `pol/` table):
//!
//! ```text
//! cfg/*                      market configuration (set once by `init`)
//! pol/{digest}               → PolicyEnvelope (content-addressed, shared)
//! pod/{owner_webid}          → PodRow
//! res/{resource}             → ResourceRow
//! copy/{resource}\0{device}  → CopyRow
//! roundctr/{resource}        → u64
//! round/{resource}\0{round}  → MonitoringRound
//! sub/{webid}                → SubRow
//! cert/{digest}              → () existence marker
//! ```
//!
//! View methods (`get_pod`, `lookup_resource`, `get_subscription`,
//! `list_copies`) reconstruct the full ABI records of [`crate::abi`] from
//! key + row + pol table, so callers see the exact same wire format as
//! before the compaction. Hot mutation paths (`update_policy`,
//! `start_monitoring`, `register_copy`) never materialize a policy
//! envelope from storage.

use std::sync::Mutex;

use duc_blockchain::{Address, CallCtx, Contract, ContractError};
use duc_codec::{decode_from_slice, encode_to_vec};
use duc_crypto::{hash_parts, Digest};
use duc_intern::{Interner, SymMap};
use duc_sim::SimDuration;

use crate::abi::{
    CopyRecord, EvidenceReaffirmation, EvidenceSubmission, MonitoringRound, PodRecord,
    PolicyEnvelope, ResourceRecord, Subscription,
};
use crate::rows::{pol_key, CopyRow, PodRow, ResourceRow, SubRow};
use crate::topics;

/// The conventional deployment id of the DE App.
pub const DEX_CONTRACT_ID: &str = "dist-exchange";

/// The DistExchange application contract.
///
/// The contract logic itself is stateless; `keys` is a purely off-chain
/// memo of composed storage keys (interned identity → formatted key
/// bytes), so repeat calls for the same pod/resource/webid skip the
/// `format!` machinery. The wire format — storage keys, events, gas — is
/// byte-identical with or without the cache. A `Mutex` (not `RefCell`)
/// because the parallel executor dispatches calls from a thread pool.
#[derive(Debug, Default)]
pub struct DistExchange {
    keys: Mutex<KeyCache>,
}

/// Composed-storage-key memo: one symbol per identity string, one cached
/// key byte-vector per `(table, identity)` pair.
#[derive(Debug, Default)]
struct KeyCache {
    ids: Interner,
    pod: SymMap<Vec<u8>>,
    res: SymMap<Vec<u8>>,
    sub: SymMap<Vec<u8>>,
    round_counter: SymMap<Vec<u8>>,
    copy_prefix: SymMap<Vec<u8>>,
    round_prefix: SymMap<Vec<u8>>,
}

macro_rules! cached_key {
    ($self:ident, $table:ident, $name:expr, $build:expr) => {{
        let sym = $self.ids.intern($name);
        if $self.$table.get(sym).is_none() {
            $self.$table.insert(sym, $build);
        }
        $self.$table.get(sym).expect("just inserted").as_slice()
    }};
}

impl KeyCache {
    fn pod(&mut self, owner_webid: &str) -> &[u8] {
        cached_key!(
            self,
            pod,
            owner_webid,
            format!("pod/{owner_webid}").into_bytes()
        )
    }

    fn res(&mut self, resource: &str) -> &[u8] {
        cached_key!(self, res, resource, format!("res/{resource}").into_bytes())
    }

    fn sub(&mut self, webid: &str) -> &[u8] {
        cached_key!(self, sub, webid, format!("sub/{webid}").into_bytes())
    }

    fn round_counter(&mut self, resource: &str) -> &[u8] {
        cached_key!(
            self,
            round_counter,
            resource,
            format!("roundctr/{resource}").into_bytes()
        )
    }

    /// `copy/{resource}\0` — the per-resource scan prefix.
    fn copy_prefix(&mut self, resource: &str) -> &[u8] {
        cached_key!(self, copy_prefix, resource, {
            let mut k = format!("copy/{resource}").into_bytes();
            k.push(0);
            k
        })
    }

    fn copy(&mut self, resource: &str, device: &str) -> Vec<u8> {
        let mut k = self.copy_prefix(resource).to_vec();
        k.extend_from_slice(device.as_bytes());
        k
    }

    fn round(&mut self, resource: &str, round: u64) -> Vec<u8> {
        let prefix = cached_key!(self, round_prefix, resource, {
            let mut k = format!("round/{resource}").into_bytes();
            k.push(0);
            k
        });
        let mut k = prefix.to_vec();
        k.extend_from_slice(format!("{round:020}").as_bytes());
        k
    }
}

fn cert_key(cert: &Digest) -> Vec<u8> {
    let mut k = b"cert/".to_vec();
    k.extend_from_slice(cert.as_bytes());
    k
}

fn revert(msg: impl Into<String>) -> ContractError {
    ContractError::Reverted(msg.into())
}

/// Writes the content-addressed pol-table row for `policy` and returns its
/// digest. Unconditional and idempotent: the key is the digest of the
/// exact bytes written, so every writer of a given envelope stores
/// identical bytes — the access layer declares this slot as a *delta* —
/// and skipping the existence probe keeps gas identical on every path,
/// serial or parallel.
fn put_policy(ctx: &mut CallCtx<'_>, policy: &PolicyEnvelope) -> Result<Digest, ContractError> {
    let digest = policy.digest();
    ctx.set(pol_key(&digest), policy)?;
    Ok(digest)
}

/// Fetches an envelope from the pol table (view-method reconstruction).
fn get_policy(ctx: &mut CallCtx<'_>, digest: &Digest) -> Result<PolicyEnvelope, ContractError> {
    ctx.get(&pol_key(digest))?
        .ok_or_else(|| revert("missing policy envelope"))
}

impl DistExchange {
    fn init(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (fee, validity_nanos, treasury): (u128, u64, Address) = decode_from_slice(args)?;
        if ctx.get_raw(b"cfg/fee")?.is_some() {
            return Err(revert("already initialized"));
        }
        ctx.set(b"cfg/fee".to_vec(), &fee)?;
        ctx.set(b"cfg/validity".to_vec(), &validity_nanos)?;
        ctx.set(b"cfg/treasury".to_vec(), &treasury)?;
        Ok(Vec::new())
    }

    fn register_pod(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (owner_webid, web_ref, default_policy): (String, String, PolicyEnvelope) =
            decode_from_slice(args)?;
        let key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .pod(&owner_webid)
            .to_vec();
        if ctx.get_raw(&key)?.is_some() {
            return Err(revert(format!("pod already registered for {owner_webid}")));
        }
        let policy = put_policy(ctx, &default_policy)?;
        let row = PodRow {
            owner_addr: ctx.caller,
            web_ref,
            policy,
            registered_at: ctx.block_time,
        };
        ctx.set(key, &row)?;
        ctx.emit(topics::POD_REGISTERED, encode_to_vec(&(owner_webid,)))?;
        Ok(Vec::new())
    }

    fn get_pod(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (owner_webid,): (String,) = decode_from_slice(args)?;
        let row: Option<PodRow> = ctx.get(
            self.keys
                .lock()
                .expect("key cache poisoned")
                .pod(&owner_webid),
        )?;
        let record: Option<PodRecord> = match row {
            None => None,
            Some(row) => {
                let policy = get_policy(ctx, &row.policy)?;
                Some(row.into_record(owner_webid, policy))
            }
        };
        Ok(encode_to_vec(&record))
    }

    fn register_resource(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (resource, location, owner_webid, metadata, policy): (
            String,
            String,
            String,
            Vec<(String, String)>,
            PolicyEnvelope,
        ) = decode_from_slice(args)?;
        let pod: PodRow = ctx
            .get(
                self.keys
                    .lock()
                    .expect("key cache poisoned")
                    .pod(&owner_webid),
            )?
            .ok_or_else(|| revert(format!("no pod registered for {owner_webid}")))?;
        if pod.owner_addr != ctx.caller {
            return Err(revert("caller does not own the pod"));
        }
        let key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .res(&resource)
            .to_vec();
        if ctx.get_raw(&key)?.is_some() {
            return Err(revert(format!("resource already registered: {resource}")));
        }
        let digest = put_policy(ctx, &policy)?;
        let row = ResourceRow {
            location: ResourceRow::encode_location(&resource, location),
            owner_webid,
            owner_addr: ctx.caller,
            metadata,
            policy: digest,
            policy_version: 1,
            registered_at: ctx.block_time,
        };
        ctx.set(key, &row)?;
        ctx.emit(topics::RESOURCE_REGISTERED, encode_to_vec(&(resource,)))?;
        Ok(Vec::new())
    }

    fn lookup_resource(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (resource,): (String,) = decode_from_slice(args)?;
        let row: Option<ResourceRow> =
            ctx.get(self.keys.lock().expect("key cache poisoned").res(&resource))?;
        let record: Option<ResourceRecord> = match row {
            None => None,
            Some(row) => {
                let policy = get_policy(ctx, &row.policy)?;
                Some(row.into_record(resource, policy))
            }
        };
        Ok(encode_to_vec(&record))
    }

    fn list_resources(&self, ctx: &mut CallCtx<'_>) -> Result<Vec<u8>, ContractError> {
        let keys = ctx.keys_with_prefix(b"res/")?;
        let names: Vec<String> = keys
            .into_iter()
            .filter_map(|k| String::from_utf8(k[4..].to_vec()).ok())
            .collect();
        Ok(encode_to_vec(&names))
    }

    fn update_policy(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (resource, policy, new_version): (String, PolicyEnvelope, u64) =
            decode_from_slice(args)?;
        let key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .res(&resource)
            .to_vec();
        // The hot path: only the compact row round-trips storage — the
        // superseded envelope is never read, the new one only written.
        let mut row: ResourceRow = ctx
            .get(&key)?
            .ok_or_else(|| revert(format!("unknown resource {resource}")))?;
        if row.owner_addr != ctx.caller {
            return Err(revert("only the owner may update the policy"));
        }
        if new_version != row.policy_version + 1 {
            return Err(revert(format!(
                "version must increment: current {}, got {new_version}",
                row.policy_version
            )));
        }
        let policy_hash = put_policy(ctx, &policy)?;
        row.policy = policy_hash;
        row.policy_version = new_version;
        ctx.set(key, &row)?;
        // The event anchors the new policy *hash* alongside the envelope:
        // devices verify the pushed bytes against it before recompiling
        // their local program and re-scheduling obligations.
        ctx.emit(
            topics::POLICY_UPDATED,
            encode_to_vec(&(resource, new_version, policy, policy_hash)),
        )?;
        Ok(Vec::new())
    }

    fn register_copy(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (resource, device, holder_webid, attestation_key): (
            String,
            String,
            String,
            duc_crypto::PublicKey,
        ) = decode_from_slice(args)?;
        if ctx
            .get_raw(self.keys.lock().expect("key cache poisoned").res(&resource))?
            .is_none()
        {
            return Err(revert(format!("unknown resource {resource}")));
        }
        let key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .copy(&resource, &device);
        let row = CopyRow {
            holder_webid,
            attestation_key,
            registered_at: ctx.block_time,
        };
        ctx.set(key, &row)?;
        ctx.emit(topics::COPY_REGISTERED, encode_to_vec(&(resource, device)))?;
        Ok(Vec::new())
    }

    /// Removes a copy record, but only when it predates `as_of` — an
    /// in-flight unregister (submitted when a TEE deleted its copy) must
    /// not clobber a *newer* registration from a re-access that raced it;
    /// the guarded case returns `(false,)` without touching the record.
    fn unregister_copy(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (resource, device, as_of_nanos): (String, String, u64) = decode_from_slice(args)?;
        let key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .copy(&resource, &device);
        let Some(row) = ctx.get::<CopyRow>(&key)? else {
            return Err(revert("no such copy"));
        };
        if row.registered_at.as_nanos() >= as_of_nanos {
            return Ok(encode_to_vec(&(false,)));
        }
        ctx.remove_raw(&key)?;
        ctx.emit(topics::COPY_REMOVED, encode_to_vec(&(resource, device)))?;
        Ok(encode_to_vec(&(true,)))
    }

    fn list_copies(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (resource,): (String,) = decode_from_slice(args)?;
        let copies = self.copies_of(ctx, &resource)?;
        Ok(encode_to_vec(&copies))
    }

    fn copies_of(
        &self,
        ctx: &mut CallCtx<'_>,
        resource: &str,
    ) -> Result<Vec<CopyRecord>, ContractError> {
        let prefix = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .copy_prefix(resource)
            .to_vec();
        let keys = ctx.keys_with_prefix(&prefix)?;
        let mut copies = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(row) = ctx.get::<CopyRow>(&k)? {
                let device = String::from_utf8(k[prefix.len()..].to_vec())
                    .map_err(|_| revert("non-utf8 device in copy key"))?;
                copies.push(row.into_record(device));
            }
        }
        Ok(copies)
    }

    /// The devices currently holding copies of `resource` — read off the
    /// key suffixes alone, with no row fetches (the compact layout keeps
    /// the device name in the key).
    fn copy_devices(
        &self,
        ctx: &mut CallCtx<'_>,
        resource: &str,
    ) -> Result<Vec<String>, ContractError> {
        let prefix = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .copy_prefix(resource)
            .to_vec();
        let keys = ctx.keys_with_prefix(&prefix)?;
        keys.into_iter()
            .map(|k| {
                String::from_utf8(k[prefix.len()..].to_vec())
                    .map_err(|_| revert("non-utf8 device in copy key"))
            })
            .collect()
    }

    fn start_monitoring(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (resource,): (String,) = decode_from_slice(args)?;
        let row: ResourceRow = ctx
            .get(self.keys.lock().expect("key cache poisoned").res(&resource))?
            .ok_or_else(|| revert(format!("unknown resource {resource}")))?;
        if row.owner_addr != ctx.caller {
            return Err(revert("only the owner may start monitoring"));
        }
        let counter_key = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .round_counter(&resource)
            .to_vec();
        let round: u64 = ctx.get(&counter_key)?.unwrap_or(0) + 1;
        ctx.set(counter_key, &round)?;
        let expected = self.copy_devices(ctx, &resource)?;
        let round_record = MonitoringRound {
            round,
            resource: resource.clone(),
            requested_by: ctx.caller,
            started_at: ctx.block_time,
            expected_devices: expected.clone(),
            evidence: Vec::new(),
            reaffirmed: Vec::new(),
            closed: expected.is_empty(),
        };
        ctx.set(
            self.keys
                .lock()
                .expect("key cache poisoned")
                .round(&resource, round),
            &round_record,
        )?;
        ctx.emit(
            topics::MONITORING_REQUESTED,
            encode_to_vec(&(resource.clone(), round, expected)),
        )?;
        if round_record.closed {
            ctx.emit(
                topics::ROUND_CLOSED,
                encode_to_vec(&(resource, round, 0u64, Vec::<String>::new())),
            )?;
        }
        Ok(encode_to_vec(&(round,)))
    }

    /// Closes `round` and emits `RoundClosed` when every expected device
    /// has answered (shared by full submissions and reaffirmations).
    fn close_if_complete(
        &self,
        ctx: &mut CallCtx<'_>,
        round: &mut MonitoringRound,
    ) -> Result<(), ContractError> {
        if !round.complete() {
            return Ok(());
        }
        round.closed = true;
        let violators: Vec<String> = round.violators().iter().map(|e| e.device.clone()).collect();
        let compliant_count = round.compliant_count();
        ctx.emit(
            topics::ROUND_CLOSED,
            encode_to_vec(&(
                round.resource.clone(),
                round.round,
                compliant_count,
                violators,
            )),
        )?;
        Ok(())
    }

    fn record_evidence(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let submission: EvidenceSubmission = decode_from_slice(args)?;
        let rkey = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .round(&submission.resource, submission.round);
        let mut round: MonitoringRound = ctx
            .get(&rkey)?
            .ok_or_else(|| revert("unknown monitoring round"))?;
        if round.closed {
            return Err(revert("round already closed"));
        }
        if !round.expected_devices.contains(&submission.device) {
            return Err(revert(format!(
                "device {} not expected in this round",
                submission.device
            )));
        }
        if round.evidence.iter().any(|e| e.device == submission.device)
            || round
                .reaffirmed
                .iter()
                .any(|(d, _)| *d == submission.device)
        {
            return Err(revert("duplicate evidence for device"));
        }
        // Verify the enclave signature against the registered attestation
        // key: forged evidence cannot enter the ledger.
        let copy: CopyRow = ctx
            .get(
                &self
                    .keys
                    .lock()
                    .expect("key cache poisoned")
                    .copy(&submission.resource, &submission.device),
            )?
            .ok_or_else(|| revert("copy no longer registered"))?;
        if copy
            .attestation_key
            .verify(&submission.signing_bytes(), &submission.signature)
            .is_err()
        {
            return Err(revert("evidence signature does not verify"));
        }
        ctx.emit(
            topics::EVIDENCE_RECORDED,
            encode_to_vec(&(
                submission.resource.clone(),
                submission.round,
                submission.device.clone(),
                submission.compliant,
            )),
        )?;
        round.evidence.push(submission);
        self.close_if_complete(ctx, &mut round)?;
        ctx.set(rkey, &round)?;
        Ok(Vec::new())
    }

    /// Copies a device's evidence from an earlier round into `round`,
    /// after verifying the enclave's signed attestation that the usage log
    /// is unchanged — the cheap incremental-monitoring path for copies
    /// whose log did not advance since they were last audited.
    fn reaffirm_evidence(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let reaff: EvidenceReaffirmation = decode_from_slice(args)?;
        let rkey = self
            .keys
            .lock()
            .expect("key cache poisoned")
            .round(&reaff.resource, reaff.round);
        let mut round: MonitoringRound = ctx
            .get(&rkey)?
            .ok_or_else(|| revert("unknown monitoring round"))?;
        if round.closed {
            return Err(revert("round already closed"));
        }
        if !round.expected_devices.contains(&reaff.device) {
            return Err(revert(format!(
                "device {} not expected in this round",
                reaff.device
            )));
        }
        if round.evidence.iter().any(|e| e.device == reaff.device)
            || round.reaffirmed.iter().any(|(d, _)| *d == reaff.device)
        {
            return Err(revert("duplicate evidence for device"));
        }
        let copy: CopyRow = ctx
            .get(
                &self
                    .keys
                    .lock()
                    .expect("key cache poisoned")
                    .copy(&reaff.resource, &reaff.device),
            )?
            .ok_or_else(|| revert("copy no longer registered"))?;
        if copy
            .attestation_key
            .verify(&reaff.signing_bytes(), &reaff.signature)
            .is_err()
        {
            return Err(revert("reaffirmation signature does not verify"));
        }
        // The prior evidence must exist, be compliant, and carry the very
        // same digest — anything else requires a full resubmission.
        let prev: MonitoringRound = ctx
            .get(
                &self
                    .keys
                    .lock()
                    .expect("key cache poisoned")
                    .round(&reaff.resource, reaff.prev_round),
            )?
            .ok_or_else(|| revert("unknown prior round"))?;
        // `prev_round` must hold *full* evidence (devices always point
        // their reaffirmations at the round of their last full
        // submission), so the digest is checked against signed bytes.
        let prior_ok = prev.evidence.iter().any(|e| {
            e.device == reaff.device && e.compliant && e.evidence_digest == reaff.evidence_digest
        });
        if !prior_ok {
            return Err(revert("no matching compliant prior evidence to reaffirm"));
        }
        ctx.emit(
            topics::EVIDENCE_RECORDED,
            encode_to_vec(&(
                reaff.resource.clone(),
                reaff.round,
                reaff.device.clone(),
                true,
            )),
        )?;
        round.reaffirmed.push((reaff.device, reaff.prev_round));
        self.close_if_complete(ctx, &mut round)?;
        ctx.set(rkey, &round)?;
        Ok(Vec::new())
    }

    fn get_round(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (resource, round): (String, u64) = decode_from_slice(args)?;
        let record: Option<MonitoringRound> = ctx.get(
            &self
                .keys
                .lock()
                .expect("key cache poisoned")
                .round(&resource, round),
        )?;
        Ok(encode_to_vec(&record))
    }

    fn subscribe(&self, ctx: &mut CallCtx<'_>, args: &[u8]) -> Result<Vec<u8>, ContractError> {
        let (webid,): (String,) = decode_from_slice(args)?;
        let fee: u128 = ctx
            .get(b"cfg/fee")?
            .ok_or_else(|| revert("market not initialized"))?;
        let validity: u64 = ctx.get(b"cfg/validity")?.unwrap_or(0);
        let treasury: Address = ctx
            .get(b"cfg/treasury")?
            .ok_or_else(|| revert("market not initialized"))?;
        ctx.transfer_from_caller(treasury, fee)?;
        let certificate = hash_parts(&[
            b"duc/cert",
            webid.as_bytes(),
            &ctx.block_time.as_nanos().to_le_bytes(),
            ctx.caller.0.as_bytes(),
        ]);
        let sub = SubRow {
            addr: ctx.caller,
            certificate,
            paid_at: ctx.block_time,
            valid_until: ctx.block_time + SimDuration::from_nanos(validity),
        };
        ctx.set(
            self.keys
                .lock()
                .expect("key cache poisoned")
                .sub(&webid)
                .to_vec(),
            &sub,
        )?;
        // Existence marker only: ownership of the certificate is implied —
        // the sole writer of cert/{c} is the subscribe that minted c, and
        // c commits to the subscriber's WebID (hash preimage above), so
        // sub/{webid}.certificate == c already proves c was issued to
        // webid. Storing the WebID again would duplicate the key material.
        ctx.set_raw(cert_key(&certificate), Vec::new())?;
        ctx.emit(
            topics::CERTIFICATE_ISSUED,
            encode_to_vec(&(webid, certificate)),
        )?;
        Ok(encode_to_vec(&(certificate,)))
    }

    fn verify_certificate(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (certificate, webid): (Digest, String) = decode_from_slice(args)?;
        let valid = if ctx.get_raw(&cert_key(&certificate))?.is_some() {
            let sub: Option<SubRow> =
                ctx.get(self.keys.lock().expect("key cache poisoned").sub(&webid))?;
            sub.map(|s| s.certificate == certificate && s.valid_at(ctx.block_time))
                .unwrap_or(false)
        } else {
            false
        };
        Ok(encode_to_vec(&(valid,)))
    }

    fn get_subscription(
        &self,
        ctx: &mut CallCtx<'_>,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        let (webid,): (String,) = decode_from_slice(args)?;
        let sub: Option<Subscription> = ctx
            .get::<SubRow>(self.keys.lock().expect("key cache poisoned").sub(&webid))?
            .map(|row| row.into_record(webid));
        Ok(encode_to_vec(&sub))
    }
}

impl Contract for DistExchange {
    fn call(
        &self,
        ctx: &mut CallCtx<'_>,
        method: &str,
        args: &[u8],
    ) -> Result<Vec<u8>, ContractError> {
        match method {
            "init" => self.init(ctx, args),
            "register_pod" => self.register_pod(ctx, args),
            "get_pod" => self.get_pod(ctx, args),
            "register_resource" => self.register_resource(ctx, args),
            "lookup_resource" => self.lookup_resource(ctx, args),
            "list_resources" => self.list_resources(ctx),
            "update_policy" => self.update_policy(ctx, args),
            "register_copy" => self.register_copy(ctx, args),
            "unregister_copy" => self.unregister_copy(ctx, args),
            "list_copies" => self.list_copies(ctx, args),
            "start_monitoring" => self.start_monitoring(ctx, args),
            "record_evidence" => self.record_evidence(ctx, args),
            "reaffirm_evidence" => self.reaffirm_evidence(ctx, args),
            "get_round" => self.get_round(ctx, args),
            "subscribe" => self.subscribe(ctx, args),
            "verify_certificate" => self.verify_certificate(ctx, args),
            "get_subscription" => self.get_subscription(ctx, args),
            other => Err(ContractError::UnknownMethod(other.to_string())),
        }
    }
}
