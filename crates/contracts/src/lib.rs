//! # duc-contracts — the DistExchange application (DE App)
//!
//! The on-chain half of the architecture (paper §III-B): smart contracts
//! that (i) record where pods and resources live, (ii) publish the usage
//! policies that govern them, and (iii) monitor compliance. Deployed on the
//! [`duc_blockchain`] substrate.
//!
//! Two contracts:
//!
//! * [`DistExchange`] — pod registry, resource index, policy store, copy
//!   tracking and monitoring rounds. Its events (`PolicyUpdated`,
//!   `MonitoringRequested`, …) are what the push-out and pull-in oracles
//!   subscribe to.
//! * (inside the same contract) the **market**: subscription fees paid in
//!   native tokens, payment certificates that pod managers verify before
//!   serving data (paper §II: "a certificate proving she has paid the
//!   market fee").
//!
//! All argument/return types live in [`abi`] and are encoded with
//! [`duc_codec`]; [`client`] offers typed wrappers so callers never touch
//! raw bytes. [`access`] declares the state footprint of each call so the
//! parallel block executor can schedule non-conflicting calls concurrently.

pub mod abi;
pub mod access;
pub mod client;
pub mod dist_exchange;
pub mod routing;
pub mod rows;

pub use abi::{
    CopyRecord, EvidenceReaffirmation, EvidenceSubmission, MonitoringRound, PodRecord,
    PolicyEnvelope, ResourceRecord, Subscription,
};
pub use access::{dex_access, dex_access_fn};
pub use client::DistExchangeClient;
pub use dist_exchange::{DistExchange, DEX_CONTRACT_ID};
pub use rows::{pol_key, CopyRow, PodRow, ResourceRow, SubRow};

/// Event topics emitted by the DE App (oracle subscriptions filter on
/// these).
pub mod topics {
    /// A pod was registered.
    pub const POD_REGISTERED: &str = "PodRegistered";
    /// A resource was added to the index.
    pub const RESOURCE_REGISTERED: &str = "ResourceRegistered";
    /// A usage policy was replaced (push-out oracles fan this out).
    pub const POLICY_UPDATED: &str = "PolicyUpdated";
    /// A device registered a copy of a resource.
    pub const COPY_REGISTERED: &str = "CopyRegistered";
    /// A device dropped its copy.
    pub const COPY_REMOVED: &str = "CopyRemoved";
    /// A monitoring round was opened (pull-in oracles react).
    pub const MONITORING_REQUESTED: &str = "MonitoringRequested";
    /// A device's evidence was recorded.
    pub const EVIDENCE_RECORDED: &str = "EvidenceRecorded";
    /// A monitoring round closed with its verdict.
    pub const ROUND_CLOSED: &str = "RoundClosed";
    /// A market subscription certificate was issued.
    pub const CERTIFICATE_ISSUED: &str = "CertificateIssued";
}
