//! Shard routing for the DistExchange contract.
//!
//! The [`duc_blockchain::ShardedLedger`] is ABI-agnostic; this module
//! supplies the routing function that understands the DE App's argument
//! encodings and extracts the logical key each call is anchored to:
//!
//! | methods | route key |
//! |---|---|
//! | `register_pod`, `get_pod` | owner WebID |
//! | `register_resource` | owner WebID (pods and their resources co-locate) |
//! | `lookup_resource`, `update_policy`, `register_copy`, `unregister_copy`, `list_copies`, `start_monitoring`, `get_round` | resource IRI (alias-resolved to the owner's shard) |
//! | `record_evidence` | the submission's resource IRI |
//! | `subscribe`, `get_subscription`, `verify_certificate` | consumer WebID |
//! | `init` | pinned (deployment setup runs once per shard) |
//! | `list_resources` | pinned (the client fans the view out per shard) |
//!
//! Resource IRIs live under the owner's pod root; the ledger's alias table
//! (`register_route_alias(pod_root, owner_webid)`, fed by
//! `World::add_owner`) folds them onto the owner's shard, so everything an
//! owner anchors — pod record, resource index entries, copy records,
//! monitoring rounds — shares one shard and the contract's cross-record
//! checks (`register_resource` requires the pod, `record_evidence` requires
//! the copy) never cross a shard boundary.

use duc_blockchain::{ContractId, RouteKey, RouterFn};
use duc_codec::{Decode, Reader};

use crate::abi::EvidenceSubmission;

/// Decodes a prefix of `args` (routing only needs the leading fields; the
/// contract itself decodes — and rejects — the full tuple).
fn decode_prefix<T: Decode>(args: &[u8]) -> Option<T> {
    let mut r = Reader::new(args);
    T::decode(&mut r).ok()
}

/// Extracts the [`RouteKey`] of one DE App call. Unknown methods and
/// undecodable arguments pin to shard 0 (the chain itself will produce the
/// authoritative error).
pub fn dex_route(method: &str, args: &[u8]) -> RouteKey {
    match method {
        "register_pod" | "get_pod" | "lookup_resource" | "update_policy" | "register_copy"
        | "unregister_copy" | "list_copies" | "start_monitoring" | "get_round" | "subscribe"
        | "get_subscription" => decode_prefix::<String>(args).map(RouteKey::Key),
        "register_resource" => decode_prefix::<(String, String, String)>(args)
            .map(|(_, _, owner_webid)| RouteKey::Key(owner_webid)),
        "record_evidence" => {
            decode_prefix::<EvidenceSubmission>(args).map(|s| RouteKey::Key(s.resource))
        }
        "verify_certificate" => decode_prefix::<(duc_crypto::Digest, String)>(args)
            .map(|(_, webid)| RouteKey::Key(webid)),
        _ => None,
    }
    .unwrap_or(RouteKey::Shard(0))
}

/// The DE App router, ready to install on a
/// [`duc_blockchain::ShardedLedger`]. Calls against other contracts pin to
/// shard 0.
pub fn dex_router() -> RouterFn {
    let dex = ContractId::new(crate::dist_exchange::DEX_CONTRACT_ID);
    Box::new(move |contract, method, args| {
        if *contract == dex {
            dex_route(method, args)
        } else {
            RouteKey::Shard(0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_codec::encode_to_vec;

    #[test]
    fn resource_scoped_calls_route_by_resource() {
        let args = encode_to_vec(&("https://o.pod/data/x".to_string(),));
        assert_eq!(
            dex_route("lookup_resource", &args),
            RouteKey::Key("https://o.pod/data/x".into())
        );
        assert_eq!(
            dex_route("start_monitoring", &args),
            RouteKey::Key("https://o.pod/data/x".into())
        );
    }

    #[test]
    fn register_resource_routes_by_owner_webid() {
        let args = encode_to_vec(&(
            "https://o.pod/data/x".to_string(),
            "https://o.pod/data/x".to_string(),
            "https://o.id/me".to_string(),
        ));
        assert_eq!(
            dex_route("register_resource", &args),
            RouteKey::Key("https://o.id/me".into())
        );
    }

    #[test]
    fn market_calls_route_by_consumer_webid() {
        let args = encode_to_vec(&("https://c.id/me".to_string(),));
        assert_eq!(
            dex_route("subscribe", &args),
            RouteKey::Key("https://c.id/me".into())
        );
        let args = encode_to_vec(&(duc_crypto::sha256(b"cert"), "https://c.id/me".to_string()));
        assert_eq!(
            dex_route("verify_certificate", &args),
            RouteKey::Key("https://c.id/me".into())
        );
    }

    #[test]
    fn deployment_and_unknown_calls_pin_to_shard_zero() {
        assert_eq!(dex_route("init", &[]), RouteKey::Shard(0));
        assert_eq!(dex_route("list_resources", &[]), RouteKey::Shard(0));
        assert_eq!(dex_route("no_such_method", b"junk"), RouteKey::Shard(0));
    }
}
