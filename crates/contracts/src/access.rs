//! Access-set derivation for the DistExchange contract.
//!
//! The parallel executor (`duc_blockchain::exec`) partitions a block's
//! transactions on the state keys each call may touch. This module is the
//! DE App's side of that contract: it maps a decoded call to the storage
//! slots of the layout documented in [`crate::dist_exchange`] —
//!
//! ```text
//! pod/{owner_webid}           one slot per owner
//! res/{resource}              one slot per resource
//! pol/{digest}                one slot per policy envelope (content-addressed)
//! copy/{resource}\0{device}   one space per resource, one slot per device
//! roundctr/{resource}         one slot per resource
//! round/{resource}\0{round}   one space per resource, one slot per round
//! sub/{webid}                 one slot per consumer
//! cert/{digest}               one slot per certificate
//! cfg/*                       market configuration
//! ```
//!
//! `pol/` rows are content-addressed (key = digest of the value), so the
//! registration paths declare them as *deltas*: two writers of the same
//! envelope store identical bytes in either order, and distinct envelopes
//! land in distinct slots — registrations keep commuting. View methods
//! that materialize an envelope cannot know its digest before reading the
//! row that names it, so they claim the whole `pol/` table as a read,
//! which serializes them against same-block policy registrations only.
//!
//! — so calls anchored to different owners, resources, devices or
//! consumers run concurrently, while calls that could collide serialize.
//! Every set must *cover* the method's touched keys (reads included — a
//! revert path still observed them); it may over-approximate, never
//! under-approximate. Anything undeclarable (unknown method, undecodable
//! arguments, an uninitialized market) is [`AccessSet::Exclusive`], which
//! conflicts with everything and therefore executes exactly where the
//! serial executor would have run it.

use duc_blockchain::exec::{fnv1a, fnv1a_parts};
use duc_blockchain::{AccessFn, AccessKey, AccessParams, AccessSet, Address, ContractId};
use duc_codec::{decode_from_slice, Decode, Reader};
use duc_crypto::{hash_parts, Digest};

use crate::abi::{EvidenceReaffirmation, EvidenceSubmission, PolicyEnvelope};
use crate::dist_exchange::DEX_CONTRACT_ID;

/// Decodes a prefix of `args` (derivation only needs the leading fields;
/// the contract itself decodes — and rejects — the full tuple).
fn decode_prefix<T: Decode>(args: &[u8]) -> Option<T> {
    let mut r = Reader::new(args);
    T::decode(&mut r).ok()
}

/// A slot in one of the flat `{prefix}{identity}` tables.
fn slot(prefix: &[u8], identity: &str) -> AccessKey {
    AccessKey::Slot {
        space: fnv1a(prefix),
        key: fnv1a(identity.as_bytes()),
    }
}

/// The per-resource copy space (`copy/{resource}\0…`).
fn copy_space(resource: &str) -> u64 {
    fnv1a_parts(&[b"copy/", resource.as_bytes()])
}

fn copy_slot(resource: &str, device: &str) -> AccessKey {
    AccessKey::Slot {
        space: copy_space(resource),
        key: fnv1a(device.as_bytes()),
    }
}

/// The per-resource monitoring-round space (`round/{resource}\0…`).
fn round_space(resource: &str) -> u64 {
    fnv1a_parts(&[b"round/", resource.as_bytes()])
}

fn round_slot(resource: &str, round: u64) -> AccessKey {
    AccessKey::Slot {
        space: round_space(resource),
        key: fnv1a(&round.to_le_bytes()),
    }
}

fn cert_slot(certificate: &Digest) -> AccessKey {
    AccessKey::Slot {
        space: fnv1a(b"cert/"),
        key: fnv1a(certificate.as_bytes()),
    }
}

/// One content-addressed policy slot (`pol/{digest}`).
fn pol_slot(digest: &Digest) -> AccessKey {
    AccessKey::Slot {
        space: fnv1a(b"pol/"),
        key: fnv1a(digest.as_bytes()),
    }
}

/// The whole policy table — view methods resolve a digest they only learn
/// mid-call.
fn pol_table() -> AccessKey {
    AccessKey::Table(fnv1a(b"pol/"))
}

fn cfg_slot(name: &str) -> AccessKey {
    slot(b"cfg/", name)
}

/// Derives the access set of one DistExchange call. Covers the storage
/// keys of both the success and the revert paths of every method in
/// [`crate::dist_exchange`]; keep the two in sync when the layout grows.
pub fn dex_access(p: &AccessParams<'_>) -> AccessSet {
    match p.method {
        // Writes the whole cfg table, once per deployment: not worth
        // declaring.
        "init" => AccessSet::Exclusive,
        "register_pod" => match decode_prefix::<(String, String, PolicyEnvelope)>(p.args) {
            Some((owner, _, policy)) => AccessSet::declared()
                .read(slot(b"pod/", &owner))
                .write(slot(b"pod/", &owner))
                .delta(pol_slot(&policy.digest())),
            None => AccessSet::Exclusive,
        },
        "get_pod" => match decode_prefix::<String>(p.args) {
            Some(owner) => AccessSet::declared()
                .read(slot(b"pod/", &owner))
                .read(pol_table()),
            None => AccessSet::Exclusive,
        },
        "register_resource" => {
            type Args = (
                String,
                String,
                String,
                Vec<(String, String)>,
                PolicyEnvelope,
            );
            match decode_prefix::<Args>(p.args) {
                Some((resource, _, owner, _, policy)) => AccessSet::declared()
                    .read(slot(b"pod/", &owner))
                    .read(slot(b"res/", &resource))
                    .write(slot(b"res/", &resource))
                    .delta(pol_slot(&policy.digest())),
                None => AccessSet::Exclusive,
            }
        }
        "lookup_resource" => match decode_prefix::<String>(p.args) {
            Some(resource) => AccessSet::declared()
                .read(slot(b"res/", &resource))
                .read(pol_table()),
            None => AccessSet::Exclusive,
        },
        "list_resources" => AccessSet::declared().read(AccessKey::Table(fnv1a(b"res/"))),
        "update_policy" => match decode_prefix::<(String, PolicyEnvelope)>(p.args) {
            Some((resource, policy)) => AccessSet::declared()
                .read(slot(b"res/", &resource))
                .write(slot(b"res/", &resource))
                .delta(pol_slot(&policy.digest())),
            None => AccessSet::Exclusive,
        },
        "register_copy" => match decode_prefix::<(String, String)>(p.args) {
            Some((resource, device)) => AccessSet::declared()
                .read(slot(b"res/", &resource))
                .write(copy_slot(&resource, &device)),
            None => AccessSet::Exclusive,
        },
        "unregister_copy" => match decode_prefix::<(String, String)>(p.args) {
            Some((resource, device)) => AccessSet::declared()
                .read(copy_slot(&resource, &device))
                .write(copy_slot(&resource, &device)),
            None => AccessSet::Exclusive,
        },
        "list_copies" => match decode_prefix::<String>(p.args) {
            Some(resource) => AccessSet::declared().read(AccessKey::Table(copy_space(&resource))),
            None => AccessSet::Exclusive,
        },
        "start_monitoring" => match decode_prefix::<String>(p.args) {
            // The new round's slot index comes from the counter, which an
            // earlier same-block round could bump: claim the whole round
            // space rather than read the counter at derivation time.
            Some(resource) => AccessSet::declared()
                .read(slot(b"res/", &resource))
                .read(slot(b"roundctr/", &resource))
                .write(slot(b"roundctr/", &resource))
                .read(AccessKey::Table(copy_space(&resource)))
                .write(AccessKey::Table(round_space(&resource))),
            None => AccessSet::Exclusive,
        },
        "record_evidence" => match decode_prefix::<EvidenceSubmission>(p.args) {
            Some(s) => AccessSet::declared()
                .read(round_slot(&s.resource, s.round))
                .write(round_slot(&s.resource, s.round))
                .read(copy_slot(&s.resource, &s.device)),
            None => AccessSet::Exclusive,
        },
        "reaffirm_evidence" => match decode_prefix::<EvidenceReaffirmation>(p.args) {
            Some(r) => AccessSet::declared()
                .read(round_slot(&r.resource, r.round))
                .write(round_slot(&r.resource, r.round))
                .read(copy_slot(&r.resource, &r.device))
                .read(round_slot(&r.resource, r.prev_round)),
            None => AccessSet::Exclusive,
        },
        "get_round" => match decode_prefix::<(String, u64)>(p.args) {
            Some((resource, round)) => AccessSet::declared().read(round_slot(&resource, round)),
            None => AccessSet::Exclusive,
        },
        "subscribe" => match decode_prefix::<String>(p.args) {
            Some(webid) => {
                // The fee lands on the treasury as a commutative credit —
                // but only if the treasury address resolves now, from the
                // same slot the call will re-read (init is Exclusive, so
                // it cannot change mid-block). Unresolvable → the call
                // will revert "market not initialized"; serialize it.
                let treasury: Option<Address> = p
                    .state
                    .storage_get(p.contract, b"cfg/treasury")
                    .and_then(|bytes| decode_from_slice(&bytes).ok());
                let Some(treasury) = treasury else {
                    return AccessSet::Exclusive;
                };
                // The certificate digest is a pure function of fields the
                // derivation already knows (webid, block time, caller).
                let certificate = hash_parts(&[
                    b"duc/cert",
                    webid.as_bytes(),
                    &p.block_time.as_nanos().to_le_bytes(),
                    p.caller.0.as_bytes(),
                ]);
                AccessSet::declared()
                    .read(cfg_slot("fee"))
                    .read(cfg_slot("validity"))
                    .read(cfg_slot("treasury"))
                    .delta(AccessKey::Account(treasury))
                    .write(slot(b"sub/", &webid))
                    .write(cert_slot(&certificate))
            }
            None => AccessSet::Exclusive,
        },
        "verify_certificate" => match decode_prefix::<(Digest, String)>(p.args) {
            Some((certificate, webid)) => AccessSet::declared()
                .read(cert_slot(&certificate))
                .read(slot(b"sub/", &webid)),
            None => AccessSet::Exclusive,
        },
        "get_subscription" => match decode_prefix::<String>(p.args) {
            Some(webid) => AccessSet::declared().read(slot(b"sub/", &webid)),
            None => AccessSet::Exclusive,
        },
        _ => AccessSet::Exclusive,
    }
}

/// The DE App access-derivation function, ready to install on a chain
/// (see `Ledger::install_access_fn`). Calls against other contracts are
/// [`AccessSet::Exclusive`].
pub fn dex_access_fn() -> AccessFn {
    let dex = ContractId::new(DEX_CONTRACT_ID);
    Box::new(move |p: &AccessParams<'_>| {
        if *p.contract == dex {
            dex_access(p)
        } else {
            AccessSet::Exclusive
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duc_blockchain::WorldState;
    use duc_codec::encode_to_vec;
    use duc_sim::SimTime;

    fn params<'a>(
        contract: &'a ContractId,
        method: &'a str,
        args: &'a [u8],
        state: &'a WorldState,
    ) -> AccessParams<'a> {
        AccessParams {
            contract,
            method,
            args,
            caller: Address::from_seed(b"caller"),
            block_height: 1,
            block_time: SimTime::from_secs(2),
            state,
        }
    }

    fn assert_disjoint(a: &AccessSet, b: &AccessSet) {
        assert!(!a.conflicts(b), "{a:?} should not conflict with {b:?}");
    }

    fn pod_args(owner: &str) -> Vec<u8> {
        let policy = PolicyEnvelope::plain(&duc_policy::UsagePolicy::default_for("urn:r", owner));
        encode_to_vec(&(owner.to_string(), "https://pod/".to_string(), policy))
    }

    #[test]
    fn distinct_owners_and_resources_commute() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let state = WorldState::new();
        let a = pod_args("https://a.id/me");
        let b = pod_args("https://b.id/me");
        let pa = dex_access(&params(&dex, "register_pod", &a, &state));
        let pb = dex_access(&params(&dex, "register_pod", &b, &state));
        assert_disjoint(&pa, &pb);
        assert!(pa.conflicts(&pa), "same owner serializes");
    }

    #[test]
    fn policy_table_claims() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let state = WorldState::new();
        // Two owners registering the *same* envelope: the shared pol slot
        // is a delta on both sides, so they still commute.
        let shared = PolicyEnvelope::plain(&duc_policy::UsagePolicy::default_for("urn:r", "x"));
        let a = encode_to_vec(&(
            "https://a.id/me".to_string(),
            "https://pod/".to_string(),
            shared.clone(),
        ));
        let b = encode_to_vec(&(
            "https://b.id/me".to_string(),
            "https://pod/".to_string(),
            shared,
        ));
        let pa = dex_access(&params(&dex, "register_pod", &a, &state));
        let pb = dex_access(&params(&dex, "register_pod", &b, &state));
        assert_disjoint(&pa, &pb);
        // A view method materializing an envelope claims the pol table and
        // therefore serializes against any same-block registration...
        let view = encode_to_vec(&("https://c.id/me".to_string(),));
        let gp = dex_access(&params(&dex, "get_pod", &view, &state));
        assert!(gp.conflicts(&pa), "pol table read vs pol slot delta");
        // ... but two views of different pods commute (R–R).
        let view2 = encode_to_vec(&("https://d.id/me".to_string(),));
        let gp2 = dex_access(&params(&dex, "get_pod", &view2, &state));
        assert_disjoint(&gp, &gp2);
    }

    #[test]
    fn same_resource_copy_calls_conflict_across_devices_only_via_scans() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let state = WorldState::new();
        let c1 = encode_to_vec(&("res-1".to_string(), "dev-1".to_string()));
        let c2 = encode_to_vec(&("res-1".to_string(), "dev-2".to_string()));
        let s1 = dex_access(&params(&dex, "unregister_copy", &c1, &state));
        let s2 = dex_access(&params(&dex, "unregister_copy", &c2, &state));
        assert_disjoint(&s1, &s2);
        // A whole-table scan over the same resource's copies conflicts
        // with any per-device write in it.
        let scan = encode_to_vec(&("res-1".to_string(),));
        let sc = dex_access(&params(&dex, "list_copies", &scan, &state));
        assert!(sc.conflicts(&s1));
        // ... but not with another resource's devices.
        let other = encode_to_vec(&("res-2".to_string(), "dev-1".to_string()));
        let so = dex_access(&params(&dex, "unregister_copy", &other, &state));
        assert_disjoint(&sc, &so);
    }

    #[test]
    fn monitoring_claims_the_round_space() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let state = WorldState::new();
        let start = encode_to_vec(&("res-1".to_string(),));
        let sm = dex_access(&params(&dex, "start_monitoring", &start, &state));
        let get = encode_to_vec(&("res-1".to_string(), 1u64));
        let gr = dex_access(&params(&dex, "get_round", &get, &state));
        assert!(sm.conflicts(&gr), "table write covers every round slot");
        let other = encode_to_vec(&("res-2".to_string(), 1u64));
        let go = dex_access(&params(&dex, "get_round", &other, &state));
        assert_disjoint(&sm, &go);
    }

    #[test]
    fn subscribe_is_exclusive_until_the_market_exists() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let state = WorldState::new();
        let args = encode_to_vec(&("https://c.id/me".to_string(),));
        assert!(matches!(
            dex_access(&params(&dex, "subscribe", &args, &state)),
            AccessSet::Exclusive
        ));
        // With a treasury configured, two consumers' subscriptions
        // commute: the shared fee sink is a delta, not a write.
        let mut state = WorldState::new();
        let treasury = Address::from_seed(b"treasury");
        state.storage_set(&dex, b"cfg/treasury".to_vec(), encode_to_vec(&treasury));
        let a = encode_to_vec(&("https://a.id/me".to_string(),));
        let b = encode_to_vec(&("https://b.id/me".to_string(),));
        let sa = dex_access(&params(&dex, "subscribe", &a, &state));
        let sb = dex_access(&params(&dex, "subscribe", &b, &state));
        assert_disjoint(&sa, &sb);
    }

    #[test]
    fn unknown_methods_and_foreign_contracts_are_exclusive() {
        let dex = ContractId::new(DEX_CONTRACT_ID);
        let other = ContractId::new("counter");
        let state = WorldState::new();
        assert!(matches!(
            dex_access(&params(&dex, "no_such_method", &[], &state)),
            AccessSet::Exclusive
        ));
        assert!(matches!(
            dex_access(&params(&dex, "register_pod", b"junk", &state)),
            AccessSet::Exclusive
        ));
        let f = dex_access_fn();
        assert!(matches!(
            f(&params(&other, "register_pod", &[], &state)),
            AccessSet::Exclusive
        ));
    }
}
