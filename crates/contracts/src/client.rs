//! Typed client for the DistExchange contract.
//!
//! Off-chain components (pod managers, TEEs, oracles) talk to the DE App
//! through this wrapper instead of hand-encoding ABI bytes.

use duc_blockchain::{Address, ContractError, ContractId, Ledger, SignedTransaction};
use duc_codec::{decode_from_slice, encode_to_vec};
use duc_crypto::{Digest, KeyPair, PublicKey};

use crate::abi::{
    CopyRecord, EvidenceReaffirmation, EvidenceSubmission, MonitoringRound, PodRecord,
    PolicyEnvelope, ResourceRecord, Subscription,
};
use crate::dist_exchange::DEX_CONTRACT_ID;

/// Default gas limit for DE App calls (generous; unused gas is refunded).
pub const DEFAULT_GAS: u64 = 5_000_000;

/// A typed handle on a deployed DistExchange contract.
#[derive(Debug, Clone)]
pub struct DistExchangeClient {
    contract: ContractId,
}

impl Default for DistExchangeClient {
    fn default() -> Self {
        DistExchangeClient::new()
    }
}

impl DistExchangeClient {
    /// A client for the conventional deployment id.
    pub fn new() -> Self {
        DistExchangeClient {
            contract: ContractId::new(DEX_CONTRACT_ID),
        }
    }

    /// The target contract id.
    pub fn contract_id(&self) -> &ContractId {
        &self.contract
    }

    // ------------------------------------------------------- transactions

    /// Builds the one-time market initialization call.
    pub fn init_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        fee: u128,
        validity_nanos: u64,
        treasury: Address,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "init",
            encode_to_vec(&(fee, validity_nanos, treasury)),
            DEFAULT_GAS,
        )
    }

    /// Builds the market initialization call pinned to one shard (multi-
    /// chain deployments run `init` once per shard at genesis).
    pub fn init_tx_on<L: Ledger>(
        &self,
        chain: &L,
        shard: usize,
        key: &KeyPair,
        fee: u128,
        validity_nanos: u64,
        treasury: Address,
    ) -> SignedTransaction {
        chain.build_call_on(
            shard,
            key,
            self.contract.clone(),
            "init",
            encode_to_vec(&(fee, validity_nanos, treasury)),
            DEFAULT_GAS,
        )
    }

    /// Builds a pod registration (paper process 1).
    pub fn register_pod_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        owner_webid: &str,
        web_ref: &str,
        default_policy: PolicyEnvelope,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "register_pod",
            encode_to_vec(&(owner_webid.to_string(), web_ref.to_string(), default_policy)),
            DEFAULT_GAS,
        )
    }

    /// Builds a resource registration (paper process 2).
    #[allow(clippy::too_many_arguments)] // mirrors the contract ABI
    pub fn register_resource_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        resource: &str,
        location: &str,
        owner_webid: &str,
        metadata: Vec<(String, String)>,
        policy: PolicyEnvelope,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "register_resource",
            encode_to_vec(&(
                resource.to_string(),
                location.to_string(),
                owner_webid.to_string(),
                metadata,
                policy,
            )),
            DEFAULT_GAS,
        )
    }

    /// Builds a policy update (paper process 5).
    pub fn update_policy_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        resource: &str,
        policy: PolicyEnvelope,
        new_version: u64,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "update_policy",
            encode_to_vec(&(resource.to_string(), policy, new_version)),
            DEFAULT_GAS,
        )
    }

    /// Builds a copy registration (after a successful resource access,
    /// paper process 4).
    pub fn register_copy_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        resource: &str,
        device: &str,
        holder_webid: &str,
        attestation_key: PublicKey,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "register_copy",
            encode_to_vec(&(
                resource.to_string(),
                device.to_string(),
                holder_webid.to_string(),
                attestation_key,
            )),
            DEFAULT_GAS,
        )
    }

    /// Builds a copy removal (after obligation-driven deletion). `as_of`
    /// is the deletion instant: the contract keeps any registration made
    /// at or after it (a re-access that raced this unregister).
    pub fn unregister_copy_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        resource: &str,
        device: &str,
        as_of: duc_sim::SimTime,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "unregister_copy",
            encode_to_vec(&(resource.to_string(), device.to_string(), as_of.as_nanos())),
            DEFAULT_GAS,
        )
    }

    /// Builds a monitoring-round request (paper process 6).
    pub fn start_monitoring_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        resource: &str,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "start_monitoring",
            encode_to_vec(&(resource.to_string(),)),
            DEFAULT_GAS,
        )
    }

    /// Builds an evidence submission.
    pub fn record_evidence_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        submission: &EvidenceSubmission,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "record_evidence",
            encode_to_vec(submission),
            DEFAULT_GAS,
        )
    }

    /// Builds an evidence reaffirmation (incremental monitoring: the
    /// device's usage log is unchanged since `prev_round`).
    pub fn reaffirm_evidence_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        reaffirmation: &EvidenceReaffirmation,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "reaffirm_evidence",
            encode_to_vec(reaffirmation),
            DEFAULT_GAS,
        )
    }

    /// Builds a market subscription purchase.
    pub fn subscribe_tx<L: Ledger>(
        &self,
        chain: &L,
        key: &KeyPair,
        webid: &str,
    ) -> SignedTransaction {
        chain.build_call(
            key,
            self.contract.clone(),
            "subscribe",
            encode_to_vec(&(webid.to_string(),)),
            DEFAULT_GAS,
        )
    }

    // -------------------------------------------------------------- views

    /// Looks up a pod record.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn get_pod<L: Ledger>(
        &self,
        chain: &L,
        owner_webid: &str,
    ) -> Result<Option<PodRecord>, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "get_pod",
            &encode_to_vec(&(owner_webid.to_string(),)),
        )?;
        decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))
    }

    /// Looks up a resource record (paper process 3's read).
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn lookup_resource<L: Ledger>(
        &self,
        chain: &L,
        resource: &str,
    ) -> Result<Option<ResourceRecord>, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "lookup_resource",
            &encode_to_vec(&(resource.to_string(),)),
        )?;
        decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))
    }

    /// Lists all indexed resource IRIs. On multi-shard backends the view
    /// fans out to every shard and merges (sorted, deduplicated); on a
    /// single chain it is the plain contract view, insertion-ordered.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn list_resources<L: Ledger>(&self, chain: &L) -> Result<Vec<String>, ContractError> {
        if chain.shard_count() == 1 {
            let out = chain.call_view(&self.contract, "list_resources", &[])?;
            return decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()));
        }
        let mut all: Vec<String> = Vec::new();
        for shard in 0..chain.shard_count() {
            let out = chain.call_view_on(shard, &self.contract, "list_resources", &[])?;
            let names: Vec<String> =
                decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))?;
            all.extend(names);
        }
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    /// Lists devices holding copies of a resource.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn list_copies<L: Ledger>(
        &self,
        chain: &L,
        resource: &str,
    ) -> Result<Vec<CopyRecord>, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "list_copies",
            &encode_to_vec(&(resource.to_string(),)),
        )?;
        decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))
    }

    /// Reads a monitoring round.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn get_round<L: Ledger>(
        &self,
        chain: &L,
        resource: &str,
        round: u64,
    ) -> Result<Option<MonitoringRound>, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "get_round",
            &encode_to_vec(&(resource.to_string(), round)),
        )?;
        decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))
    }

    /// Verifies a payment certificate for a WebID.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn verify_certificate<L: Ledger>(
        &self,
        chain: &L,
        certificate: &Digest,
        webid: &str,
    ) -> Result<bool, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "verify_certificate",
            &encode_to_vec(&(*certificate, webid.to_string())),
        )?;
        let (valid,): (bool,) =
            decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))?;
        Ok(valid)
    }

    /// Reads a subscription.
    ///
    /// # Errors
    /// Propagates contract/view errors.
    pub fn get_subscription<L: Ledger>(
        &self,
        chain: &L,
        webid: &str,
    ) -> Result<Option<Subscription>, ContractError> {
        let out = chain.call_view(
            &self.contract,
            "get_subscription",
            &encode_to_vec(&(webid.to_string(),)),
        )?;
        decode_from_slice(&out).map_err(|e| ContractError::BadArguments(e.to_string()))
    }

    /// Decodes the round number returned by `start_monitoring`.
    ///
    /// # Errors
    /// Fails on malformed return data.
    pub fn decode_round_number(return_data: &[u8]) -> Result<u64, ContractError> {
        let (round,): (u64,) = decode_from_slice(return_data)
            .map_err(|e| ContractError::BadArguments(e.to_string()))?;
        Ok(round)
    }

    /// Decodes the certificate returned by `subscribe`.
    ///
    /// # Errors
    /// Fails on malformed return data.
    pub fn decode_certificate(return_data: &[u8]) -> Result<Digest, ContractError> {
        let (cert,): (Digest,) = decode_from_slice(return_data)
            .map_err(|e| ContractError::BadArguments(e.to_string()))?;
        Ok(cert)
    }
}
