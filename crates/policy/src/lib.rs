//! # duc-policy — usage-control policies for Solid resources
//!
//! The paper's core premise is that *access* control (decided once, before
//! data leaves a pod) must be extended with *usage* control (evaluated
//! continuously, wherever a copy of the data lives). This crate provides:
//!
//! * [`model`] — the policy language: permit/prohibit rules over actions,
//!   with temporal, purpose, count and recipient constraints and duties
//!   (obligations), following ODRL vocabulary and the UCON(ABC) model the
//!   paper cites (Park & Sandhu).
//! * [`taxonomy`] — a purpose hierarchy, so a policy allowing `research`
//!   admits a request for `medical-research`.
//! * [`engine`] — decision procedure: pre-authorization and *ongoing*
//!   re-evaluation of a usage context against a policy.
//! * [`compile`] — lowers a policy into a [`PolicyProgram`]: pre-resolved
//!   decision tables plus `next_transition`, the instant the decision can
//!   next change (what deadline-driven enforcement schedules on).
//! * [`compliance`] — retrospective auditing of a copy's usage log against a
//!   policy (what the DE App's monitoring process consumes).
//! * [`dsl`] — a human-readable text syntax for policies.
//! * [`rdf_binding`] — policies as RDF graphs (ODRL + project vocabulary).
//! * [`acl`] — W3C Web Access Control lists, the Solid-native *access*
//!   control layer that our usage control extends.
//!
//! ## Example
//! ```
//! use duc_policy::prelude::*;
//! use duc_sim::{SimDuration, SimTime};
//!
//! let policy = UsagePolicy::builder("pol-1", "https://bob.pod/data/medical.ttl", "https://bob.id/me")
//!     .permit(
//!         Rule::permit([Action::Use, Action::Read])
//!             .with_constraint(Constraint::Purpose(vec![Purpose::new("medical-research")]))
//!             .with_constraint(Constraint::MaxRetention(SimDuration::from_days(30))),
//!     )
//!     .duty(Duty::DeleteWithin(SimDuration::from_days(30)))
//!     .build();
//!
//! let ctx = UsageContext {
//!     consumer: "https://alice.id/me".into(),
//!     action: Action::Read,
//!     purpose: Purpose::new("medical-research"),
//!     now: SimTime::from_secs(100),
//!     acquired_at: SimTime::from_secs(50),
//!     access_count: 1,
//! };
//! assert!(PolicyEngine::default().evaluate(&policy, &ctx).is_permit());
//! ```

pub mod acl;
pub mod compile;
pub mod compliance;
pub mod dsl;
pub mod engine;
pub mod model;
pub mod rdf_binding;
pub mod taxonomy;

pub use acl::{AclDocument, AclMode, AgentSpec, Authorization};
pub use compile::{compile, PolicyProgram};
pub use compliance::{AccessRecord, ComplianceReport, CopyState, Violation, ViolationKind};
pub use engine::{Decision, DenyReason, PolicyEngine};
pub use model::{Action, Constraint, Duty, Effect, Purpose, Rule, UsagePolicy};
pub use taxonomy::PurposeTaxonomy;

/// Common imports for downstream crates.
pub mod prelude {
    pub use crate::acl::{AclDocument, AclMode, AgentSpec, Authorization};
    pub use crate::compile::{compile, PolicyProgram};
    pub use crate::compliance::{
        AccessRecord, ComplianceReport, CopyState, Violation, ViolationKind,
    };
    pub use crate::engine::{Decision, DenyReason, PolicyEngine, UsageContext};
    pub use crate::model::{Action, Constraint, Duty, Effect, Purpose, Rule, UsagePolicy};
    pub use crate::taxonomy::PurposeTaxonomy;
}

pub use engine::UsageContext;

/// Errors from policy parsing (DSL or RDF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// DSL syntax error with byte offset context.
    Syntax {
        /// Explanation of the failure.
        message: String,
    },
    /// RDF document lacked a required statement.
    MissingStatement(&'static str),
    /// A value failed validation (e.g. negative duration).
    Invalid(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Syntax { message } => write!(f, "policy syntax error: {message}"),
            PolicyError::MissingStatement(what) => write!(f, "policy document missing: {what}"),
            PolicyError::Invalid(what) => write!(f, "invalid policy value: {what}"),
        }
    }
}

impl std::error::Error for PolicyError {}
