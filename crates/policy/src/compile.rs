//! Compiled policy programs.
//!
//! [`PolicyEngine::evaluate`] walks the full rule list and re-runs a BFS
//! over the purpose taxonomy on every decision. That is fine for a single
//! evaluation but wasteful on the hot path: a TEE re-evaluates the *same*
//! policy against near-identical contexts on every local access, and the
//! obligation scheduler needs to know *when* a decision can change, not
//! just what it is now.
//!
//! [`compile`] lowers a [`UsagePolicy`] into a compact [`PolicyProgram`]
//! IR:
//!
//! * per-rule **action masks** (the `subsumes` relation pre-applied over
//!   all five actions),
//! * **pre-resolved constraint tables** — the purpose-taxonomy closure is
//!   baked into a satisfied-purpose set, recipients into a lookup set,
//! * pre-extracted **retention/expiry bounds** for obligation scheduling.
//!
//! Two entry points:
//!
//! * [`PolicyProgram::decide`] — decision-equivalent to
//!   [`PolicyEngine::evaluate`] (identical [`Decision`] values, including
//!   deny-reason lists; proptest-gated in `tests/proptest_compile.rs`),
//! * [`PolicyProgram::next_transition`] — the next instant at which the
//!   decision for this context can change (retention deadline, expiry,
//!   time-window edge), or `None` when it is constant for all future time.
//!   The deadline-driven enforcement pipeline (`duc_tee` decision cache,
//!   `duc_core` obligation scheduler) schedules wakeups at exactly these
//!   instants instead of polling.

use std::collections::BTreeSet;

use duc_sim::{SimDuration, SimTime};

use crate::engine::{Decision, DenyReason, UsageContext};
use crate::model::{Action, Constraint, Effect, Purpose, UsagePolicy};
use crate::taxonomy::PurposeTaxonomy;

/// One bit per [`Action`], in [`Action::ALL`] order.
fn action_bit(action: Action) -> u8 {
    1 << Action::ALL
        .iter()
        .position(|a| *a == action)
        .expect("every action is in Action::ALL")
}

/// The action mask covered by a rule's action list (with `subsumes`
/// pre-applied).
fn cover_mask(actions: &[Action]) -> u8 {
    let mut mask = 0;
    for target in Action::ALL {
        if actions.iter().any(|a| a.subsumes(target)) {
            mask |= action_bit(target);
        }
    }
    mask
}

/// A compiled constraint: the same predicate as the corresponding
/// [`Constraint`], with every taxonomy/list lookup pre-resolved.
#[derive(Debug, Clone)]
enum Check {
    /// `Constraint::MaxRetention`.
    Retention(SimDuration),
    /// `Constraint::ExpiresAt`.
    Expiry(SimTime),
    /// `Constraint::Purpose`, closed over the taxonomy: `wildcard` when
    /// `any` is allowed, otherwise membership in the pre-computed
    /// satisfied-purpose set.
    Purpose {
        wildcard: bool,
        satisfied: BTreeSet<Purpose>,
    },
    /// `Constraint::MaxAccessCount`.
    MaxAccess(u64),
    /// `Constraint::AllowedRecipients` as a lookup set.
    Recipients(BTreeSet<String>),
    /// `Constraint::TimeWindow`.
    Window {
        not_before: SimTime,
        not_after: SimTime,
    },
}

impl Check {
    fn compile(constraint: &Constraint, taxonomy: &PurposeTaxonomy) -> Check {
        match constraint {
            Constraint::MaxRetention(limit) => Check::Retention(*limit),
            Constraint::ExpiresAt(at) => Check::Expiry(*at),
            Constraint::Purpose(allowed) => {
                let wildcard = allowed.iter().any(|a| *a == Purpose::any());
                // The closure: the allowed purposes themselves plus every
                // taxonomy node from which some allowed purpose is
                // reachable. Declared purposes outside the taxonomy can
                // only satisfy by exact match, which the first half covers.
                let mut satisfied: BTreeSet<Purpose> = allowed.iter().cloned().collect();
                for node in taxonomy.purposes() {
                    if taxonomy.satisfies_any(&node, allowed) {
                        satisfied.insert(node);
                    }
                }
                Check::Purpose {
                    wildcard,
                    satisfied,
                }
            }
            Constraint::MaxAccessCount(limit) => Check::MaxAccess(*limit),
            Constraint::AllowedRecipients(agents) => {
                Check::Recipients(agents.iter().cloned().collect())
            }
            Constraint::TimeWindow {
                not_before,
                not_after,
            } => Check::Window {
                not_before: *not_before,
                not_after: *not_after,
            },
        }
    }

    /// The deny reason this check produces when violated by `ctx`, `None`
    /// when satisfied. Mirrors `PolicyEngine::check_constraints` exactly.
    fn violation(&self, ctx: &UsageContext) -> Option<DenyReason> {
        match self {
            Check::Retention(limit) => (ctx.now.saturating_since(ctx.acquired_at) > *limit)
                .then_some(DenyReason::RetentionExceeded),
            Check::Expiry(at) => (ctx.now >= *at).then_some(DenyReason::Expired),
            Check::Purpose {
                wildcard,
                satisfied,
            } => (!wildcard && !satisfied.contains(&ctx.purpose))
                .then(|| DenyReason::PurposeNotAllowed(ctx.purpose.clone())),
            Check::MaxAccess(limit) => (ctx.access_count > *limit)
                .then_some(DenyReason::AccessCountExhausted { limit: *limit }),
            Check::Recipients(agents) => (!agents.contains(&ctx.consumer))
                .then(|| DenyReason::RecipientNotAllowed(ctx.consumer.clone())),
            Check::Window {
                not_before,
                not_after,
            } => (ctx.now < *not_before || ctx.now >= *not_after)
                .then_some(DenyReason::OutsideTimeWindow),
        }
    }

    /// The instants (strictly after `ctx.now`) at which this check's
    /// verdict can flip, holding everything but time fixed.
    fn boundaries(&self, ctx: &UsageContext, out: &mut BTreeSet<u64>) {
        let now = ctx.now.as_nanos();
        let mut push = |at: u64| {
            if at > now {
                out.insert(at);
            }
        };
        match self {
            Check::Retention(limit) => {
                // Violated when `now - acquired_at > limit`: the first
                // violating instant is one nanosecond past the bound.
                let due = ctx
                    .acquired_at
                    .as_nanos()
                    .saturating_add(limit.as_nanos())
                    .saturating_add(1);
                push(due);
            }
            Check::Expiry(at) => push(at.as_nanos()),
            Check::Window {
                not_before,
                not_after,
            } => {
                push(not_before.as_nanos());
                push(not_after.as_nanos());
            }
            Check::Purpose { .. } | Check::MaxAccess(_) | Check::Recipients(_) => {}
        }
    }
}

/// A compiled permit rule: its pre-computed action mask plus compiled
/// constraints in declaration order.
#[derive(Debug, Clone)]
struct CompiledRule {
    mask: u8,
    checks: Vec<Check>,
}

/// A [`UsagePolicy`] lowered into pre-resolved decision tables.
///
/// Build one with [`compile`]; see the module docs for the contract.
#[derive(Debug, Clone)]
pub struct PolicyProgram {
    /// Source policy id.
    id: String,
    /// Source policy version (cache invalidation key).
    version: u64,
    /// Union mask of every prohibition's covered actions.
    prohibit_mask: u8,
    /// Permit rules, in declaration order.
    permits: Vec<CompiledRule>,
    /// Pre-extracted `UsagePolicy::retention_bound`.
    retention_bound: Option<SimDuration>,
    /// Pre-extracted `UsagePolicy::expiry_bound`.
    expiry_bound: Option<SimTime>,
    /// Whether any permit constraint reads `access_count` (the TEE decision
    /// cache must key on the count only when this is set).
    count_sensitive: bool,
}

/// Lowers `policy` under `taxonomy` into a [`PolicyProgram`].
pub fn compile(policy: &UsagePolicy, taxonomy: &PurposeTaxonomy) -> PolicyProgram {
    let mut prohibit_mask = 0u8;
    let mut permits = Vec::new();
    let mut count_sensitive = false;
    for rule in &policy.rules {
        match rule.effect {
            Effect::Prohibit => prohibit_mask |= cover_mask(&rule.actions),
            Effect::Permit => {
                let checks: Vec<Check> = rule
                    .constraints
                    .iter()
                    .map(|c| Check::compile(c, taxonomy))
                    .collect();
                count_sensitive |= checks.iter().any(|c| matches!(c, Check::MaxAccess(_)));
                permits.push(CompiledRule {
                    mask: cover_mask(&rule.actions),
                    checks,
                });
            }
        }
    }
    PolicyProgram {
        id: policy.id.clone(),
        version: policy.version,
        prohibit_mask,
        permits,
        retention_bound: policy.retention_bound(),
        expiry_bound: policy.expiry_bound(),
        count_sensitive,
    }
}

impl PolicyProgram {
    /// The source policy id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The source policy version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether the decision depends on the access count (see
    /// [`Constraint::MaxAccessCount`]).
    pub fn count_sensitive(&self) -> bool {
        self.count_sensitive
    }

    /// Pre-extracted [`UsagePolicy::retention_bound`].
    pub fn retention_bound(&self) -> Option<SimDuration> {
        self.retention_bound
    }

    /// Pre-extracted [`UsagePolicy::expiry_bound`].
    pub fn expiry_bound(&self) -> Option<SimTime> {
        self.expiry_bound
    }

    /// The earliest instant at which a retention/expiry obligation for a
    /// copy acquired at `acquired_at` falls due, given that the current
    /// policy version was applied locally at `applied_at` (a tightened
    /// deadline can never precede the instant the device learned of it).
    pub fn next_deadline(&self, acquired_at: SimTime, applied_at: SimTime) -> Option<SimTime> {
        let retention = self
            .retention_bound
            .map(|bound| (acquired_at + bound).max(applied_at));
        let expiry = self.expiry_bound.map(|at| at.max(applied_at));
        match (retention, expiry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Evaluates `ctx` — decision-equivalent to
    /// [`PolicyEngine::evaluate`] on the source policy, including the
    /// deny-reason lists and their order.
    ///
    /// [`PolicyEngine::evaluate`]: crate::engine::PolicyEngine::evaluate
    pub fn decide(&self, ctx: &UsageContext) -> Decision {
        let bit = action_bit(ctx.action);
        if self.prohibit_mask & bit != 0 {
            return Decision::Deny(vec![DenyReason::Prohibited(ctx.action)]);
        }
        let mut reasons = Vec::new();
        let mut any_permit_covers = false;
        for rule in &self.permits {
            if rule.mask & bit == 0 {
                continue;
            }
            any_permit_covers = true;
            let before = reasons.len();
            for check in &rule.checks {
                if let Some(reason) = check.violation(ctx) {
                    reasons.push(reason);
                }
            }
            if reasons.len() == before {
                return Decision::Permit;
            }
        }
        if !any_permit_covers {
            reasons.push(DenyReason::NoMatchingPermit(ctx.action));
        }
        reasons.dedup();
        Decision::Deny(reasons)
    }

    /// The next instant strictly after `ctx.now` at which
    /// [`PolicyProgram::decide`] yields a *different* decision for this
    /// context (holding consumer, action, purpose and access count fixed),
    /// or `None` when the decision is constant for all future time.
    ///
    /// Only retention deadlines, expiry instants and time-window edges can
    /// flip a decision as time passes; the method collects those
    /// boundaries, probes each in order and returns the first that
    /// actually changes the decision — so advancing the clock to the
    /// returned instant is guaranteed to observe a flip, and no flip can
    /// occur before it.
    pub fn next_transition(&self, ctx: &UsageContext) -> Option<SimTime> {
        let bit = action_bit(ctx.action);
        if self.prohibit_mask & bit != 0 {
            // Prohibitions are time-independent: constant deny.
            return None;
        }
        let mut boundaries: BTreeSet<u64> = BTreeSet::new();
        for rule in &self.permits {
            if rule.mask & bit == 0 {
                continue;
            }
            for check in &rule.checks {
                check.boundaries(ctx, &mut boundaries);
            }
        }
        let current = self.decide(ctx);
        let mut probe = ctx.clone();
        for at in boundaries {
            probe.now = SimTime::from_nanos(at);
            if self.decide(&probe) != current {
                return Some(probe.now);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PolicyEngine;
    use crate::model::{Duty, Rule};

    fn ctx() -> UsageContext {
        UsageContext {
            consumer: "urn:alice".into(),
            action: Action::Read,
            purpose: Purpose::new("medical-research"),
            now: SimTime::from_secs(1000),
            acquired_at: SimTime::from_secs(500),
            access_count: 1,
        }
    }

    fn engine() -> PolicyEngine {
        PolicyEngine::default()
    }

    fn program(policy: &UsagePolicy) -> PolicyProgram {
        compile(policy, engine().taxonomy())
    }

    fn sample_policy() -> UsagePolicy {
        UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")]))
                    .with_constraint(Constraint::MaxRetention(SimDuration::from_secs(600)))
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(2000))),
            )
            .rule(Rule::prohibit([Action::Distribute]))
            .duty(Duty::DeleteWithin(SimDuration::from_secs(600)))
            .build()
    }

    #[test]
    fn decide_matches_engine_on_the_sample() {
        let policy = sample_policy();
        let prog = program(&policy);
        let engine = engine();
        for action in Action::ALL {
            for purpose in ["medical-research", "marketing", "any"] {
                for now in [0u64, 500, 1000, 1101, 1102, 2000, 5000] {
                    let mut c = ctx();
                    c.action = action;
                    c.purpose = Purpose::new(purpose);
                    c.now = SimTime::from_secs(now);
                    assert_eq!(
                        prog.decide(&c),
                        engine.evaluate(&policy, &c),
                        "{action} {purpose} at {now}s"
                    );
                }
            }
        }
    }

    #[test]
    fn next_transition_finds_the_retention_flip() {
        let policy = sample_policy();
        let prog = program(&policy);
        let c = ctx(); // acquired at 500 s, retention 600 s → flip just past 1100 s
        let flip = prog.next_transition(&c).expect("a flip exists");
        assert_eq!(
            flip,
            SimTime::from_nanos(SimTime::from_secs(1100).as_nanos() + 1)
        );
        assert!(prog.decide(&c).is_permit());
        let mut at_flip = c.clone();
        at_flip.now = flip;
        assert!(!prog.decide(&at_flip).is_permit());
        // One nanosecond earlier the decision is unchanged.
        let mut before = c.clone();
        before.now = SimTime::from_nanos(flip.as_nanos() - 1);
        assert!(prog.decide(&before).is_permit());
    }

    #[test]
    fn next_transition_is_none_when_constant() {
        let policy = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(Rule::permit([Action::Use]))
            .build();
        let prog = program(&policy);
        assert_eq!(prog.next_transition(&ctx()), None);
        // Prohibited action: constant deny.
        let policy = UsagePolicy::builder("p", "urn:r", "urn:o")
            .rule(Rule::prohibit([Action::Read]))
            .permit(
                Rule::permit([Action::Read])
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(2000))),
            )
            .build();
        assert_eq!(program(&policy).next_transition(&ctx()), None);
    }

    #[test]
    fn next_transition_skips_non_decisive_boundaries() {
        // Rule 1 permits forever; rule 2 expires. The expiry boundary flips
        // nothing because rule 1 keeps permitting.
        let policy = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(Rule::permit([Action::Use]))
            .permit(
                Rule::permit([Action::Read])
                    .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(2000))),
            )
            .build();
        assert_eq!(program(&policy).next_transition(&ctx()), None);
    }

    #[test]
    fn window_edges_are_transitions() {
        let policy = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use]).with_constraint(Constraint::TimeWindow {
                    not_before: SimTime::from_secs(2000),
                    not_after: SimTime::from_secs(3000),
                }),
            )
            .build();
        let prog = program(&policy);
        let mut c = ctx();
        c.now = SimTime::from_secs(1000);
        assert_eq!(prog.next_transition(&c), Some(SimTime::from_secs(2000)));
        c.now = SimTime::from_secs(2000);
        assert_eq!(prog.next_transition(&c), Some(SimTime::from_secs(3000)));
        c.now = SimTime::from_secs(3000);
        assert_eq!(prog.next_transition(&c), None);
    }

    #[test]
    fn purpose_closure_matches_taxonomy() {
        let policy = UsagePolicy::builder("p", "urn:r", "urn:o")
            .permit(
                Rule::permit([Action::Use])
                    .with_constraint(Constraint::Purpose(vec![Purpose::new("medical")])),
            )
            .build();
        let prog = program(&policy);
        let mut c = ctx();
        for (purpose, permitted) in [
            ("medical", true),
            ("medical-research", true),
            ("university-hospital-research", true),
            ("research", false),
            ("marketing", false),
            ("unheard-of", false),
        ] {
            c.purpose = Purpose::new(purpose);
            assert_eq!(prog.decide(&c).is_permit(), permitted, "{purpose}");
        }
    }

    #[test]
    fn next_deadline_mirrors_the_tee_rule() {
        let prog = program(&sample_policy());
        let acquired = SimTime::from_secs(500);
        assert_eq!(
            prog.next_deadline(acquired, acquired),
            Some(SimTime::from_secs(1100)),
            "retention before expiry"
        );
        // A late policy application floors the deadline.
        let applied = SimTime::from_secs(1500);
        assert_eq!(prog.next_deadline(acquired, applied), Some(applied));
        assert!(!prog.count_sensitive());
        assert_eq!(prog.version(), 1);
        assert_eq!(prog.id(), "p");
    }
}
