//! Policies as RDF graphs (ODRL + project vocabulary).
//!
//! Pods store the policy next to the data as Linked Data; the pod manager
//! parses it with [`policy_from_graph`] before pushing the structured form
//! on-chain. The mapping follows ODRL 2.2 (policy → permission/prohibition →
//! action + constraints) with project terms (`duc:`) where ODRL has no
//! equivalent (retention, notification obligations, time windows).

use duc_rdf::vocab::{duc, odrl, rdf, xsd};
use duc_rdf::{Graph, Iri, Literal, Term, Triple};
use duc_sim::{SimDuration, SimTime};

use crate::model::{Action, Constraint, Duty, Effect, Purpose, Rule, UsagePolicy};
use crate::PolicyError;

fn action_iri(action: Action) -> Iri {
    match action {
        Action::Use => odrl::use_(),
        Action::Read => odrl::read(),
        Action::Modify => odrl::modify(),
        Action::Delete => odrl::delete(),
        Action::Distribute => odrl::distribute(),
    }
}

fn action_from_iri(iri: &Iri) -> Option<Action> {
    if *iri == odrl::use_() {
        Some(Action::Use)
    } else if *iri == odrl::read() {
        Some(Action::Read)
    } else if *iri == odrl::modify() {
        Some(Action::Modify)
    } else if *iri == odrl::delete() {
        Some(Action::Delete)
    } else if *iri == odrl::distribute() {
        Some(Action::Distribute)
    } else {
        None
    }
}

fn int_literal(v: u64) -> Term {
    Term::Literal(Literal {
        lexical: v.to_string(),
        language: None,
        datatype: Some(xsd::integer()),
    })
}

/// Serializes a policy to an RDF graph.
///
/// # Errors
/// Returns [`PolicyError::Invalid`] when `id`, `resource` or `owner` is not
/// a valid IRI (the RDF binding requires IRI identity; the in-memory model
/// does not).
pub fn policy_to_graph(policy: &UsagePolicy) -> Result<Graph, PolicyError> {
    let mut g = Graph::new();
    let policy_iri =
        Iri::new(policy.id.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
    let resource_iri =
        Iri::new(policy.resource.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
    let owner_iri =
        Iri::new(policy.owner.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
    let s = Term::Iri(policy_iri.clone());
    g.insert(Triple::new(
        s.clone(),
        rdf::type_(),
        Term::Iri(duc::usage_policy()),
    ));
    g.insert(Triple::new(
        s.clone(),
        odrl::target(),
        Term::Iri(resource_iri),
    ));
    g.insert(Triple::new(
        s.clone(),
        odrl::assigner(),
        Term::Iri(owner_iri),
    ));
    g.insert(Triple::new(
        s.clone(),
        duc::policy_version(),
        int_literal(policy.version),
    ));

    for (ri, rule) in policy.rules.iter().enumerate() {
        let rule_node = Term::Blank(format!("rule{ri}"));
        let link = match rule.effect {
            Effect::Permit => odrl::permission(),
            Effect::Prohibit => odrl::prohibition(),
        };
        g.insert(Triple::new(s.clone(), link, rule_node.clone()));
        for action in &rule.actions {
            g.insert(Triple::new(
                rule_node.clone(),
                odrl::action(),
                Term::Iri(action_iri(*action)),
            ));
        }
        for (ci, c) in rule.constraints.iter().enumerate() {
            let c_node = Term::Blank(format!("rule{ri}c{ci}"));
            g.insert(Triple::new(
                rule_node.clone(),
                odrl::constraint(),
                c_node.clone(),
            ));
            match c {
                Constraint::MaxRetention(d) => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(duc::retention_limit()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::operator(),
                        Term::Iri(odrl::lteq()),
                    ));
                    g.insert(Triple::new(
                        c_node,
                        odrl::right_operand(),
                        int_literal(d.as_nanos()),
                    ));
                }
                Constraint::ExpiresAt(t) => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(odrl::date_time()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::operator(),
                        Term::Iri(odrl::lteq()),
                    ));
                    g.insert(Triple::new(
                        c_node,
                        odrl::right_operand(),
                        int_literal(t.as_nanos()),
                    ));
                }
                Constraint::Purpose(purposes) => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(odrl::purpose()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::operator(),
                        Term::Iri(odrl::is_any_of()),
                    ));
                    for p in purposes {
                        g.insert(Triple::new(
                            c_node.clone(),
                            odrl::right_operand(),
                            Term::literal_str(p.as_str()),
                        ));
                    }
                }
                Constraint::MaxAccessCount(n) => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(odrl::count()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::operator(),
                        Term::Iri(odrl::lteq()),
                    ));
                    g.insert(Triple::new(c_node, odrl::right_operand(), int_literal(*n)));
                }
                Constraint::AllowedRecipients(agents) => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(duc::allowed_recipient()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::operator(),
                        Term::Iri(odrl::is_any_of()),
                    ));
                    for a in agents {
                        let iri =
                            Iri::new(a.clone()).map_err(|e| PolicyError::Invalid(e.to_string()))?;
                        g.insert(Triple::new(
                            c_node.clone(),
                            odrl::right_operand(),
                            Term::Iri(iri),
                        ));
                    }
                }
                Constraint::TimeWindow {
                    not_before,
                    not_after,
                } => {
                    g.insert(Triple::new(
                        c_node.clone(),
                        odrl::left_operand(),
                        Term::Iri(odrl::date_time()),
                    ));
                    g.insert(Triple::new(
                        c_node.clone(),
                        duc::not_before(),
                        int_literal(not_before.as_nanos()),
                    ));
                    g.insert(Triple::new(
                        c_node,
                        duc::not_after(),
                        int_literal(not_after.as_nanos()),
                    ));
                }
            }
        }
    }
    for (di, duty) in policy.duties.iter().enumerate() {
        let d_node = Term::Blank(format!("duty{di}"));
        g.insert(Triple::new(s.clone(), odrl::duty(), d_node.clone()));
        match duty {
            Duty::DeleteWithin(d) => {
                g.insert(Triple::new(
                    d_node,
                    duc::deletion_obligation(),
                    int_literal(d.as_nanos()),
                ));
            }
            Duty::NotifyOwnerWithin(d) => {
                g.insert(Triple::new(
                    d_node,
                    duc::notify_obligation(),
                    int_literal(d.as_nanos()),
                ));
            }
            Duty::LogAccesses => {
                g.insert(Triple::new(
                    d_node,
                    duc::log_obligation(),
                    Term::Literal(Literal::boolean(true)),
                ));
            }
        }
    }
    Ok(g)
}

fn get_int(graph: &Graph, node: &Term, pred: &Iri) -> Option<u64> {
    graph
        .matching(Some(node), Some(pred), None)
        .filter_map(|t| t.object.as_literal())
        .filter_map(|l| l.as_integer())
        .map(|v| v as u64)
        .next()
}

/// Parses the first `duc:UsagePolicy` found in `graph`.
///
/// # Errors
/// Returns [`PolicyError::MissingStatement`] when required statements
/// (type, target, assigner) are absent.
pub fn policy_from_graph(graph: &Graph) -> Result<UsagePolicy, PolicyError> {
    let type_obj = Term::Iri(duc::usage_policy());
    let policy_subject = graph
        .subjects(&rdf::type_(), &type_obj)
        .next()
        .cloned()
        .ok_or(PolicyError::MissingStatement("a duc:UsagePolicy"))?;
    let policy_iri = match &policy_subject {
        Term::Iri(iri) => iri.clone(),
        _ => return Err(PolicyError::Invalid("policy subject must be an IRI".into())),
    };
    let resource = graph
        .object(&policy_iri, &odrl::target())
        .and_then(Term::as_iri)
        .ok_or(PolicyError::MissingStatement("odrl:target"))?
        .as_str()
        .to_string();
    let owner = graph
        .object(&policy_iri, &odrl::assigner())
        .and_then(Term::as_iri)
        .ok_or(PolicyError::MissingStatement("odrl:assigner"))?
        .as_str()
        .to_string();
    let version = get_int(graph, &policy_subject, &duc::policy_version()).unwrap_or(1);

    let mut rules = Vec::new();
    for (effect, link) in [
        (Effect::Permit, odrl::permission()),
        (Effect::Prohibit, odrl::prohibition()),
    ] {
        for t in graph.matching(Some(&policy_subject), Some(&link), None) {
            let rule_node = t.object.clone();
            let actions: Vec<Action> = graph
                .matching(Some(&rule_node), Some(&odrl::action()), None)
                .filter_map(|t| t.object.as_iri().and_then(action_from_iri))
                .collect();
            let mut constraints = Vec::new();
            for ct in graph.matching(Some(&rule_node), Some(&odrl::constraint()), None) {
                let c_node = ct.object.clone();
                constraints.push(parse_constraint(graph, &c_node)?);
            }
            rules.push(Rule {
                effect,
                actions,
                constraints,
            });
        }
    }

    let mut duties = Vec::new();
    for t in graph.matching(Some(&policy_subject), Some(&odrl::duty()), None) {
        let d_node = t.object.clone();
        if let Some(nanos) = get_int(graph, &d_node, &duc::deletion_obligation()) {
            duties.push(Duty::DeleteWithin(SimDuration::from_nanos(nanos)));
        } else if let Some(nanos) = get_int(graph, &d_node, &duc::notify_obligation()) {
            duties.push(Duty::NotifyOwnerWithin(SimDuration::from_nanos(nanos)));
        } else if graph
            .matching(Some(&d_node), Some(&duc::log_obligation()), None)
            .next()
            .is_some()
        {
            duties.push(Duty::LogAccesses);
        }
    }

    Ok(UsagePolicy {
        id: policy_iri.as_str().to_string(),
        resource,
        owner,
        version,
        rules,
        duties,
    })
}

fn parse_constraint(graph: &Graph, c_node: &Term) -> Result<Constraint, PolicyError> {
    // TimeWindow is recognized by its duc:notBefore marker.
    if let Some(nb) = get_int(graph, c_node, &duc::not_before()) {
        let na = get_int(graph, c_node, &duc::not_after())
            .ok_or(PolicyError::MissingStatement("duc:notAfter"))?;
        return Ok(Constraint::TimeWindow {
            not_before: SimTime::from_nanos(nb),
            not_after: SimTime::from_nanos(na),
        });
    }
    let left = graph
        .matching(Some(c_node), Some(&odrl::left_operand()), None)
        .filter_map(|t| t.object.as_iri())
        .next()
        .ok_or(PolicyError::MissingStatement("odrl:leftOperand"))?
        .clone();
    if left == duc::retention_limit() {
        let nanos = get_int(graph, c_node, &odrl::right_operand())
            .ok_or(PolicyError::MissingStatement("odrl:rightOperand"))?;
        Ok(Constraint::MaxRetention(SimDuration::from_nanos(nanos)))
    } else if left == odrl::date_time() {
        let nanos = get_int(graph, c_node, &odrl::right_operand())
            .ok_or(PolicyError::MissingStatement("odrl:rightOperand"))?;
        Ok(Constraint::ExpiresAt(SimTime::from_nanos(nanos)))
    } else if left == odrl::purpose() {
        let purposes: Vec<Purpose> = graph
            .matching(Some(c_node), Some(&odrl::right_operand()), None)
            .filter_map(|t| t.object.as_literal())
            .map(|l| Purpose::new(l.lexical.clone()))
            .collect();
        Ok(Constraint::Purpose(purposes))
    } else if left == odrl::count() {
        let n = get_int(graph, c_node, &odrl::right_operand())
            .ok_or(PolicyError::MissingStatement("odrl:rightOperand"))?;
        Ok(Constraint::MaxAccessCount(n))
    } else if left == duc::allowed_recipient() {
        let agents: Vec<String> = graph
            .matching(Some(c_node), Some(&odrl::right_operand()), None)
            .filter_map(|t| t.object.as_iri())
            .map(|i| i.as_str().to_string())
            .collect();
        Ok(Constraint::AllowedRecipients(agents))
    } else {
        Err(PolicyError::Invalid(format!(
            "unknown constraint operand {left}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UsagePolicy {
        UsagePolicy::builder(
            "https://bob.pod/policies#pol-medical",
            "https://bob.pod/data/medical.ttl",
            "https://bob.id/me",
        )
        .version(4)
        .permit(
            Rule::permit([Action::Use, Action::Read])
                .with_constraint(Constraint::Purpose(vec![
                    Purpose::new("medical"),
                    Purpose::new("academic"),
                ]))
                .with_constraint(Constraint::MaxRetention(SimDuration::from_days(30)))
                .with_constraint(Constraint::MaxAccessCount(100))
                .with_constraint(Constraint::AllowedRecipients(vec![
                    "https://alice.id/me".into()
                ]))
                .with_constraint(Constraint::ExpiresAt(SimTime::from_secs(1_000_000)))
                .with_constraint(Constraint::TimeWindow {
                    not_before: SimTime::from_secs(10),
                    not_after: SimTime::from_secs(20),
                }),
        )
        .rule(Rule::prohibit([Action::Distribute]))
        .duty(Duty::DeleteWithin(SimDuration::from_days(30)))
        .duty(Duty::NotifyOwnerWithin(SimDuration::from_hours(2)))
        .duty(Duty::LogAccesses)
        .build()
    }

    fn normalize(mut p: UsagePolicy) -> UsagePolicy {
        // RDF graphs are unordered; sort rule internals for comparison.
        for r in &mut p.rules {
            r.actions.sort();
            r.constraints.sort_by_key(|c| format!("{c:?}"));
        }
        p.rules.sort_by_key(|r| format!("{r:?}"));
        p.duties.sort_by_key(|d| format!("{d:?}"));
        p
    }

    #[test]
    fn graph_roundtrip_preserves_policy() {
        let original = sample();
        let g = policy_to_graph(&original).expect("to_graph");
        let parsed = policy_from_graph(&g).expect("from_graph");
        assert_eq!(normalize(parsed), normalize(original));
    }

    #[test]
    fn turtle_text_roundtrip_preserves_policy() {
        let original = sample();
        let g = policy_to_graph(&original).unwrap();
        let text = duc_rdf::turtle::serialize(&g);
        let g2 = duc_rdf::turtle::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let parsed = policy_from_graph(&g2).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(normalize(parsed), normalize(original));
    }

    #[test]
    fn graph_contains_odrl_shape() {
        let g = policy_to_graph(&sample()).unwrap();
        let policy_iri = Iri::new("https://bob.pod/policies#pol-medical").unwrap();
        assert!(g.object(&policy_iri, &odrl::target()).is_some());
        assert!(g.object(&policy_iri, &odrl::assigner()).is_some());
        assert!(g
            .matching(None, Some(&odrl::permission()), None)
            .next()
            .is_some());
        assert!(g
            .matching(None, Some(&odrl::prohibition()), None)
            .next()
            .is_some());
        assert_eq!(g.matching(None, Some(&odrl::duty()), None).count(), 3);
    }

    #[test]
    fn invalid_iri_identity_is_rejected() {
        let p = UsagePolicy::builder("not an iri", "urn:r", "urn:o").build();
        assert!(policy_to_graph(&p).is_err());
    }

    #[test]
    fn missing_statements_are_reported() {
        assert_eq!(
            policy_from_graph(&Graph::new()).unwrap_err(),
            PolicyError::MissingStatement("a duc:UsagePolicy")
        );
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("urn:p"),
            rdf::type_(),
            Term::Iri(duc::usage_policy()),
        ));
        assert!(matches!(
            policy_from_graph(&g).unwrap_err(),
            PolicyError::MissingStatement("odrl:target")
        ));
    }

    #[test]
    fn default_version_is_one() {
        let p = UsagePolicy::builder("urn:p", "urn:r", "urn:o").build();
        let g = policy_to_graph(&p).unwrap();
        let parsed = policy_from_graph(&g).unwrap();
        assert_eq!(parsed.version, 1);
    }
}
